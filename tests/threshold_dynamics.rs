//! Cross-crate integration tests: the critical-condition pipeline from
//! dataset synthesis through threshold analysis to simulated dynamics
//! (paper Theorems 1–5 on the Digg-like network).

use rumor_repro::core::equilibrium::{
    calibrate_acceptance, positive_equilibrium, r0, zero_equilibrium,
};
use rumor_repro::core::stability::{local_stability_e0, theorem2_consistency};
use rumor_repro::prelude::*;

/// A reduced Digg-like parameter bundle shared by the tests.
fn digg_params(alpha: f64) -> ModelParams {
    let dataset = DiggDataset::synthesize(DiggConfig {
        nodes: 1_500,
        k_max: 150,
        ..DiggConfig::small()
    })
    .expect("dataset synthesis");
    ModelParams::builder(dataset.classes().clone())
        .alpha(alpha)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 1.0 })
        .infectivity(Infectivity::paper_default())
        .build()
        .expect("params")
}

#[test]
fn extinction_pipeline_matches_theorems() {
    // Calibrate to the paper's printed subcritical threshold.
    let base = digg_params(0.01);
    let (eps1, eps2) = (0.2, 0.05);
    let (params, _) = calibrate_acceptance(&base, 0.7220, eps1, eps2).unwrap();
    assert!((r0(&params, eps1, eps2).unwrap() - 0.7220).abs() < 1e-9);

    // Theorem 2: E0 locally stable; Theorem 5: rumor goes extinct.
    let (threshold, verdict, consistent) = theorem2_consistency(&params, eps1, eps2).unwrap();
    assert!(threshold < 1.0);
    assert!(verdict.is_stable());
    assert!(consistent);

    let e0 = zero_equilibrium(&params, eps1, eps2).unwrap();
    let initial = NetworkState::initial_uniform(params.n_classes(), 0.1).unwrap();
    let traj = simulate(
        &params,
        ConstantControl::new(eps1, eps2),
        &initial,
        600.0,
        &SimulateOptions::default(),
    )
    .unwrap();
    let dist = traj.dist_series(&e0).unwrap();
    assert!(dist[0] > 0.5);
    assert!(
        *dist.last().unwrap() < 1e-3,
        "Dist0 residual {}",
        dist.last().unwrap()
    );
    // Dist0 decays overall (tolerate tiny numeric wiggles).
    assert!(dist.last().unwrap() < &(dist[0] * 1e-3));
}

#[test]
fn persistence_pipeline_matches_theorems() {
    let base = digg_params(0.002);
    // Consistent persistence regime (DESIGN.md: the printed eps2 = 1e-4
    // puts E+ outside the simplex for any acceptance rate).
    let (eps1, eps2) = (0.002, 0.004);
    let (params, _) = calibrate_acceptance(&base, 2.1661, eps1, eps2).unwrap();
    assert!((r0(&params, eps1, eps2).unwrap() - 2.1661).abs() < 1e-9);

    // Theorem 2: E0 unstable above threshold.
    let verdict = local_stability_e0(&params, eps1, eps2).unwrap();
    assert!(!verdict.is_stable());

    // Theorem 1 case 2: E+ exists and is a genuine fixed point.
    let eplus = positive_equilibrium(&params, eps1, eps2).unwrap();
    assert!(eplus.i().iter().all(|&x| x > 0.0));

    let initial = NetworkState::initial_uniform(params.n_classes(), 0.1).unwrap();
    let traj = simulate(
        &params,
        ConstantControl::new(eps1, eps2),
        &initial,
        3000.0,
        &SimulateOptions {
            n_out: 241,
            ..Default::default()
        },
    )
    .unwrap();
    let dist = traj.dist_series(&eplus).unwrap();
    assert!(
        *dist.last().unwrap() < 5e-3,
        "Dist+ residual {}",
        dist.last().unwrap()
    );
    // Endemic: infection persists at the equilibrium level.
    let final_i = traj.last_state().total_infected();
    assert!((final_i - eplus.total_infected()).abs() / eplus.total_infected() < 0.02);
}

#[test]
fn threshold_boundary_behaviour() {
    // Exactly at r0 = 1 the endemic equilibrium does not exist.
    let base = digg_params(0.01);
    let (eps1, eps2) = (0.1, 0.1);
    let (params, _) = calibrate_acceptance(&base, 1.0, eps1, eps2).unwrap();
    assert!(positive_equilibrium(&params, eps1, eps2).is_err());
    // Slightly above, it does.
    let (params, _) = calibrate_acceptance(&base, 1.01, eps1, eps2).unwrap();
    assert!(positive_equilibrium(&params, eps1, eps2).is_ok());
}

#[test]
fn stronger_countermeasures_reduce_r0_monotonically() {
    let params = digg_params(0.01);
    let mut prev = f64::INFINITY;
    for eps in [0.01, 0.02, 0.05, 0.1, 0.5] {
        let t = r0(&params, eps, eps).unwrap();
        assert!(t < prev, "r0 must fall as countermeasures strengthen");
        prev = t;
    }
}

#[test]
fn initial_condition_independence_of_extinction() {
    // Theorem 3 (global stability): any initial condition converges to E0.
    let base = digg_params(0.01);
    let (eps1, eps2) = (0.2, 0.05);
    let (params, _) = calibrate_acceptance(&base, 0.7220, eps1, eps2).unwrap();
    let e0 = zero_equilibrium(&params, eps1, eps2).unwrap();
    for i0 in [0.01, 0.25, 0.6, 0.95] {
        let initial = NetworkState::initial_uniform(params.n_classes(), i0).unwrap();
        let traj = simulate(
            &params,
            ConstantControl::new(eps1, eps2),
            &initial,
            600.0,
            &SimulateOptions {
                n_out: 61,
                ..Default::default()
            },
        )
        .unwrap();
        let d = traj.dist_series(&e0).unwrap();
        assert!(
            *d.last().unwrap() < 2e-3,
            "i0 = {i0}: residual {}",
            d.last().unwrap()
        );
    }
}
