//! Cross-crate integration tests: the agent-based simulators against the
//! mean-field ODE on generated scale-free networks (the validation layer
//! behind the reproduction, DESIGN.md §4).

// Index-based loops mirror the per-class stencils (workspace idiom).
#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use rumor_repro::net::generators::barabasi_albert;
use rumor_repro::net::metrics::largest_component_size;
use rumor_repro::prelude::*;
use rumor_repro::sim::abm::AbmConfig;
use rumor_repro::sim::ensemble::{max_deviation, mean_field_reference, run_ensemble, Simulator};

fn setup(n: usize) -> (rumor_repro::net::graph::Graph, ModelParams) {
    let mut rng = StdRng::seed_from_u64(2009);
    let g = barabasi_albert(n, 3, &mut rng).unwrap();
    let classes = DegreeClasses::from_graph(&g).unwrap();
    let params = ModelParams::builder(classes)
        .alpha(0.0)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 1.0 })
        .infectivity(Infectivity::paper_default())
        .build()
        .unwrap();
    (g, params)
}

#[test]
fn generated_network_is_usable() {
    let (g, params) = setup(1_000);
    // BA graphs are connected by construction.
    assert_eq!(largest_component_size(&g), g.node_count());
    assert!(params.n_classes() > 10);
    assert!(params.mean_degree() > 5.0);
}

#[test]
fn both_simulators_agree_with_mean_field_in_the_tail() {
    let (g, params) = setup(1_500);
    let cfg = AbmConfig {
        alpha: 0.0,
        dt: 0.1,
        tf: 50.0,
        eps1: 0.01,
        eps2: 0.12,
        initial_infected: 0.05,
        record_every: 50,
    };
    for sim in [Simulator::Synchronous, Simulator::Gillespie] {
        let ens = run_ensemble(&g, &params, &cfg, sim, 6, 11).unwrap();
        let mf = mean_field_reference(&params, &cfg, &ens.times).unwrap();
        let dev = max_deviation(&ens, &mf).unwrap();
        assert!(dev < 0.25, "{sim:?}: transient deviation {dev}");
        let tail = (ens.i_mean.last().unwrap() - mf.last().unwrap()).abs();
        assert!(tail < 0.03, "{sim:?}: tail deviation {tail}");
    }
}

#[test]
fn countermeasures_shrink_outbreaks_in_the_abm() {
    let (g, params) = setup(1_000);
    let weak = AbmConfig {
        alpha: 0.0,
        dt: 0.1,
        tf: 30.0,
        eps1: 0.0,
        eps2: 0.01,
        initial_infected: 0.05,
        record_every: 100,
    };
    let strong = AbmConfig {
        eps1: 0.1,
        eps2: 0.3,
        ..weak.clone()
    };
    let weak_r = run_ensemble(&g, &params, &weak, Simulator::Synchronous, 4, 3).unwrap();
    let strong_r = run_ensemble(&g, &params, &strong, Simulator::Synchronous, 4, 3).unwrap();
    assert!(
        strong_r.i_mean.last().unwrap() < weak_r.i_mean.last().unwrap(),
        "strong countermeasures must reduce final infection"
    );
}

#[test]
fn per_class_infection_profile_matches_mean_field() {
    // Stronger than aggregate agreement: the degree-resolved structure —
    // hubs getting infected more than leaves — must match class by class.
    let (g, params) = setup(3_000);
    // Compare during the growth phase: at later times the hub classes
    // peak and decline first (susceptible depletion), which makes the
    // fixed-time profile legitimately non-monotone.
    let cfg = AbmConfig {
        alpha: 0.0,
        dt: 0.1,
        tf: 4.0,
        eps1: 0.0,
        eps2: 0.05,
        initial_infected: 0.05,
        record_every: 40,
    };
    // Average per-class terminal infected fractions over a few ABM runs.
    let mut per_class_abm = vec![0.0; params.n_classes()];
    const RUNS: u64 = 5;
    for seed in 0..RUNS {
        let mut rng = rand::rngs::StdRng::seed_from_u64(40 + seed);
        let traj = rumor_repro::sim::abm::run(&g, &params, &cfg, &mut rng).unwrap();
        for c in 0..params.n_classes() {
            per_class_abm[c] += traj.class_infected(c).unwrap().last().unwrap() / RUNS as f64;
        }
    }
    // Mean-field per-class prediction at the same time.
    let init = NetworkState::initial_uniform(params.n_classes(), cfg.initial_infected).unwrap();
    let traj = simulate(
        &params,
        ConstantControl::new(cfg.eps1, cfg.eps2),
        &init,
        cfg.tf,
        &SimulateOptions::default(),
    )
    .unwrap();
    let mf = traj.last_state();
    // Compare on the well-populated classes (≥ 30 nodes): small classes
    // are dominated by sampling noise.
    let mut abm_profile = Vec::new();
    let mut ode_profile = Vec::new();
    for c in 0..params.n_classes() {
        if params.classes().count(c) < 30 {
            continue;
        }
        // During the active transient the annealed mean field runs ahead
        // of the quenched graph; bound the absolute gap loosely and pin
        // the *structure* with a correlation check below.
        let diff = (per_class_abm[c] - mf.i()[c]).abs();
        assert!(
            diff < 0.25,
            "class {c} (k = {}): abm {:.4} vs ode {:.4}",
            params.classes().degree(c),
            per_class_abm[c],
            mf.i()[c]
        );
        abm_profile.push(per_class_abm[c]);
        ode_profile.push(mf.i()[c]);
    }
    assert!(
        abm_profile.len() >= 5,
        "need several populated classes, got {}",
        abm_profile.len()
    );
    // Individual classes are noisy; the robust structural check is on
    // coarse degree bins: group ALL classes into low/mid/high-degree
    // terciles (by population) and demand the same increasing infection
    // gradient from both descriptions.
    let bin_means = |values: &dyn Fn(usize) -> f64| -> [f64; 3] {
        let total_nodes: usize = (0..params.n_classes())
            .map(|c| params.classes().count(c))
            .sum();
        let mut bins = [0.0_f64; 3];
        let mut mass = [0.0_f64; 3];
        let mut seen = 0usize;
        for c in 0..params.n_classes() {
            let count = params.classes().count(c);
            let frac = (seen + count / 2) as f64 / total_nodes as f64;
            let b = ((frac * 3.0) as usize).min(2);
            bins[b] += values(c) * count as f64;
            mass[b] += count as f64;
            seen += count;
        }
        [bins[0] / mass[0], bins[1] / mass[1], bins[2] / mass[2]]
    };
    let abm_bins = bin_means(&|c| per_class_abm[c]);
    let ode_bins = bin_means(&|c| mf.i()[c]);
    for bins in [abm_bins, ode_bins] {
        assert!(
            bins[0] < bins[1] && bins[1] < bins[2],
            "infection must rise with degree tercile: {bins:?}"
        );
    }
    // And the binned profiles agree within the annealed-vs-quenched gap.
    for b in 0..3 {
        let diff = (abm_bins[b] - ode_bins[b]).abs();
        assert!(
            diff < 0.2,
            "bin {b}: abm {:.4} vs ode {:.4}",
            abm_bins[b],
            ode_bins[b]
        );
    }
}

#[test]
fn digg_dataset_supports_abm_end_to_end() {
    // Full pipeline: synthesize dataset -> realize graph -> simulate.
    let dataset = DiggDataset::synthesize(DiggConfig {
        nodes: 1_200,
        k_max: 80,
        target_mean_degree: 10.0,
        ..DiggConfig::small()
    })
    .unwrap();
    let graph = dataset.realize_graph().unwrap();
    // The realized (erased) graph may drop a few stubs; rebuild classes
    // from the realized graph so the ABM and mean field share structure.
    let classes = DegreeClasses::from_graph(&graph).unwrap();
    let params = ModelParams::builder(classes)
        .alpha(0.0)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.5 })
        .infectivity(Infectivity::paper_default())
        .build()
        .unwrap();
    let cfg = AbmConfig {
        alpha: 0.0,
        dt: 0.1,
        tf: 20.0,
        eps1: 0.02,
        eps2: 0.1,
        initial_infected: 0.05,
        record_every: 50,
    };
    let ens = run_ensemble(&graph, &params, &cfg, Simulator::Gillespie, 3, 5).unwrap();
    assert!(ens.i_mean.iter().all(|v| (0.0..=1.0).contains(v)));
    assert_eq!(ens.runs, 3);
}
