//! End-to-end exercise of the guarded execution layer across crates:
//! fault-injected ODE integration, the FBSM watchdog, and fault-isolated
//! ensembles — all through the facade crate's prelude.

use rumor_repro::prelude::*;

fn small_params() -> ModelParams {
    let classes = DegreeClasses::from_degrees(&[2, 2, 3, 3, 4, 4, 6, 8]).unwrap();
    ModelParams::builder(classes)
        .alpha(0.01)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.05 })
        .infectivity(Infectivity::paper_default())
        .build()
        .unwrap()
}

#[test]
fn nan_fault_is_recovered_with_populated_report() {
    // Acceptance criterion (1) of the guarded-execution issue: a RHS that
    // returns NaN inside a scheduled window is recovered by the fallback
    // chain, the run completes, and the report names what happened.
    let params = small_params();
    let control = ConstantControl::new(0.2, 0.05);
    let model = RumorModel::new(&params, control);
    let initial = NetworkState::initial_uniform(params.n_classes(), 0.05).unwrap();
    let y0 = initial.to_flat();

    let schedule = FaultSchedule::new().nan_at(8.0, 0.5);
    let faulty = FaultyRhs::new(&model, schedule);
    let run = Guarded::new().run(&faulty, 0.0, &y0, 30.0).unwrap();

    assert!(faulty.injections() > 0, "the fault never fired");
    assert!(run.report.completed);
    assert!(!run.report.events.is_empty(), "no fallback engaged");
    assert!(run.report.events.iter().all(|e| e.rescued_by.is_some()));
    assert!((run.solution.last_time() - 30.0).abs() < 1e-9);
    // The stitched state is still a valid (finite, bounded) SIR state.
    let last = NetworkState::from_flat(run.solution.last_state()).unwrap();
    assert!(last.total_infected().is_finite());

    // A clean reference run agrees with the faulted one outside the
    // quarantined window to within the hold-induced error.
    let clean = Guarded::new().run(&model, 0.0, &y0, 30.0).unwrap();
    assert!(clean.report.is_clean());
    let a = clean.solution.last_state()[params.n_classes()];
    let b = run.solution.last_state()[params.n_classes()];
    assert!(
        (a - b).abs() < 0.05,
        "faulted run drifted too far: {a} vs {b}"
    );
}

#[test]
fn starved_watchdog_degrades_instead_of_erroring() {
    // Acceptance criterion (2): a sweep that cannot converge (starved of
    // iterations) must not error — the watchdog returns its best
    // checkpoint with converged = false and the degradation flagged.
    let params = small_params();
    let initial = NetworkState::initial_uniform(params.n_classes(), 0.05).unwrap();
    let bounds = ControlBounds::new(0.7, 0.7).unwrap();
    let weights = CostWeights::new(5.0, 10.0).unwrap();
    let options = WatchdogOptions {
        fbsm: FbsmOptions {
            n_nodes: 41,
            max_iterations: 2,
            tolerance: 1e-8,
            relaxation: 0.3,
            ..Default::default()
        },
        ..Default::default()
    };
    let sweep = optimize_guarded(&params, &initial, 20.0, &bounds, &weights, &options).unwrap();
    assert!(sweep.degraded);
    assert!(!sweep.result.converged);
    assert!(!sweep.restarts.is_empty());
    assert!(sweep.summary().contains("DEGRADED"));
    // The returned schedule is still usable: finite cost, valid bounds.
    assert!(sweep.result.cost.total().is_finite());
    assert!(sweep
        .result
        .control
        .eps1_values()
        .iter()
        .all(|&v| (0.0..=0.7).contains(&v)));
}

#[test]
fn isolated_ensemble_survives_a_poisoned_replica() {
    // Acceptance criterion (3), cross-crate: the public isolated-ensemble
    // API excludes a poisoned replica, keeps statistics over the
    // survivors, and records the exclusion.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rumor_repro::sim::ensemble::run_ensemble_isolated_with;
    use rumor_repro::sim::SimError;

    let policy = IsolationPolicy::default();
    let mut rng_graph = StdRng::seed_from_u64(11);
    let graph = rumor_repro::net::generators::barabasi_albert(400, 3, &mut rng_graph).unwrap();
    let classes = DegreeClasses::from_graph(&graph).unwrap();
    let params = ModelParams::builder(classes)
        .alpha(0.0)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.5 })
        .infectivity(Infectivity::paper_default())
        .build()
        .unwrap();
    let cfg = rumor_repro::sim::abm::AbmConfig {
        alpha: 0.0,
        dt: 0.1,
        tf: 10.0,
        eps1: 0.02,
        eps2: 0.1,
        initial_infected: 0.05,
        record_every: 10,
    };

    // Wrap the real ABM runner, poisoning replica 1 deterministically.
    let ens = run_ensemble_isolated_with(4, 17, &policy, |r, seed| {
        if r == 1 {
            return Err(SimError::Inconsistent("injected replica fault".into()));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        rumor_repro::sim::abm::run(&graph, &params, &cfg, &mut rng)
    })
    .unwrap();

    assert!(ens.degraded());
    assert_eq!(ens.attempted, 4);
    assert_eq!(ens.result.runs, 3);
    assert_eq!(ens.failures.len(), 1);
    assert_eq!(ens.failures[0].replica, 1);
    assert!(ens.failures[0].reason.contains("injected"));
    assert!(ens.result.i_mean.iter().all(|v| (0.0..=1.0).contains(v)));
}
