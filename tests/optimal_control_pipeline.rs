//! Cross-crate integration tests of the optimized-countermeasure
//! pipeline (paper Section IV / Fig. 4): forward–backward sweep, cost
//! accounting, and the heuristic comparison.

use rumor_repro::control::{cost, fbsm, heuristic};
use rumor_repro::prelude::*;

fn fig4_setup() -> (ModelParams, NetworkState, ControlBounds, CostWeights) {
    let dataset = DiggDataset::synthesize(DiggConfig {
        nodes: 1_000,
        k_max: 120,
        target_mean_degree: 15.0,
        ..DiggConfig::small()
    })
    .expect("dataset");
    let params = ModelParams::builder(dataset.classes().clone())
        .alpha(0.01)
        .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.15 })
        .infectivity(Infectivity::paper_default())
        .build()
        .expect("params");
    let initial = NetworkState::initial_uniform(params.n_classes(), 0.05).unwrap();
    let bounds = ControlBounds::new(0.7, 0.7).unwrap();
    (params, initial, bounds, CostWeights::paper_default())
}

fn quick_sweep(
    params: &ModelParams,
    initial: &NetworkState,
    bounds: &ControlBounds,
    weights: &CostWeights,
    tf: f64,
) -> fbsm::SweepResult {
    fbsm::optimize(
        params,
        initial,
        tf,
        bounds,
        weights,
        &FbsmOptions {
            n_nodes: 61,
            max_iterations: 250,
            tolerance: 1e-4,
            relaxation: 0.3,
            ..Default::default()
        },
    )
    .expect("sweep")
}

#[test]
fn fig4a_shape_truth_early_blocking_late() {
    let (params, initial, bounds, weights) = fig4_setup();
    let result = quick_sweep(&params, &initial, &bounds, &weights, 60.0);
    let e1 = result.control.eps1_values();
    let e2 = result.control.eps2_values();
    let n = e1.len();
    // Mid-horizon: truth-spreading dominates.
    assert!(
        e1[n / 2] > e2[n / 2],
        "mid-horizon eps1 {} must exceed eps2 {}",
        e1[n / 2],
        e2[n / 2]
    );
    // Deadline: blocking dominates (transversality forces eps1(tf) -> 0).
    assert!(e2[n - 1] > e1[n - 1]);
    // Controls respect the box everywhere.
    assert!(e1
        .iter()
        .chain(e2)
        .all(|&v| (0.0..=0.7 + 1e-12).contains(&v)));
}

#[test]
fn fig4c_optimized_beats_heuristic_across_horizons() {
    let (params, initial, bounds, weights) = fig4_setup();
    for tf in [30.0, 60.0] {
        let opt = quick_sweep(&params, &initial, &bounds, &weights, tf);
        let target = opt.trajectory.last_state().total_infected().max(1e-6);
        let heur = heuristic::tune(&params, &initial, tf, &bounds, &weights, target, 61)
            .expect("heuristic tune");
        assert!(
            opt.cost.running() < heur.cost.running(),
            "tf = {tf}: optimized {} must beat heuristic {}",
            opt.cost.running(),
            heur.cost.running()
        );
        // Equal effectiveness within tolerance.
        let h_terminal = heur.trajectory.last_state().total_infected();
        assert!(h_terminal <= target * 1.10 + 1e-9);
    }
}

#[test]
fn optimized_control_suppresses_infection() {
    let (params, initial, bounds, weights) = fig4_setup();
    let tf = 60.0;
    let result = quick_sweep(&params, &initial, &bounds, &weights, tf);
    let free = simulate(
        &params,
        ConstantControl::none(),
        &initial,
        tf,
        &SimulateOptions::default(),
    )
    .unwrap();
    let controlled = result.trajectory.last_state().total_infected();
    let uncontrolled = free.last_state().total_infected();
    assert!(
        controlled < 0.2 * uncontrolled,
        "controlled {controlled} vs uncontrolled {uncontrolled}"
    );
}

#[test]
fn cost_accounting_is_consistent() {
    let (params, initial, bounds, weights) = fig4_setup();
    let result = quick_sweep(&params, &initial, &bounds, &weights, 30.0);
    // Re-evaluating the final schedule reproduces the reported cost.
    let re = cost::evaluate(&result.trajectory, &result.control, &weights).unwrap();
    assert!((re.total() - result.cost.total()).abs() < 1e-9);
    assert!(re.truth_cost >= 0.0 && re.blocking_cost >= 0.0);
    assert!(re.terminal_infection >= 0.0);
}

#[test]
fn sweep_improves_on_initial_guess() {
    let (params, initial, bounds, weights) = fig4_setup();
    let tf = 40.0;
    let result = quick_sweep(&params, &initial, &bounds, &weights, tf);
    // The initial guess is the constant mid-box schedule.
    let guess = rumor_repro::control::schedule::PiecewiseControl::constant(
        tf,
        61,
        bounds.eps1_max / 2.0,
        bounds.eps2_max / 2.0,
    )
    .unwrap();
    let guess_traj = simulate(
        &params,
        &guess,
        &initial,
        tf,
        &SimulateOptions {
            n_out: 61,
            ..Default::default()
        },
    )
    .unwrap();
    let guess_cost = cost::evaluate(&guess_traj, &guess, &weights).unwrap();
    assert!(
        result.cost.total() < guess_cost.total(),
        "optimized {} vs initial guess {}",
        result.cost.total(),
        guess_cost.total()
    );
}
