//! Property-based tests of the numerical substrate.

use proptest::prelude::*;
use rumor_numerics::interp::{LinearInterp, PchipInterp};
use rumor_numerics::lu::{det, solve, Lu};
use rumor_numerics::matrix::{vecops, Matrix};
use rumor_numerics::quadrature::{simpson, trapezoid, trapezoid_sampled};
use rumor_numerics::roots::{bisect, brent, RootConfig};
use rumor_numerics::stats::{mean, variance, RunningStats};

/// Strategy: a diagonally dominant (hence invertible, well-conditioned)
/// square matrix of the given size plus a right-hand side.
fn dominant_system(n: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (
        proptest::collection::vec(-1.0..1.0_f64, n * n),
        proptest::collection::vec(-10.0..10.0_f64, n),
    )
}

fn to_dominant_matrix(n: usize, raw: &[f64]) -> Matrix {
    let mut m = Matrix::from_vec(n, n, raw.to_vec()).expect("shape");
    for i in 0..n {
        // Row dominance: diagonal exceeds the absolute row sum.
        let row_sum: f64 = (0..n).filter(|&j| j != i).map(|j| m[(i, j)].abs()).sum();
        m[(i, i)] = row_sum + 1.0 + m[(i, i)].abs();
    }
    m
}

proptest! {
    #[test]
    fn lu_solve_roundtrip((raw, b) in dominant_system(6)) {
        let a = to_dominant_matrix(6, &raw);
        let x = solve(&a, &b).expect("solvable");
        let back = a.matvec(&x).expect("shape");
        let err = vecops::dist_inf(&back, &b);
        prop_assert!(err < 1e-8, "residual {err}");
    }

    #[test]
    fn lu_det_matches_inverse_product((raw, _b) in dominant_system(5)) {
        let a = to_dominant_matrix(5, &raw);
        let lu = Lu::decompose(&a).expect("decompose");
        let d = lu.det();
        prop_assert!(d.abs() > 0.5, "dominant matrices stay far from singular");
        let inv = lu.inverse().expect("invert");
        let d_inv = det(&inv).expect("det");
        prop_assert!((d * d_inv - 1.0).abs() < 1e-6, "det(A)·det(A⁻¹) = {}", d * d_inv);
    }

    #[test]
    fn matmul_transpose_identity((raw, _b) in dominant_system(4)) {
        // (A·B)ᵀ = Bᵀ·Aᵀ with B = Aᵀ.
        let a = to_dominant_matrix(4, &raw);
        let b = a.transpose();
        let left = a.matmul(&b).expect("shape").transpose();
        let right = b.transpose().matmul(&a.transpose()).expect("shape");
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn linear_interp_is_bounded_by_node_values(
        ys in proptest::collection::vec(-5.0..5.0_f64, 2..20),
        q in 0.0..1.0_f64,
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let hi = xs[xs.len() - 1];
        let li = LinearInterp::new(xs, ys.clone()).expect("grid");
        let v = li.eval(q * hi);
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let up = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-12 && v <= up + 1e-12);
    }

    #[test]
    fn pchip_never_overshoots_data_range(
        ys in proptest::collection::vec(0.0..1.0_f64, 3..15),
        q in 0.0..1.0_f64,
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let hi = xs[xs.len() - 1];
        let p = PchipInterp::new(xs, ys.clone()).expect("grid");
        let v = p.eval(q * hi);
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let up = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Monotone-preserving cubic: values stay within the data range.
        prop_assert!(v >= lo - 1e-9 && v <= up + 1e-9, "v = {v} outside [{lo}, {up}]");
    }

    #[test]
    fn quadrature_is_linear_in_the_integrand(a in -3.0..3.0_f64, b in -3.0..3.0_f64) {
        // ∫(a·f + b·g) = a∫f + b∫g for f = x², g = sin x on [0, 2].
        let f = |x: f64| x * x;
        let g = |x: f64| x.sin();
        let combo = trapezoid(|x| a * f(x) + b * g(x), 0.0, 2.0, 400).expect("quad");
        let parts = a * trapezoid(f, 0.0, 2.0, 400).expect("quad")
            + b * trapezoid(g, 0.0, 2.0, 400).expect("quad");
        prop_assert!((combo - parts).abs() < 1e-9);
    }

    #[test]
    fn simpson_at_least_as_accurate_as_trapezoid_on_smooth(k in 1.0..4.0_f64) {
        let exact = (k * 2.0).sin() / k; // ∫0^2 cos(kx) dx
        let t = (trapezoid(|x| (k * x).cos(), 0.0, 2.0, 64).expect("quad") - exact).abs();
        let s = (simpson(|x| (k * x).cos(), 0.0, 2.0, 64).expect("quad") - exact).abs();
        prop_assert!(s <= t + 1e-12, "simpson {s} vs trapezoid {t}");
    }

    #[test]
    fn sampled_trapezoid_matches_closed_form_for_lines(
        slope in -5.0..5.0_f64,
        intercept in -5.0..5.0_f64,
    ) {
        let ts: Vec<f64> = vec![0.0, 0.3, 0.7, 1.3, 2.0];
        let ys: Vec<f64> = ts.iter().map(|&t| slope * t + intercept).collect();
        let v = trapezoid_sampled(&ts, &ys).expect("quad");
        let exact = slope * 2.0_f64 * 2.0 / 2.0 + intercept * 2.0;
        prop_assert!((v - exact).abs() < 1e-10);
    }

    #[test]
    fn bisect_and_brent_agree(c in 0.1..20.0_f64) {
        // Root of x³ - c at c^(1/3).
        let cfg = RootConfig::default();
        let rb = bisect(|x| x * x * x - c, 0.0, 30.0, &cfg).expect("bisect").x;
        let rr = brent(|x| x * x * x - c, 0.0, 30.0, &cfg).expect("brent").x;
        prop_assert!((rb - rr).abs() < 1e-7);
        prop_assert!((rr - c.cbrt()).abs() < 1e-7);
    }

    #[test]
    fn running_stats_equals_batch_stats(
        xs in proptest::collection::vec(-100.0..100.0_f64, 2..50),
    ) {
        let rs: RunningStats = xs.iter().copied().collect();
        let m = mean(&xs).expect("mean");
        let v = variance(&xs).expect("variance");
        prop_assert!((rs.mean().expect("mean") - m).abs() < 1e-9);
        prop_assert!((rs.variance().expect("var") - v).abs() / v.max(1.0) < 1e-9);
    }

    #[test]
    fn running_stats_merge_is_order_independent(
        xs in proptest::collection::vec(-10.0..10.0_f64, 1..20),
        ys in proptest::collection::vec(-10.0..10.0_f64, 1..20),
    ) {
        let a: RunningStats = xs.iter().copied().collect();
        let b: RunningStats = ys.iter().copied().collect();
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert!((ab.mean().expect("m") - ba.mean().expect("m")).abs() < 1e-9);
        if let (Some(va), Some(vb)) = (ab.variance(), ba.variance()) {
            prop_assert!((va - vb).abs() < 1e-9);
        }
    }

    #[test]
    fn vecops_axpy_matches_manual(
        alpha in -3.0..3.0_f64,
        x in proptest::collection::vec(-5.0..5.0_f64, 1..10),
    ) {
        let mut y = vec![1.0; x.len()];
        vecops::axpy(alpha, &x, &mut y);
        for (yi, xi) in y.iter().zip(&x) {
            prop_assert!((yi - (1.0 + alpha * xi)).abs() < 1e-12);
        }
    }
}
