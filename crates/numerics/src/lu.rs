//! LU decomposition with partial pivoting.
//!
//! The decomposition `P·A = L·U` supports linear solves, determinants and
//! inverses. It backs the implicit ODE stepper in `rumor-ode` and several
//! checks in the stability analysis.

use crate::matrix::Matrix;
use crate::{NumericsError, Result};

/// LU decomposition of a square matrix with partial (row) pivoting.
///
/// # Example
///
/// ```
/// use rumor_numerics::{lu::Lu, matrix::Matrix};
///
/// # fn main() -> Result<(), rumor_numerics::NumericsError> {
/// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]])?;
/// let lu = Lu::decompose(&a)?;
/// let x = lu.solve(&[10.0, 12.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined storage: strictly-lower part holds L (unit diagonal
    /// implied), upper part holds U.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0), used for the determinant.
    perm_sign: f64,
}

impl Lu {
    /// Computes the decomposition `P·A = L·U`.
    ///
    /// # Errors
    ///
    /// * [`NumericsError::InvalidArgument`] if `a` is not square.
    /// * [`NumericsError::SingularMatrix`] if a pivot is exactly zero.
    pub fn decompose(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(NumericsError::InvalidArgument(
                "lu decomposition requires a square matrix".into(),
            ));
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Find pivot row.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val == 0.0 {
                return Err(NumericsError::SingularMatrix);
            }
            if pivot_row != k {
                lu.swap_rows(pivot_row, k);
                perm.swap(pivot_row, k);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }

        Ok(Lu {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the decomposed matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(NumericsError::ShapeMismatch {
                expected: format!("rhs of length {n}"),
                found: format!("rhs of length {}", b.len()),
            });
        }
        // Apply permutation, then forward substitution (L has unit diagonal).
        let mut y: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for i in 1..n {
            let mut s = y[i];
            for j in 0..i {
                s -= self.lu[(i, j)] * y[j];
            }
            y[i] = s;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.lu[(i, j)] * y[j];
            }
            y[i] = s / self.lu[(i, i)];
        }
        Ok(y)
    }

    /// Solves `A·X = B` for a matrix right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::ShapeMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(NumericsError::ShapeMismatch {
                expected: format!("rhs with {n} rows"),
                found: format!("rhs with {} rows", b.rows()),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = self.solve(&b.col(j))?;
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        Ok(out)
    }

    /// Determinant of the decomposed matrix.
    pub fn det(&self) -> f64 {
        self.perm_sign * self.lu.diag().iter().product::<f64>()
    }

    /// Inverse of the decomposed matrix.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (the decomposition already guarantees
    /// non-singularity, so this is effectively infallible).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

/// Convenience wrapper: solves `A·x = b` via a fresh LU decomposition.
///
/// # Errors
///
/// See [`Lu::decompose`] and [`Lu::solve`].
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Lu::decompose(a)?.solve(b)
}

/// Convenience wrapper: determinant of `a` via LU decomposition.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] if `a` is not square. A
/// singular matrix yields `Ok(0.0)`.
pub fn det(a: &Matrix) -> Result<f64> {
    match Lu::decompose(a) {
        Ok(lu) => Ok(lu.det()),
        Err(NumericsError::SingularMatrix) => Ok(0.0),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::vecops::dist_inf;

    #[test]
    fn solve_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = solve(&a, &[3.0, 5.0]).unwrap();
        assert!(dist_inf(&x, &[0.8, 1.4]) < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!(dist_inf(&x, &[3.0, 2.0]) < 1e-14);
    }

    #[test]
    fn singular_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            Lu::decompose(&a),
            Err(NumericsError::SingularMatrix)
        ));
        assert_eq!(det(&a).unwrap(), 0.0);
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(Lu::decompose(&a).is_err());
    }

    #[test]
    fn determinant_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert!((det(&a).unwrap() + 2.0).abs() < 1e-12);
        let i = Matrix::identity(4);
        assert!((det(&i).unwrap() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn determinant_sign_tracks_permutation() {
        // This matrix needs a swap; det = -1 for the 2x2 anti-identity.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!((det(&a).unwrap() + 1.0).abs() < 1e-15);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = Lu::decompose(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn solve_matrix_rhs() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 6.0], &[2.0, 4.0]]).unwrap();
        let x = Lu::decompose(&a).unwrap().solve_matrix(&b).unwrap();
        let expect = Matrix::from_rows(&[&[1.0, 2.0], &[1.0, 2.0]]).unwrap();
        assert!(x.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn rhs_length_checked() {
        let a = Matrix::identity(3);
        let lu = Lu::decompose(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn larger_random_like_system() {
        // Deterministic "random-ish" well-conditioned system.
        let n = 12;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                10.0 + i as f64
            } else {
                ((i * 7 + j * 13) % 5) as f64 * 0.3
            }
        });
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 3.5).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = solve(&a, &b).unwrap();
        assert!(dist_inf(&x, &x_true) < 1e-10);
    }
}
