//! Numerical substrate for the rumor-propagation reproduction workspace.
//!
//! This crate provides the numerical building blocks that the rest of the
//! workspace is built on:
//!
//! * [`matrix`] — a small dense row-major [`matrix::Matrix`] with the usual
//!   arithmetic, norms and slicing helpers.
//! * [`lu`] — LU decomposition with partial pivoting, linear solves,
//!   determinants and inverses.
//! * [`qr`] — Householder QR decomposition and least-squares solves.
//! * [`eigen`] — eigenvalues of general real matrices via Hessenberg
//!   reduction followed by the shifted QR iteration (complex pairs are
//!   returned as [`eigen::Complex`] values).
//! * [`roots`] — scalar root finding (bisection, Newton, Brent).
//! * [`quadrature`] — numerical integration (trapezoid, Simpson, adaptive
//!   Simpson, Gauss–Legendre, and integration of sampled trajectories).
//! * [`interp`] — piecewise-linear and monotone cubic (PCHIP) interpolation
//!   on grids, used to store continuous control signals.
//! * [`stats`] — summary statistics and simple regressions (used by the
//!   power-law fitting in `rumor-net`).
//!
//! # Example
//!
//! ```
//! use rumor_numerics::roots::{brent, RootConfig};
//!
//! # fn main() -> Result<(), rumor_numerics::NumericsError> {
//! // Find the positive root of x^2 - 2.
//! let root = brent(|x| x * x - 2.0, 0.0, 2.0, &RootConfig::default())?;
//! assert!((root.x - 2.0_f64.sqrt()).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

// Deliberate idioms throughout this workspace:
// * `!(x > 0.0)` rejects NaN alongside non-positive values, which the
//   suggested `x <= 0.0` would silently accept;
// * index-based loops mirror the mathematical stencils of the numeric
//   kernels more directly than iterator chains.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod eigen;
pub mod interp;
pub mod lu;
pub mod matrix;
pub mod qr;
pub mod quadrature;
pub mod roots;
pub mod stats;

mod error;

pub use error::NumericsError;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, NumericsError>;
