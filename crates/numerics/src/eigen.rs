//! Eigenvalues of general real matrices.
//!
//! The implementation follows the classical dense route: reduce the matrix
//! to upper Hessenberg form with Householder similarity transformations,
//! then run the Francis implicit double-shift QR iteration with deflation.
//! Complex conjugate pairs are returned as [`Complex`] values.
//!
//! The rumor model's stability analysis (Theorem 2 of the paper) needs the
//! sign of the spectral abscissa of the Jacobian at an equilibrium; see
//! [`spectral_abscissa`] and [`is_hurwitz`].

use crate::matrix::Matrix;
use crate::{NumericsError, Result};
use std::fmt;

/// A complex number with `f64` components.
///
/// Only the tiny surface needed for eigenvalue reporting is provided; this
/// is not a general complex-arithmetic type.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    pub fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Modulus `sqrt(re² + im²)`.
    pub fn abs(&self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Returns `true` if the imaginary part is negligible relative to the
    /// modulus.
    pub fn is_approx_real(&self, tol: f64) -> bool {
        self.im.abs() <= tol * self.abs().max(1.0)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

/// Reduces `a` to upper Hessenberg form via Householder similarity
/// transformations (the result is similar to `a`, so it has the same
/// eigenvalues).
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] if `a` is not square.
pub fn hessenberg(a: &Matrix) -> Result<Matrix> {
    if !a.is_square() {
        return Err(NumericsError::InvalidArgument(
            "hessenberg reduction requires a square matrix".into(),
        ));
    }
    let n = a.rows();
    let mut h = a.clone();
    if n < 3 {
        return Ok(h);
    }
    for k in 0..n - 2 {
        // Householder vector annihilating h[k+2.., k].
        let mut norm2 = 0.0;
        for i in (k + 1)..n {
            norm2 += h[(i, k)] * h[(i, k)];
        }
        let norm = norm2.sqrt();
        if norm == 0.0 {
            continue;
        }
        let alpha = if h[(k + 1, k)] > 0.0 { -norm } else { norm };
        let mut v: Vec<f64> = ((k + 1)..n).map(|i| h[(i, k)]).collect();
        v[0] -= alpha;
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 == 0.0 {
            continue;
        }
        // H := P H P with P = I - 2 v v^T / (v^T v) acting on rows/cols k+1..n.
        // Left application (rows k+1..n).
        for j in 0..n {
            let mut dot = 0.0;
            for i in (k + 1)..n {
                dot += v[i - k - 1] * h[(i, j)];
            }
            let factor = 2.0 * dot / vnorm2;
            for i in (k + 1)..n {
                h[(i, j)] -= factor * v[i - k - 1];
            }
        }
        // Right application (columns k+1..n).
        for i in 0..n {
            let mut dot = 0.0;
            for j in (k + 1)..n {
                dot += h[(i, j)] * v[j - k - 1];
            }
            let factor = 2.0 * dot / vnorm2;
            for j in (k + 1)..n {
                h[(i, j)] -= factor * v[j - k - 1];
            }
        }
    }
    // Clean below the first subdiagonal.
    for i in 2..n {
        for j in 0..(i - 1) {
            h[(i, j)] = 0.0;
        }
    }
    Ok(h)
}

/// Householder reflection data for a 3-vector: `(v, beta)` such that
/// `(I - beta v v^T) x = ±‖x‖ e1`.
fn house3(x: f64, y: f64, z: f64) -> Option<([f64; 3], f64)> {
    let norm = (x * x + y * y + z * z).sqrt();
    if norm == 0.0 {
        return None;
    }
    let alpha = if x > 0.0 { -norm } else { norm };
    let v = [x - alpha, y, z];
    let vnorm2 = v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
    if vnorm2 == 0.0 {
        return None;
    }
    Some((v, 2.0 / vnorm2))
}

/// Computes the eigenvalues of the 2×2 block `[[a, b], [c, d]]`, returning
/// a complex conjugate pair when the discriminant is negative.
fn eig2x2(a: f64, b: f64, c: f64, d: f64) -> (Complex, Complex) {
    let tr = a + d;
    let det = a * d - b * c;
    let disc = tr * tr / 4.0 - det;
    if disc >= 0.0 {
        let sq = disc.sqrt();
        // Stable computation: avoid cancellation by computing the larger
        // root first and deriving the other from the determinant.
        let r1 = tr / 2.0 + if tr >= 0.0 { sq } else { -sq };
        let r2 = if r1 != 0.0 {
            det / r1
        } else {
            tr / 2.0 - sq.copysign(tr)
        };
        (Complex::real(r1), Complex::real(r2))
    } else {
        let im = (-disc).sqrt();
        (Complex::new(tr / 2.0, im), Complex::new(tr / 2.0, -im))
    }
}

/// Computes all eigenvalues of a general real square matrix.
///
/// Uses Hessenberg reduction followed by the Francis implicit
/// double-shift QR iteration with deflation and exceptional shifts.
///
/// # Errors
///
/// * [`NumericsError::InvalidArgument`] if `a` is not square.
/// * [`NumericsError::NoConvergence`] if the QR iteration stalls (extremely
///   rare for well-scaled matrices).
///
/// # Example
///
/// ```
/// use rumor_numerics::{eigen::eigenvalues, matrix::Matrix};
///
/// # fn main() -> Result<(), rumor_numerics::NumericsError> {
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]])?;
/// let mut eigs: Vec<f64> = eigenvalues(&a)?.iter().map(|c| c.re).collect();
/// eigs.sort_by(f64::total_cmp);
/// assert!((eigs[0] - 2.0).abs() < 1e-12 && (eigs[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn eigenvalues(a: &Matrix) -> Result<Vec<Complex>> {
    let mut h = hessenberg(a)?;
    let n = h.rows();
    if n == 0 {
        return Ok(Vec::new());
    }
    if n == 1 {
        return Ok(vec![Complex::real(h[(0, 0)])]);
    }
    let hnorm = h.frobenius_norm().max(f64::MIN_POSITIVE);
    // Absolute deflation floor: subdiagonal entries below n·ε·‖H‖ are
    // rounding noise (e.g. from the Hessenberg reduction of a
    // rank-deficient matrix); zeroing them perturbs eigenvalues by at
    // most that amount, which is backward stable. Without this floor the
    // purely relative test stalls on blocks whose diagonal is itself
    // ~ε‖H‖ (zero eigenvalues of high multiplicity).
    let abs_floor = f64::EPSILON * hnorm * n as f64;
    let mut eigs: Vec<Complex> = Vec::with_capacity(n);

    let mut p = n - 1; // index of the bottom of the active block
    let mut iters_this_block = 0usize;
    const MAX_ITERS: usize = 100;

    loop {
        // Deflation scan: find the start `l` of the active unreduced block.
        let mut l = p;
        while l > 0 {
            let s = h[(l - 1, l - 1)].abs() + h[(l, l)].abs();
            let s = if s == 0.0 { hnorm } else { s };
            if h[(l, l - 1)].abs() <= (f64::EPSILON * s).max(abs_floor) {
                h[(l, l - 1)] = 0.0;
                break;
            }
            l -= 1;
        }

        if l == p {
            // 1×1 block has converged.
            eigs.push(Complex::real(h[(p, p)]));
            if p == 0 {
                break;
            }
            p -= 1;
            iters_this_block = 0;
            continue;
        }
        if l + 1 == p {
            // 2×2 block has converged.
            let (e1, e2) = eig2x2(h[(l, l)], h[(l, p)], h[(p, l)], h[(p, p)]);
            eigs.push(e1);
            eigs.push(e2);
            if l == 0 {
                break;
            }
            p = l - 1;
            iters_this_block = 0;
            continue;
        }

        iters_this_block += 1;
        if iters_this_block > MAX_ITERS {
            return Err(NumericsError::NoConvergence {
                algorithm: "francis qr iteration",
                iterations: MAX_ITERS,
            });
        }

        // Double-shift from the trailing 2×2 of the active block; switch to
        // an exceptional (ad hoc) shift every 10 stalled iterations.
        let (s, t) = if iters_this_block % 10 == 0 {
            let ex = h[(p, p - 1)].abs() + h[(p - 1, p - 2)].abs();
            (1.5 * ex, ex * ex)
        } else {
            (
                h[(p - 1, p - 1)] + h[(p, p)],
                h[(p - 1, p - 1)] * h[(p, p)] - h[(p - 1, p)] * h[(p, p - 1)],
            )
        };

        // First column of (H - aI)(H - bI) with a+b = s, ab = t, at row l.
        let mut x = h[(l, l)] * h[(l, l)] + h[(l, l + 1)] * h[(l + 1, l)] - s * h[(l, l)] + t;
        let mut y = h[(l + 1, l)] * (h[(l, l)] + h[(l + 1, l + 1)] - s);
        let mut z = if l + 2 <= p {
            h[(l + 2, l + 1)] * h[(l + 1, l)]
        } else {
            0.0
        };

        // Bulge chase.
        for k in l..p - 1 {
            if let Some((v, beta)) = house3(x, y, z) {
                let q0 = if k > l { k - 1 } else { l };
                // Left: rows k..k+3 (clamped to p), columns q0..=p.
                let rmax = (k + 2).min(p);
                for j in q0..=p {
                    let mut dot = 0.0;
                    for (vi, i) in (k..=rmax).enumerate() {
                        dot += v[vi] * h[(i, j)];
                    }
                    let f = beta * dot;
                    for (vi, i) in (k..=rmax).enumerate() {
                        h[(i, j)] -= f * v[vi];
                    }
                }
                // Right: columns k..k+3 (clamped), rows l..=min(k+3, p).
                let imax = (k + 3).min(p);
                for i in l..=imax {
                    let mut dot = 0.0;
                    for (vj, j) in (k..=rmax).enumerate() {
                        dot += h[(i, j)] * v[vj];
                    }
                    let f = beta * dot;
                    for (vj, j) in (k..=rmax).enumerate() {
                        h[(i, j)] -= f * v[vj];
                    }
                }
            }
            x = h[(k + 1, k)];
            y = h[(k + 2, k)];
            z = if k + 3 <= p { h[(k + 3, k)] } else { 0.0 };
        }

        // Final Givens rotation on the trailing 2-vector [x, y].
        let r = x.hypot(y);
        if r > 0.0 {
            let c = x / r;
            let sgiv = y / r;
            let k = p - 1;
            for j in (k - 1).max(l)..=p {
                let t1 = h[(k, j)];
                let t2 = h[(p, j)];
                h[(k, j)] = c * t1 + sgiv * t2;
                h[(p, j)] = -sgiv * t1 + c * t2;
            }
            for i in l..=p {
                let t1 = h[(i, k)];
                let t2 = h[(i, p)];
                h[(i, k)] = c * t1 + sgiv * t2;
                h[(i, p)] = -sgiv * t1 + c * t2;
            }
        }
    }

    debug_assert_eq!(eigs.len(), n);
    Ok(eigs)
}

/// Maximum real part over all eigenvalues (the *spectral abscissa*).
///
/// An equilibrium of a smooth ODE system is locally asymptotically stable
/// when the spectral abscissa of its Jacobian is negative.
///
/// # Errors
///
/// Propagates errors from [`eigenvalues`].
pub fn spectral_abscissa(a: &Matrix) -> Result<f64> {
    Ok(eigenvalues(a)?
        .iter()
        .map(|c| c.re)
        .fold(f64::NEG_INFINITY, f64::max))
}

/// Returns `true` if all eigenvalues of `a` have strictly negative real
/// part (i.e. `a` is a Hurwitz matrix).
///
/// # Errors
///
/// Propagates errors from [`eigenvalues`].
pub fn is_hurwitz(a: &Matrix) -> Result<bool> {
    Ok(spectral_abscissa(a)? < 0.0)
}

/// Spectral radius (maximum eigenvalue modulus).
///
/// # Errors
///
/// Propagates errors from [`eigenvalues`].
pub fn spectral_radius(a: &Matrix) -> Result<f64> {
    Ok(eigenvalues(a)?.iter().map(Complex::abs).fold(0.0, f64::max))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_real(eigs: &[Complex]) -> Vec<f64> {
        let mut v: Vec<f64> = eigs.iter().map(|c| c.re).collect();
        v.sort_by(f64::total_cmp);
        v
    }

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_diag(&[3.0, -1.0, 5.0]);
        let eigs = eigenvalues(&a).unwrap();
        assert_eq!(eigs.len(), 3);
        let re = sorted_real(&eigs);
        assert!((re[0] + 1.0).abs() < 1e-10);
        assert!((re[1] - 3.0).abs() < 1e-10);
        assert!((re[2] - 5.0).abs() < 1e-10);
        assert!(eigs.iter().all(|c| c.im.abs() < 1e-10));
    }

    #[test]
    fn upper_triangular_eigs_are_diagonal() {
        let a =
            Matrix::from_rows(&[&[1.0, 5.0, -3.0], &[0.0, 2.0, 9.0], &[0.0, 0.0, -4.0]]).unwrap();
        let re = sorted_real(&eigenvalues(&a).unwrap());
        assert!((re[0] + 4.0).abs() < 1e-9);
        assert!((re[1] - 1.0).abs() < 1e-9);
        assert!((re[2] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rotation_matrix_has_complex_pair() {
        // 90° rotation: eigenvalues ±i.
        let a = Matrix::from_rows(&[&[0.0, -1.0], &[1.0, 0.0]]).unwrap();
        let eigs = eigenvalues(&a).unwrap();
        assert_eq!(eigs.len(), 2);
        for e in &eigs {
            assert!(e.re.abs() < 1e-12);
            assert!((e.im.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn companion_matrix_roots() {
        // Companion matrix of x^3 - 6x^2 + 11x - 6 = (x-1)(x-2)(x-3).
        let a =
            Matrix::from_rows(&[&[6.0, -11.0, 6.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]).unwrap();
        let re = sorted_real(&eigenvalues(&a).unwrap());
        assert!((re[0] - 1.0).abs() < 1e-8);
        assert!((re[1] - 2.0).abs() < 1e-8);
        assert!((re[2] - 3.0).abs() < 1e-8);
    }

    #[test]
    fn companion_with_complex_roots() {
        // x^3 - x^2 + x - 1 = (x-1)(x^2+1): roots 1, ±i.
        let a =
            Matrix::from_rows(&[&[1.0, -1.0, 1.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]).unwrap();
        let eigs = eigenvalues(&a).unwrap();
        let n_complex = eigs.iter().filter(|c| c.im.abs() > 0.5).count();
        assert_eq!(n_complex, 2);
        let real_eig = eigs.iter().find(|c| c.im.abs() < 1e-6).unwrap();
        assert!((real_eig.re - 1.0).abs() < 1e-8);
    }

    #[test]
    fn symmetric_matrix_real_spectrum() {
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, 0.0, 0.0],
            &[1.0, 4.0, 1.0, 0.0],
            &[0.0, 1.0, 4.0, 1.0],
            &[0.0, 0.0, 1.0, 4.0],
        ])
        .unwrap();
        let eigs = eigenvalues(&a).unwrap();
        assert!(eigs.iter().all(|c| c.im.abs() < 1e-9));
        // Tridiagonal Toeplitz: eigenvalues 4 + 2cos(kπ/5), k = 1..4.
        let mut expect: Vec<f64> = (1..=4)
            .map(|k| 4.0 + 2.0 * (k as f64 * std::f64::consts::PI / 5.0).cos())
            .collect();
        expect.sort_by(f64::total_cmp);
        let got = sorted_real(&eigs);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-8, "got {g}, expect {e}");
        }
    }

    #[test]
    fn trace_and_det_consistency_random_like() {
        // Eigenvalue sums/products must match trace/det.
        let a = Matrix::from_fn(6, 6, |i, j| ((i * 5 + j * 3 + 1) % 7) as f64 - 3.0);
        let eigs = eigenvalues(&a).unwrap();
        let sum_re: f64 = eigs.iter().map(|c| c.re).sum();
        let sum_im: f64 = eigs.iter().map(|c| c.im).sum();
        assert!(
            (sum_re - a.trace()).abs() < 1e-7,
            "trace mismatch: {sum_re}"
        );
        assert!(sum_im.abs() < 1e-7, "imaginary parts must cancel");
        let det = crate::lu::det(&a).unwrap();
        // Product of complex eigenvalues (real part only survives).
        let (mut pr, mut pi) = (1.0, 0.0);
        for e in &eigs {
            let (nr, ni) = (pr * e.re - pi * e.im, pr * e.im + pi * e.re);
            pr = nr;
            pi = ni;
        }
        assert!(
            (pr - det).abs() < 1e-5 * det.abs().max(1.0),
            "det mismatch: {pr} vs {det}"
        );
        assert!(pi.abs() < 1e-5 * det.abs().max(1.0));
    }

    #[test]
    fn hessenberg_preserves_eigen_relevant_structure() {
        let a = Matrix::from_fn(5, 5, |i, j| ((i * 3 + j * 7 + 2) % 11) as f64);
        let h = hessenberg(&a).unwrap();
        // Zero below first subdiagonal.
        for i in 2..5 {
            for j in 0..i - 1 {
                assert_eq!(h[(i, j)], 0.0);
            }
        }
        // Similar matrices share trace.
        assert!((h.trace() - a.trace()).abs() < 1e-9);
    }

    #[test]
    fn hurwitz_classification() {
        let stable = Matrix::from_rows(&[&[-1.0, 0.5], &[0.0, -2.0]]).unwrap();
        assert!(is_hurwitz(&stable).unwrap());
        let unstable = Matrix::from_rows(&[&[0.1, 0.0], &[0.0, -2.0]]).unwrap();
        assert!(!is_hurwitz(&unstable).unwrap());
    }

    #[test]
    fn spectral_radius_of_scaled_identity() {
        let a = Matrix::identity(4).scaled(-2.5);
        assert!((spectral_radius(&a).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn one_by_one_and_empty() {
        let a = Matrix::from_rows(&[&[7.0]]).unwrap();
        let eigs = eigenvalues(&a).unwrap();
        assert_eq!(eigs.len(), 1);
        assert_eq!(eigs[0].re, 7.0);
    }

    #[test]
    fn complex_display_and_helpers() {
        let c = Complex::new(3.0, -4.0);
        assert_eq!(c.abs(), 5.0);
        assert!(format!("{c}").contains("-4"));
        assert!(Complex::real(1.0).is_approx_real(1e-12));
        assert!(!c.is_approx_real(1e-12));
    }

    #[test]
    fn larger_matrix_with_known_clusters() {
        // Block-diagonal: eigenvalues are union of block spectra.
        let mut a = Matrix::zeros(5, 5);
        // Block 1: rotation scaled by 2 → 2(cos45 ± i sin45).
        let th = std::f64::consts::FRAC_PI_4;
        a[(0, 0)] = 2.0 * th.cos();
        a[(0, 1)] = -2.0 * th.sin();
        a[(1, 0)] = 2.0 * th.sin();
        a[(1, 1)] = 2.0 * th.cos();
        // Block 2: diag(-1, -3, 5).
        a[(2, 2)] = -1.0;
        a[(3, 3)] = -3.0;
        a[(4, 4)] = 5.0;
        let eigs = eigenvalues(&a).unwrap();
        let n_complex = eigs.iter().filter(|c| c.im.abs() > 1e-6).count();
        assert_eq!(n_complex, 2);
        assert!((spectral_abscissa(&a).unwrap() - 5.0).abs() < 1e-8);
        assert!((spectral_radius(&a).unwrap() - 5.0).abs() < 1e-8);
    }
}
