//! Numerical integration.
//!
//! Provides composite trapezoid and Simpson rules, adaptive Simpson,
//! fixed-order Gauss–Legendre quadrature, and integration of *sampled*
//! trajectories (used to evaluate the countermeasure cost functional
//! `∫ Σ (c1 ε1² S² + c2 ε2² I²) dt` along an ODE solution in
//! `rumor-control`).

use crate::{NumericsError, Result};

/// Composite trapezoid rule with `n` subintervals on `[a, b]`.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] if `n == 0` or `a > b`.
pub fn trapezoid(mut f: impl FnMut(f64) -> f64, a: f64, b: f64, n: usize) -> Result<f64> {
    check_interval(a, b, n)?;
    let h = (b - a) / n as f64;
    let mut sum = 0.5 * (f(a) + f(b));
    for i in 1..n {
        sum += f(a + i as f64 * h);
    }
    Ok(sum * h)
}

/// Composite Simpson rule with `n` subintervals (`n` is rounded up to the
/// next even number).
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] if `n == 0` or `a > b`.
pub fn simpson(mut f: impl FnMut(f64) -> f64, a: f64, b: f64, n: usize) -> Result<f64> {
    check_interval(a, b, n)?;
    let n = if n % 2 == 0 { n } else { n + 1 };
    let h = (b - a) / n as f64;
    let mut sum = f(a) + f(b);
    for i in 1..n {
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        sum += w * f(a + i as f64 * h);
    }
    Ok(sum * h / 3.0)
}

/// Adaptive Simpson integration to absolute tolerance `tol`.
///
/// # Errors
///
/// * [`NumericsError::InvalidArgument`] if `a > b` or `tol <= 0`.
/// * [`NumericsError::NoConvergence`] if the recursion depth limit is hit.
pub fn adaptive_simpson(f: &mut impl FnMut(f64) -> f64, a: f64, b: f64, tol: f64) -> Result<f64> {
    if a > b {
        return Err(NumericsError::InvalidArgument(format!(
            "interval start {a} exceeds end {b}"
        )));
    }
    if tol <= 0.0 {
        return Err(NumericsError::InvalidArgument(
            "tolerance must be positive".into(),
        ));
    }
    if a == b {
        return Ok(0.0);
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
    adaptive_step(f, a, b, fa, fb, fm, whole, tol, 50)
}

#[allow(clippy::too_many_arguments)]
fn adaptive_step(
    f: &mut impl FnMut(f64) -> f64,
    a: f64,
    b: f64,
    fa: f64,
    fb: f64,
    fm: f64,
    whole: f64,
    tol: f64,
    depth: usize,
) -> Result<f64> {
    if depth == 0 {
        return Err(NumericsError::NoConvergence {
            algorithm: "adaptive simpson",
            iterations: 50,
        });
    }
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
    let right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
    let delta = left + right - whole;
    if delta.abs() <= 15.0 * tol {
        Ok(left + right + delta / 15.0)
    } else {
        let l = adaptive_step(f, a, m, fa, fm, flm, left, tol / 2.0, depth - 1)?;
        let r = adaptive_step(f, m, b, fm, fb, frm, right, tol / 2.0, depth - 1)?;
        Ok(l + r)
    }
}

/// Gauss–Legendre quadrature with a fixed number of nodes (supported
/// orders: 2, 3, 4, 5).
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] for unsupported orders or if
/// `a > b`.
pub fn gauss_legendre(mut f: impl FnMut(f64) -> f64, a: f64, b: f64, order: usize) -> Result<f64> {
    if a > b {
        return Err(NumericsError::InvalidArgument(format!(
            "interval start {a} exceeds end {b}"
        )));
    }
    // Nodes/weights on [-1, 1].
    let (nodes, weights): (&[f64], &[f64]) = match order {
        2 => (
            &[-0.577_350_269_189_625_7, 0.577_350_269_189_625_7],
            &[1.0, 1.0],
        ),
        3 => (
            &[-0.774_596_669_241_483_4, 0.0, 0.774_596_669_241_483_4],
            &[5.0 / 9.0, 8.0 / 9.0, 5.0 / 9.0],
        ),
        4 => (
            &[
                -0.861_136_311_594_052_6,
                -0.339_981_043_584_856_26,
                0.339_981_043_584_856_26,
                0.861_136_311_594_052_6,
            ],
            &[
                0.347_854_845_137_453_85,
                0.652_145_154_862_546_2,
                0.652_145_154_862_546_2,
                0.347_854_845_137_453_85,
            ],
        ),
        5 => (
            &[
                -0.906_179_845_938_664,
                -0.538_469_310_105_683,
                0.0,
                0.538_469_310_105_683,
                0.906_179_845_938_664,
            ],
            &[
                0.236_926_885_056_189_08,
                0.478_628_670_499_366_47,
                0.568_888_888_888_888_9,
                0.478_628_670_499_366_47,
                0.236_926_885_056_189_08,
            ],
        ),
        other => {
            return Err(NumericsError::InvalidArgument(format!(
                "unsupported gauss-legendre order {other} (supported: 2-5)"
            )))
        }
    };
    let half = 0.5 * (b - a);
    let mid = 0.5 * (a + b);
    Ok(half
        * nodes
            .iter()
            .zip(weights)
            .map(|(&x, &w)| w * f(mid + half * x))
            .sum::<f64>())
}

/// Trapezoid integration of a *sampled* trajectory: `ts` are strictly
/// increasing sample times, `ys` the corresponding values.
///
/// # Errors
///
/// Returns [`NumericsError::ShapeMismatch`] if the slices differ in length
/// and [`NumericsError::InvalidArgument`] if fewer than two samples are
/// given or the times are not strictly increasing.
pub fn trapezoid_sampled(ts: &[f64], ys: &[f64]) -> Result<f64> {
    if ts.len() != ys.len() {
        return Err(NumericsError::ShapeMismatch {
            expected: format!("{} values", ts.len()),
            found: format!("{} values", ys.len()),
        });
    }
    if ts.len() < 2 {
        return Err(NumericsError::InvalidArgument(
            "at least two samples are required".into(),
        ));
    }
    let mut sum = 0.0;
    for i in 1..ts.len() {
        let dt = ts[i] - ts[i - 1];
        if dt <= 0.0 {
            return Err(NumericsError::InvalidArgument(format!(
                "sample times must be strictly increasing (violated at index {i})"
            )));
        }
        sum += 0.5 * dt * (ys[i] + ys[i - 1]);
    }
    Ok(sum)
}

fn check_interval(a: f64, b: f64, n: usize) -> Result<()> {
    if n == 0 {
        return Err(NumericsError::InvalidArgument(
            "number of subintervals must be positive".into(),
        ));
    }
    if a > b {
        return Err(NumericsError::InvalidArgument(format!(
            "interval start {a} exceeds end {b}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trapezoid_linear_is_exact() {
        let v = trapezoid(|x| 3.0 * x + 1.0, 0.0, 2.0, 1).unwrap();
        assert!((v - 8.0).abs() < 1e-14);
    }

    #[test]
    fn simpson_cubic_is_exact() {
        // Simpson is exact for cubics.
        let v = simpson(|x| x.powi(3) - x, 0.0, 2.0, 2).unwrap();
        assert!((v - 2.0).abs() < 1e-13);
    }

    #[test]
    fn simpson_rounds_odd_n_up() {
        let v = simpson(|x| x * x, 0.0, 1.0, 3).unwrap();
        assert!((v - 1.0 / 3.0).abs() < 1e-13);
    }

    #[test]
    fn adaptive_simpson_oscillatory() {
        let mut f = |x: f64| (10.0 * x).sin();
        let v = adaptive_simpson(&mut f, 0.0, 1.0, 1e-10).unwrap();
        let exact = (1.0 - (10.0_f64).cos()) / 10.0;
        assert!((v - exact).abs() < 1e-8);
    }

    #[test]
    fn adaptive_simpson_zero_width() {
        let mut f = |x: f64| x;
        assert_eq!(adaptive_simpson(&mut f, 1.0, 1.0, 1e-10).unwrap(), 0.0);
    }

    #[test]
    fn adaptive_simpson_rejects_bad_args() {
        let mut f = |x: f64| x;
        assert!(adaptive_simpson(&mut f, 1.0, 0.0, 1e-10).is_err());
        assert!(adaptive_simpson(&mut f, 0.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn gauss_legendre_polynomial_exactness() {
        // Order-n GL is exact for degree 2n-1.
        let v = gauss_legendre(|x| x.powi(5) + x.powi(2), -1.0, 1.0, 3).unwrap();
        assert!((v - 2.0 / 3.0).abs() < 1e-13);
        let v4 = gauss_legendre(|x| x.powi(7), 0.0, 1.0, 4).unwrap();
        assert!((v4 - 0.125).abs() < 1e-13);
    }

    #[test]
    fn gauss_legendre_all_orders_on_exp() {
        let exact = 1.0_f64.exp() - 1.0;
        for order in 2..=5 {
            let v = gauss_legendre(f64::exp, 0.0, 1.0, order).unwrap();
            assert!((v - exact).abs() < 1e-3, "order {order}: {v} vs {exact}");
        }
        // Higher order must be at least as accurate on a smooth function.
        let e2 = (gauss_legendre(f64::exp, 0.0, 1.0, 2).unwrap() - exact).abs();
        let e5 = (gauss_legendre(f64::exp, 0.0, 1.0, 5).unwrap() - exact).abs();
        assert!(e5 < e2);
    }

    #[test]
    fn gauss_legendre_unsupported_order() {
        assert!(gauss_legendre(|x| x, 0.0, 1.0, 7).is_err());
    }

    #[test]
    fn trapezoid_sampled_matches_uniform() {
        let ts: Vec<f64> = (0..=100).map(|i| i as f64 * 0.01).collect();
        let ys: Vec<f64> = ts.iter().map(|&t| t * t).collect();
        let v = trapezoid_sampled(&ts, &ys).unwrap();
        assert!((v - 1.0 / 3.0).abs() < 1e-4);
    }

    #[test]
    fn trapezoid_sampled_nonuniform_grid() {
        let ts = [0.0, 0.1, 0.5, 1.0];
        let ys: Vec<f64> = ts.iter().map(|&t| 2.0 * t).collect(); // exact for linear
        let v = trapezoid_sampled(&ts, &ys).unwrap();
        assert!((v - 1.0).abs() < 1e-14);
    }

    #[test]
    fn trapezoid_sampled_validation() {
        assert!(trapezoid_sampled(&[0.0], &[1.0]).is_err());
        assert!(trapezoid_sampled(&[0.0, 1.0], &[1.0]).is_err());
        assert!(trapezoid_sampled(&[0.0, 0.0], &[1.0, 1.0]).is_err());
        assert!(trapezoid_sampled(&[1.0, 0.0], &[1.0, 1.0]).is_err());
    }

    #[test]
    fn interval_validation() {
        assert!(trapezoid(|x| x, 0.0, 1.0, 0).is_err());
        assert!(simpson(|x| x, 1.0, 0.0, 4).is_err());
        assert!(gauss_legendre(|x| x, 1.0, 0.0, 3).is_err());
    }

    #[test]
    fn convergence_order_of_trapezoid() {
        // Halving h should quarter the error (second-order method).
        let exact = 2.0; // ∫0^π sin = 2
        let e1 = (trapezoid(f64::sin, 0.0, std::f64::consts::PI, 50).unwrap() - exact).abs();
        let e2 = (trapezoid(f64::sin, 0.0, std::f64::consts::PI, 100).unwrap() - exact).abs();
        let ratio = e1 / e2;
        assert!(ratio > 3.5 && ratio < 4.5, "ratio {ratio}");
    }
}
