//! Interpolation of sampled data on one-dimensional grids.
//!
//! The optimal-control solver in `rumor-control` stores the control
//! signals `ε1(t)`, `ε2(t)` on a time grid and needs to evaluate them at
//! arbitrary times requested by the adaptive ODE integrator. That path
//! uses [`LinearInterp`]; [`PchipInterp`] (monotone cubic Hermite) is
//! provided for smoother reconstructions and for plotting-quality output.

use crate::{NumericsError, Result};

/// Validates a strictly increasing grid paired with values.
fn validate_grid(xs: &[f64], ys: &[f64]) -> Result<()> {
    if xs.len() != ys.len() {
        return Err(NumericsError::ShapeMismatch {
            expected: format!("{} values", xs.len()),
            found: format!("{} values", ys.len()),
        });
    }
    if xs.len() < 2 {
        return Err(NumericsError::InvalidArgument(
            "at least two grid points are required".into(),
        ));
    }
    for i in 1..xs.len() {
        if xs[i] <= xs[i - 1] {
            return Err(NumericsError::InvalidArgument(format!(
                "grid must be strictly increasing (violated at index {i})"
            )));
        }
    }
    Ok(())
}

/// Binary search: index `i` such that `xs[i] <= x < xs[i+1]`, clamped to
/// the valid segment range.
fn segment_index(xs: &[f64], x: f64) -> usize {
    if x <= xs[0] {
        return 0;
    }
    let n = xs.len();
    if x >= xs[n - 2] {
        return n - 2;
    }
    // partition_point returns the first index where xs[i] > x.
    xs.partition_point(|&v| v <= x).saturating_sub(1)
}

/// Piecewise-linear interpolation on a strictly increasing grid.
///
/// Evaluation outside the grid clamps to the boundary values (constant
/// extrapolation), which is the conservative choice for control signals.
///
/// # Example
///
/// ```
/// use rumor_numerics::interp::LinearInterp;
///
/// # fn main() -> Result<(), rumor_numerics::NumericsError> {
/// let li = LinearInterp::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 0.0])?;
/// assert_eq!(li.eval(0.5), 5.0);
/// assert_eq!(li.eval(-1.0), 0.0); // clamped
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearInterp {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl LinearInterp {
    /// Creates an interpolant over `(xs, ys)`.
    ///
    /// # Errors
    ///
    /// See [`NumericsError::ShapeMismatch`] /
    /// [`NumericsError::InvalidArgument`]: the grids must be equal-length,
    /// strictly increasing, and contain at least two points.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self> {
        validate_grid(&xs, &ys)?;
        Ok(LinearInterp { xs, ys })
    }

    /// Evaluates the interpolant at `x` (clamped outside the grid).
    pub fn eval(&self, x: f64) -> f64 {
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= *self.xs.last().expect("non-empty grid") {
            return *self.ys.last().expect("non-empty grid");
        }
        let i = segment_index(&self.xs, x);
        let t = (x - self.xs[i]) / (self.xs[i + 1] - self.xs[i]);
        self.ys[i] + t * (self.ys[i + 1] - self.ys[i])
    }

    /// The grid abscissae.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The grid values.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Replaces the grid values, keeping the abscissae.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::ShapeMismatch`] if the length differs from
    /// the existing grid.
    pub fn set_ys(&mut self, ys: Vec<f64>) -> Result<()> {
        if ys.len() != self.xs.len() {
            return Err(NumericsError::ShapeMismatch {
                expected: format!("{} values", self.xs.len()),
                found: format!("{} values", ys.len()),
            });
        }
        self.ys = ys;
        Ok(())
    }
}

/// Monotone piecewise-cubic Hermite interpolation (PCHIP, Fritsch–Carlson).
///
/// Preserves monotonicity of the data — no overshoot between samples —
/// which matters when interpolating state densities that must stay within
/// `[0, 1]`-ish ranges.
#[derive(Debug, Clone, PartialEq)]
pub struct PchipInterp {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Endpoint-adjusted derivative at each grid node.
    ds: Vec<f64>,
}

impl PchipInterp {
    /// Creates a monotone cubic interpolant over `(xs, ys)`.
    ///
    /// # Errors
    ///
    /// Same validation as [`LinearInterp::new`].
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self> {
        validate_grid(&xs, &ys)?;
        let n = xs.len();
        let mut slopes = vec![0.0; n - 1];
        for i in 0..n - 1 {
            slopes[i] = (ys[i + 1] - ys[i]) / (xs[i + 1] - xs[i]);
        }
        let mut ds = vec![0.0; n];
        // Interior derivatives: weighted harmonic mean when slopes agree in
        // sign, zero otherwise (Fritsch–Carlson).
        for i in 1..n - 1 {
            let (s0, s1) = (slopes[i - 1], slopes[i]);
            if s0 * s1 <= 0.0 {
                ds[i] = 0.0;
            } else {
                let h0 = xs[i] - xs[i - 1];
                let h1 = xs[i + 1] - xs[i];
                let w1 = 2.0 * h1 + h0;
                let w2 = h1 + 2.0 * h0;
                ds[i] = (w1 + w2) / (w1 / s0 + w2 / s1);
            }
        }
        // One-sided endpoint formulas with monotonicity clamping.
        ds[0] = endpoint_derivative(
            xs[1] - xs[0],
            if n > 2 { xs[2] - xs[1] } else { xs[1] - xs[0] },
            slopes[0],
            if n > 2 { slopes[1] } else { slopes[0] },
        );
        ds[n - 1] = endpoint_derivative(
            xs[n - 1] - xs[n - 2],
            if n > 2 {
                xs[n - 2] - xs[n - 3]
            } else {
                xs[n - 1] - xs[n - 2]
            },
            slopes[n - 2],
            if n > 2 { slopes[n - 3] } else { slopes[n - 2] },
        );
        Ok(PchipInterp { xs, ys, ds })
    }

    /// Evaluates the interpolant at `x` (clamped outside the grid).
    pub fn eval(&self, x: f64) -> f64 {
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= *self.xs.last().expect("non-empty grid") {
            return *self.ys.last().expect("non-empty grid");
        }
        let i = segment_index(&self.xs, x);
        let h = self.xs[i + 1] - self.xs[i];
        let t = (x - self.xs[i]) / h;
        let (t2, t3) = (t * t, t * t * t);
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        h00 * self.ys[i] + h10 * h * self.ds[i] + h01 * self.ys[i + 1] + h11 * h * self.ds[i + 1]
    }

    /// The grid abscissae.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }
}

/// One-sided three-point endpoint derivative with the standard PCHIP
/// monotonicity clamps.
fn endpoint_derivative(h0: f64, h1: f64, s0: f64, s1: f64) -> f64 {
    let d = ((2.0 * h0 + h1) * s0 - h0 * s1) / (h0 + h1);
    if d * s0 <= 0.0 {
        0.0
    } else if s0 * s1 < 0.0 && d.abs() > 3.0 * s0.abs() {
        3.0 * s0
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_interp_exact_on_nodes() {
        let li = LinearInterp::new(vec![0.0, 1.0, 3.0], vec![1.0, 2.0, -1.0]).unwrap();
        assert_eq!(li.eval(0.0), 1.0);
        assert_eq!(li.eval(1.0), 2.0);
        assert_eq!(li.eval(3.0), -1.0);
    }

    #[test]
    fn linear_interp_midpoints() {
        let li = LinearInterp::new(vec![0.0, 2.0], vec![0.0, 4.0]).unwrap();
        assert_eq!(li.eval(1.0), 2.0);
        assert_eq!(li.eval(0.5), 1.0);
    }

    #[test]
    fn linear_interp_clamps_outside() {
        let li = LinearInterp::new(vec![0.0, 1.0], vec![5.0, 7.0]).unwrap();
        assert_eq!(li.eval(-10.0), 5.0);
        assert_eq!(li.eval(10.0), 7.0);
    }

    #[test]
    fn linear_interp_validation() {
        assert!(LinearInterp::new(vec![0.0], vec![1.0]).is_err());
        assert!(LinearInterp::new(vec![0.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(LinearInterp::new(vec![1.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(LinearInterp::new(vec![0.0, 1.0], vec![1.0]).is_err());
    }

    #[test]
    fn set_ys_replaces_values() {
        let mut li = LinearInterp::new(vec![0.0, 1.0], vec![0.0, 1.0]).unwrap();
        li.set_ys(vec![2.0, 4.0]).unwrap();
        assert_eq!(li.eval(0.5), 3.0);
        assert!(li.set_ys(vec![1.0]).is_err());
    }

    #[test]
    fn pchip_exact_on_nodes() {
        let xs = vec![0.0, 1.0, 2.0, 3.0];
        let ys = vec![0.0, 1.0, 4.0, 9.0];
        let p = PchipInterp::new(xs.clone(), ys.clone()).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert!((p.eval(*x) - y).abs() < 1e-14);
        }
    }

    #[test]
    fn pchip_no_overshoot_on_step_data() {
        // Data with a plateau: cubic splines overshoot, PCHIP must not.
        let xs = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = vec![0.0, 0.0, 1.0, 1.0, 1.0];
        let p = PchipInterp::new(xs, ys).unwrap();
        for i in 0..=400 {
            let x = i as f64 * 0.01;
            let y = p.eval(x);
            assert!((-1e-12..=1.0 + 1e-12).contains(&y), "overshoot at {x}: {y}");
        }
    }

    #[test]
    fn pchip_monotone_data_stays_monotone() {
        let xs = vec![0.0, 0.5, 1.5, 2.0, 5.0];
        let ys = vec![0.0, 0.1, 2.0, 2.5, 3.0];
        let p = PchipInterp::new(xs, ys).unwrap();
        let mut prev = p.eval(0.0);
        for i in 1..=500 {
            let x = i as f64 * 0.01;
            let y = p.eval(x);
            assert!(y + 1e-12 >= prev, "non-monotone at {x}");
            prev = y;
        }
    }

    #[test]
    fn pchip_clamps_outside() {
        let p = PchipInterp::new(vec![0.0, 1.0, 2.0], vec![1.0, 3.0, 2.0]).unwrap();
        assert_eq!(p.eval(-5.0), 1.0);
        assert_eq!(p.eval(5.0), 2.0);
    }

    #[test]
    fn pchip_two_points_is_linearish() {
        let p = PchipInterp::new(vec![0.0, 1.0], vec![0.0, 2.0]).unwrap();
        assert!((p.eval(0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pchip_more_accurate_than_linear_on_smooth_data() {
        let xs: Vec<f64> = (0..=10).map(|i| i as f64 * 0.3).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| x.sin()).collect();
        let p = PchipInterp::new(xs.clone(), ys.clone()).unwrap();
        let l = LinearInterp::new(xs, ys).unwrap();
        let mut pe = 0.0;
        let mut le = 0.0;
        for i in 0..=300 {
            let x = i as f64 * 0.01;
            pe = f64::max(pe, (p.eval(x) - x.sin()).abs());
            le = f64::max(le, (l.eval(x) - x.sin()).abs());
        }
        assert!(pe < le, "pchip err {pe} should beat linear err {le}");
    }

    #[test]
    fn segment_index_boundaries() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(segment_index(&xs, -1.0), 0);
        assert_eq!(segment_index(&xs, 0.5), 0);
        assert_eq!(segment_index(&xs, 1.0), 1);
        assert_eq!(segment_index(&xs, 2.5), 2);
        assert_eq!(segment_index(&xs, 99.0), 2);
    }
}
