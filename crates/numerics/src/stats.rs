//! Summary statistics and simple regressions.
//!
//! Used by `rumor-net` for power-law degree-distribution fitting (log–log
//! least squares and discrete MLE support functions) and by `rumor-sim`
//! for aggregating Monte Carlo ensembles.

use crate::{NumericsError, Result};

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] on an empty slice.
pub fn mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(NumericsError::InvalidArgument("mean of empty slice".into()));
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Unbiased sample variance (denominator `n − 1`).
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] if fewer than two samples
/// are given.
pub fn variance(xs: &[f64]) -> Result<f64> {
    if xs.len() < 2 {
        return Err(NumericsError::InvalidArgument(
            "variance requires at least two samples".into(),
        ));
    }
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Sample standard deviation.
///
/// # Errors
///
/// See [`variance`].
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    Ok(variance(xs)?.sqrt())
}

/// Result of an ordinary least-squares line fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination `R²` (1 for a perfect fit).
    pub r_squared: f64,
}

/// Ordinary least-squares straight-line fit.
///
/// # Errors
///
/// Returns [`NumericsError::ShapeMismatch`] on length mismatch and
/// [`NumericsError::InvalidArgument`] if fewer than two points are given
/// or all `x` values coincide.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Result<LineFit> {
    if xs.len() != ys.len() {
        return Err(NumericsError::ShapeMismatch {
            expected: format!("{} values", xs.len()),
            found: format!("{} values", ys.len()),
        });
    }
    if xs.len() < 2 {
        return Err(NumericsError::InvalidArgument(
            "line fit requires at least two points".into(),
        ));
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    if sxx == 0.0 {
        return Err(NumericsError::InvalidArgument(
            "all x values coincide; slope undefined".into(),
        ));
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let e = y - (slope * x + intercept);
            e * e
        })
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Ok(LineFit {
        slope,
        intercept,
        r_squared,
    })
}

/// Weighted mean with non-negative weights.
///
/// # Errors
///
/// Returns [`NumericsError::ShapeMismatch`] on length mismatch and
/// [`NumericsError::InvalidArgument`] if the weights do not sum to a
/// positive value or any weight is negative.
pub fn weighted_mean(xs: &[f64], ws: &[f64]) -> Result<f64> {
    if xs.len() != ws.len() {
        return Err(NumericsError::ShapeMismatch {
            expected: format!("{} weights", xs.len()),
            found: format!("{} weights", ws.len()),
        });
    }
    if ws.iter().any(|&w| w < 0.0) {
        return Err(NumericsError::InvalidArgument(
            "weights must be non-negative".into(),
        ));
    }
    let wsum: f64 = ws.iter().sum();
    if wsum <= 0.0 {
        return Err(NumericsError::InvalidArgument(
            "weights must sum to a positive value".into(),
        ));
    }
    Ok(xs.iter().zip(ws).map(|(x, w)| x * w).sum::<f64>() / wsum)
}

/// Pearson correlation coefficient.
///
/// # Errors
///
/// Returns an error if either series is degenerate (constant) or the
/// lengths differ; see [`linear_fit`] for the validation rules.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(NumericsError::ShapeMismatch {
            expected: format!("{} values", xs.len()),
            found: format!("{} values", ys.len()),
        });
    }
    if xs.len() < 2 {
        return Err(NumericsError::InvalidArgument(
            "correlation requires at least two points".into(),
        ));
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    if sxx == 0.0 || syy == 0.0 {
        return Err(NumericsError::InvalidArgument(
            "correlation undefined for a constant series".into(),
        ));
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    Ok(sxy / (sxx * syy).sqrt())
}

/// Running mean/variance accumulator (Welford's algorithm) for streaming
/// Monte Carlo aggregation without storing samples.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations so far (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Unbiased sample variance (`None` with fewer than two samples).
    pub fn variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Sample standard deviation (`None` with fewer than two samples).
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        *self = RunningStats { n, mean, m2 };
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut rs = RunningStats::new();
        rs.extend(iter);
        rs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs).unwrap(), 5.0);
        assert!((variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs).unwrap() - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_short_inputs_rejected() {
        assert!(mean(&[]).is_err());
        assert!(variance(&[1.0]).is_err());
        assert!(linear_fit(&[1.0], &[1.0]).is_err());
        assert!(pearson(&[1.0], &[1.0]).is_err());
    }

    #[test]
    fn linear_fit_exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|&x| -1.5 * x + 4.0).collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope + 1.5).abs() < 1e-12);
        assert!((fit.intercept - 4.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_rejects_vertical() {
        assert!(linear_fit(&[1.0, 1.0], &[0.0, 1.0]).is_err());
    }

    #[test]
    fn linear_fit_r_squared_reflects_noise() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 2.0 * x + if i % 2 == 0 { 3.0 } else { -3.0 })
            .collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!(fit.r_squared < 1.0);
        assert!(fit.r_squared > 0.9); // signal still dominates
        assert!((fit.slope - 2.0).abs() < 0.1);
    }

    #[test]
    fn weighted_mean_basics() {
        assert_eq!(weighted_mean(&[1.0, 3.0], &[1.0, 1.0]).unwrap(), 2.0);
        assert_eq!(weighted_mean(&[1.0, 3.0], &[3.0, 1.0]).unwrap(), 1.5);
        assert!(weighted_mean(&[1.0], &[0.0]).is_err());
        assert!(weighted_mean(&[1.0], &[-1.0]).is_err());
        assert!(weighted_mean(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let xs = [1.0, 2.0, 3.0];
        assert!((pearson(&xs, &[2.0, 4.0, 6.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &[3.0, 2.0, 1.0]).unwrap() + 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &[1.0, 1.0, 1.0]).is_err());
    }

    #[test]
    fn running_stats_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let rs: RunningStats = xs.iter().copied().collect();
        assert_eq!(rs.count(), 8);
        assert!((rs.mean().unwrap() - mean(&xs).unwrap()).abs() < 1e-12);
        assert!((rs.variance().unwrap() - variance(&xs).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn running_stats_empty_behaviour() {
        let rs = RunningStats::new();
        assert_eq!(rs.count(), 0);
        assert!(rs.mean().is_none());
        assert!(rs.variance().is_none());
        let mut one = RunningStats::new();
        one.push(5.0);
        assert_eq!(one.mean(), Some(5.0));
        assert!(one.variance().is_none());
    }

    #[test]
    fn running_stats_merge_matches_concatenation() {
        let a: Vec<f64> = (0..10).map(|i| i as f64 * 0.7).collect();
        let b: Vec<f64> = (0..15).map(|i| 3.0 - i as f64 * 0.2).collect();
        let mut ra: RunningStats = a.iter().copied().collect();
        let rb: RunningStats = b.iter().copied().collect();
        ra.merge(&rb);
        let all: Vec<f64> = a.iter().chain(&b).copied().collect();
        assert_eq!(ra.count() as usize, all.len());
        assert!((ra.mean().unwrap() - mean(&all).unwrap()).abs() < 1e-12);
        assert!((ra.variance().unwrap() - variance(&all).unwrap()).abs() < 1e-12);
        // Merging an empty accumulator is a no-op in either direction.
        let mut empty = RunningStats::new();
        empty.merge(&ra);
        assert_eq!(empty.count(), ra.count());
        let snapshot = ra;
        ra.merge(&RunningStats::new());
        assert_eq!(ra, snapshot);
    }
}
