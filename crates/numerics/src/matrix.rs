//! A small dense, row-major matrix type.
//!
//! [`Matrix`] is deliberately simple: `f64` elements stored contiguously in
//! row-major order. It supports the arithmetic and norms needed by the LU/QR
//! decompositions, the eigenvalue solver, and the Jacobian stability analysis
//! in `rumor-core`. It is not meant to compete with full linear-algebra
//! crates — it exists so the workspace has zero external numeric
//! dependencies.

use crate::{NumericsError, Result};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// Dense row-major matrix of `f64`.
///
/// # Example
///
/// ```
/// use rumor_numerics::matrix::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c, a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows.checked_mul(cols).expect("matrix size overflow")],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::ShapeMismatch`] if the rows do not all have
    /// the same length, or [`NumericsError::InvalidArgument`] if `rows` is
    /// empty or the first row is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(NumericsError::InvalidArgument(
                "matrix must have at least one row and one column".into(),
            ));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(NumericsError::ShapeMismatch {
                    expected: format!("row of length {cols}"),
                    found: format!("row {i} of length {}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(NumericsError::ShapeMismatch {
                expected: format!("{} elements", rows * cols),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns column `j` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the main diagonal as an owned vector.
    pub fn diag(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self[(i, i)])
            .collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix multiplication `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(NumericsError::ShapeMismatch {
                expected: format!("rhs with {} rows", self.cols),
                found: format!("rhs with {} rows", rhs.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += aik * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::ShapeMismatch`] if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(NumericsError::ShapeMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("vector of length {}", v.len()),
            });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Scales every element by `s`, in place.
    pub fn scale_mut(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Returns a copy scaled by `s`.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }

    /// Frobenius norm (square root of the sum of squared entries).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn inf_norm(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|x| x.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// One norm (maximum absolute column sum).
    pub fn one_norm(&self) -> f64 {
        (0..self.cols)
            .map(|j| (0..self.rows).map(|i| self[(i, j)].abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        self.diag().iter().sum()
    }

    /// Returns `true` if every element differs from the corresponding
    /// element of `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Extracts the sub-matrix with rows `r0..r1` and columns `c0..c1`.
    ///
    /// # Panics
    ///
    /// Panics if the ranges are out of bounds or empty.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 < r1 && r1 <= self.rows && c0 < c1 && c1 <= self.cols);
        Matrix::from_fn(r1 - r0, c1 - c0, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Swaps rows `a` and `b` in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows);
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch in add"
        );
        let mut out = self.clone();
        out += rhs;
        out
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch in sub"
        );
        let mut out = self.clone();
        out -= rhs;
        out
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch in add"
        );
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch in sub"
        );
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scaled(s)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scaled(-1.0)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>12.6}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

/// Vector helpers shared by the ODE and control crates.
pub mod vecops {
    /// Euclidean (L2) norm of a vector.
    pub fn norm2(v: &[f64]) -> f64 {
        v.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Infinity norm (maximum absolute value) of a vector.
    pub fn norm_inf(v: &[f64]) -> f64 {
        v.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Dot product of two equal-length vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "dot product length mismatch");
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// Computes `y += alpha * x` in place.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), y.len(), "axpy length mismatch");
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    /// Infinity-norm distance between two equal-length vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn dist_inf(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "dist length mismatch");
        a.iter().zip(b).fold(0.0, |m, (x, y)| m.max((x - y).abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::vecops::*;
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i.trace(), 3.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, NumericsError::ShapeMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.matmul(&Matrix::identity(2)).unwrap(), a);
        assert_eq!(Matrix::identity(2).matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expect = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert!(c.approx_eq(&expect, 1e-14));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let v = a.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(v, vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn norms_match_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[-3.0, 4.0]]).unwrap();
        assert!((a.frobenius_norm() - (30.0_f64).sqrt()).abs() < 1e-14);
        assert_eq!(a.inf_norm(), 7.0);
        assert_eq!(a.one_norm(), 6.0);
    }

    #[test]
    fn submatrix_extraction() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = a.submatrix(1, 3, 2, 4);
        assert_eq!(s.rows(), 2);
        assert_eq!(s[(0, 0)], 6.0);
        assert_eq!(s[(1, 1)], 11.0);
    }

    #[test]
    fn swap_rows_works() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        a.swap_rows(0, 1);
        assert_eq!(a.row(0), &[3.0, 4.0]);
        a.swap_rows(1, 1);
        assert_eq!(a.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::identity(2);
        let sum = &a + &b;
        assert_eq!(sum[(0, 0)], 2.0);
        let diff = &sum - &b;
        assert!(diff.approx_eq(&a, 1e-15));
        let neg = -&a;
        assert_eq!(neg[(1, 1)], -4.0);
        let scaled = &a * 2.0;
        assert_eq!(scaled[(1, 0)], 6.0);
    }

    #[test]
    fn diag_and_from_diag() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.diag(), vec![1.0, 2.0, 3.0]);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::identity(2);
        assert!(!format!("{a}").is_empty());
    }

    #[test]
    fn vecops_basics() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[-3.0, 2.0]), 3.0);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
        assert_eq!(dist_inf(&[0.0, 1.0], &[1.0, 1.0]), 1.0);
    }
}
