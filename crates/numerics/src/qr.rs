//! Householder QR decomposition and least-squares solves.
//!
//! The decomposition `A = Q·R` (with `Q` orthogonal and `R` upper
//! triangular) is used directly for least-squares fits (power-law
//! regression in `rumor-net`) and as the workhorse inside the QR
//! eigenvalue iteration in [`crate::eigen`].

use crate::matrix::Matrix;
use crate::{NumericsError, Result};

/// Householder QR decomposition of an `m × n` matrix with `m >= n`.
///
/// # Example
///
/// ```
/// use rumor_numerics::{matrix::Matrix, qr::Qr};
///
/// # fn main() -> Result<(), rumor_numerics::NumericsError> {
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]])?;
/// let qr = Qr::decompose(&a)?;
/// let x = qr.solve_least_squares(&[1.0, 1.0, 2.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    q: Matrix,
    r: Matrix,
}

impl Qr {
    /// Computes the (thin-compatible, here full) QR decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] if `a.rows() < a.cols()`.
    pub fn decompose(a: &Matrix) -> Result<Self> {
        let m = a.rows();
        let n = a.cols();
        if m < n {
            return Err(NumericsError::InvalidArgument(
                "qr decomposition requires rows >= cols".into(),
            ));
        }
        let mut r = a.clone();
        let mut q = Matrix::identity(m);

        for k in 0..n.min(m.saturating_sub(1)) {
            // Householder vector for column k below the diagonal.
            let mut norm = 0.0;
            for i in k..m {
                norm += r[(i, k)] * r[(i, k)];
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                continue;
            }
            let alpha = if r[(k, k)] > 0.0 { -norm } else { norm };
            let mut v: Vec<f64> = (k..m).map(|i| r[(i, k)]).collect();
            v[0] -= alpha;
            let vnorm2: f64 = v.iter().map(|x| x * x).sum();
            if vnorm2 == 0.0 {
                continue;
            }

            // Apply H = I - 2 v v^T / (v^T v) to R (rows k..m).
            for j in k..n {
                let mut dot = 0.0;
                for i in k..m {
                    dot += v[i - k] * r[(i, j)];
                }
                let factor = 2.0 * dot / vnorm2;
                for i in k..m {
                    r[(i, j)] -= factor * v[i - k];
                }
            }
            // Accumulate Q = Q · H (columns k..m of Q are affected).
            for i in 0..m {
                let mut dot = 0.0;
                for j in k..m {
                    dot += q[(i, j)] * v[j - k];
                }
                let factor = 2.0 * dot / vnorm2;
                for j in k..m {
                    q[(i, j)] -= factor * v[j - k];
                }
            }
        }
        // Zero out numerical noise below the diagonal of R.
        for i in 0..m {
            for j in 0..n.min(i) {
                r[(i, j)] = 0.0;
            }
        }
        Ok(Qr { q, r })
    }

    /// The orthogonal factor `Q` (`m × m`).
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// The upper-triangular factor `R` (`m × n`).
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Solves the least-squares problem `min ‖A·x − b‖₂`.
    ///
    /// # Errors
    ///
    /// * [`NumericsError::ShapeMismatch`] if `b.len() != A.rows()`.
    /// * [`NumericsError::SingularMatrix`] if `R` has a zero diagonal
    ///   entry (rank-deficient `A`).
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let m = self.q.rows();
        let n = self.r.cols();
        if b.len() != m {
            return Err(NumericsError::ShapeMismatch {
                expected: format!("rhs of length {m}"),
                found: format!("rhs of length {}", b.len()),
            });
        }
        // y = Q^T b (only the first n components are needed).
        let mut y = vec![0.0; n];
        for j in 0..n {
            let mut s = 0.0;
            for i in 0..m {
                s += self.q[(i, j)] * b[i];
            }
            y[j] = s;
        }
        // Back substitution with the top n×n block of R.
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.r[(i, j)] * y[j];
            }
            let rii = self.r[(i, i)];
            if rii == 0.0 {
                return Err(NumericsError::SingularMatrix);
            }
            y[i] = s / rii;
        }
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::vecops::dist_inf;

    #[test]
    fn qr_reconstructs_matrix() {
        let a = Matrix::from_rows(&[
            &[12.0, -51.0, 4.0],
            &[6.0, 167.0, -68.0],
            &[-4.0, 24.0, -41.0],
        ])
        .unwrap();
        let qr = Qr::decompose(&a).unwrap();
        let recon = qr.q().matmul(qr.r()).unwrap();
        assert!(recon.approx_eq(&a, 1e-10));
    }

    #[test]
    fn q_is_orthogonal() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0], &[0.0, 1.0]]).unwrap();
        let qr = Qr::decompose(&a).unwrap();
        let qtq = qr.q().transpose().matmul(qr.q()).unwrap();
        assert!(qtq.approx_eq(&Matrix::identity(3), 1e-12));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let qr = Qr::decompose(&a).unwrap();
        for i in 0..qr.r().rows() {
            for j in 0..qr.r().cols().min(i) {
                assert_eq!(qr.r()[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn square_solve_matches_lu() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let qr = Qr::decompose(&a).unwrap();
        let x = qr.solve_least_squares(&[3.0, 5.0]).unwrap();
        assert!(dist_inf(&x, &[0.8, 1.4]) < 1e-12);
    }

    #[test]
    fn least_squares_line_fit() {
        // Fit y = 2x + 1 through noisy-free points: exact recovery.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x, 1.0]).collect();
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&row_refs).unwrap();
        let b: Vec<f64> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        let coef = Qr::decompose(&a).unwrap().solve_least_squares(&b).unwrap();
        assert!(dist_inf(&coef, &[2.0, 1.0]) < 1e-12);
    }

    #[test]
    fn overdetermined_inconsistent_system() {
        // Points not on a line: least squares minimizes the residual.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let b = [6.0, 0.0, 0.0];
        let x = Qr::decompose(&a).unwrap().solve_least_squares(&b).unwrap();
        // Normal equations solution: x = (8, -3).
        assert!(dist_inf(&x, &[8.0, -3.0]) < 1e-10);
    }

    #[test]
    fn wide_matrix_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(Qr::decompose(&a).is_err());
    }

    #[test]
    fn rank_deficient_detected_on_solve() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let qr = Qr::decompose(&a).unwrap();
        assert!(matches!(
            qr.solve_least_squares(&[1.0, 1.0, 1.0]),
            Err(NumericsError::SingularMatrix)
        ));
    }

    #[test]
    fn rhs_length_checked() {
        let a = Matrix::identity(3);
        let qr = Qr::decompose(&a).unwrap();
        assert!(qr.solve_least_squares(&[1.0]).is_err());
    }
}
