//! Scalar root finding: bisection, Newton's method and Brent's method.
//!
//! The positive-equilibrium computation in `rumor-core` solves the scalar
//! fixed-point equation `F(Θ*) = 0` (Eq. (5) of the paper) with these
//! routines, and the heuristic-controller gain search in `rumor-control`
//! uses bisection on a monotone response curve.

use crate::{NumericsError, Result};

/// Configuration shared by the root finders.
#[derive(Debug, Clone, PartialEq)]
pub struct RootConfig {
    /// Absolute tolerance on the root location.
    pub x_tol: f64,
    /// Absolute tolerance on the residual `|f(x)|`.
    pub f_tol: f64,
    /// Maximum number of iterations before giving up.
    pub max_iter: usize,
}

impl Default for RootConfig {
    fn default() -> Self {
        RootConfig {
            x_tol: 1e-12,
            f_tol: 1e-12,
            max_iter: 200,
        }
    }
}

/// Result of a successful root search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Root {
    /// Location of the root.
    pub x: f64,
    /// Residual `f(x)` at the returned location.
    pub f: f64,
    /// Number of iterations used.
    pub iterations: usize,
}

/// Bisection on a sign-changing interval `[a, b]`.
///
/// # Errors
///
/// * [`NumericsError::InvalidBracket`] if `f(a)` and `f(b)` have the same
///   (non-zero) sign.
/// * [`NumericsError::NoConvergence`] if the iteration budget is exhausted.
pub fn bisect(mut f: impl FnMut(f64) -> f64, a: f64, b: f64, cfg: &RootConfig) -> Result<Root> {
    let (mut lo, mut hi) = if a <= b { (a, b) } else { (b, a) };
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Ok(Root {
            x: lo,
            f: 0.0,
            iterations: 0,
        });
    }
    if fhi == 0.0 {
        return Ok(Root {
            x: hi,
            f: 0.0,
            iterations: 0,
        });
    }
    if flo.signum() == fhi.signum() {
        return Err(NumericsError::InvalidBracket { a: lo, b: hi });
    }
    for it in 1..=cfg.max_iter {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if fmid.abs() <= cfg.f_tol || (hi - lo) * 0.5 <= cfg.x_tol {
            return Ok(Root {
                x: mid,
                f: fmid,
                iterations: it,
            });
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Err(NumericsError::NoConvergence {
        algorithm: "bisection",
        iterations: cfg.max_iter,
    })
}

/// Newton's method starting from `x0`, with the derivative supplied by the
/// caller.
///
/// # Errors
///
/// * [`NumericsError::InvalidArgument`] if the derivative vanishes at an
///   iterate.
/// * [`NumericsError::NoConvergence`] if the iteration budget is exhausted.
pub fn newton(
    mut f: impl FnMut(f64) -> f64,
    mut df: impl FnMut(f64) -> f64,
    x0: f64,
    cfg: &RootConfig,
) -> Result<Root> {
    let mut x = x0;
    for it in 1..=cfg.max_iter {
        let fx = f(x);
        if fx.abs() <= cfg.f_tol {
            return Ok(Root {
                x,
                f: fx,
                iterations: it,
            });
        }
        let dfx = df(x);
        if dfx == 0.0 || !dfx.is_finite() {
            return Err(NumericsError::InvalidArgument(format!(
                "derivative vanished or was non-finite at x = {x}"
            )));
        }
        let step = fx / dfx;
        x -= step;
        if step.abs() <= cfg.x_tol {
            return Ok(Root {
                x,
                f: f(x),
                iterations: it,
            });
        }
    }
    Err(NumericsError::NoConvergence {
        algorithm: "newton",
        iterations: cfg.max_iter,
    })
}

/// Brent's method on a sign-changing interval `[a, b]`: combines bisection,
/// secant steps and inverse quadratic interpolation; superlinear in
/// practice and never worse than bisection.
///
/// # Errors
///
/// * [`NumericsError::InvalidBracket`] if `f(a)` and `f(b)` have the same
///   (non-zero) sign.
/// * [`NumericsError::NoConvergence`] if the iteration budget is exhausted.
pub fn brent(mut f: impl FnMut(f64) -> f64, a: f64, b: f64, cfg: &RootConfig) -> Result<Root> {
    let (mut a, mut b) = (a, b);
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(Root {
            x: a,
            f: 0.0,
            iterations: 0,
        });
    }
    if fb == 0.0 {
        return Ok(Root {
            x: b,
            f: 0.0,
            iterations: 0,
        });
    }
    if fa.signum() == fb.signum() {
        return Err(NumericsError::InvalidBracket { a, b });
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut mflag = true;
    let mut d = 0.0;

    for it in 1..=cfg.max_iter {
        if fb.abs() <= cfg.f_tol {
            return Ok(Root {
                x: b,
                f: fb,
                iterations: it,
            });
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant step.
            b - fb * (b - a) / (fb - fa)
        };

        let cond_interval = {
            let lo = (3.0 * a + b) / 4.0;
            let (lo, hi) = if lo <= b { (lo, b) } else { (b, lo) };
            s < lo || s > hi
        };
        let cond_mflag = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond_dflag = !mflag && (s - b).abs() >= (c - d).abs() / 2.0;
        let cond_mtol = mflag && (b - c).abs() < cfg.x_tol;
        let cond_dtol = !mflag && (c - d).abs() < cfg.x_tol;

        if cond_interval || cond_mflag || cond_dflag || cond_mtol || cond_dtol {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }

        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
        if (b - a).abs() <= cfg.x_tol {
            return Ok(Root {
                x: b,
                f: fb,
                iterations: it,
            });
        }
    }
    Err(NumericsError::NoConvergence {
        algorithm: "brent",
        iterations: cfg.max_iter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, &RootConfig::default()).unwrap();
        assert!((r.x - 2.0_f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn bisect_reversed_interval() {
        let r = bisect(|x| x * x - 2.0, 2.0, 0.0, &RootConfig::default()).unwrap();
        assert!((r.x - 2.0_f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn bisect_endpoint_root() {
        let r = bisect(|x| x, 0.0, 1.0, &RootConfig::default()).unwrap();
        assert_eq!(r.x, 0.0);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn bisect_bad_bracket() {
        let err = bisect(|x| x * x + 1.0, -1.0, 1.0, &RootConfig::default()).unwrap_err();
        assert!(matches!(err, NumericsError::InvalidBracket { .. }));
    }

    #[test]
    fn newton_cubic() {
        let r = newton(
            |x| x * x * x - 8.0,
            |x| 3.0 * x * x,
            3.0,
            &RootConfig::default(),
        )
        .unwrap();
        assert!((r.x - 2.0).abs() < 1e-10);
        assert!(r.iterations < 20);
    }

    #[test]
    fn newton_zero_derivative() {
        let err = newton(|_| 1.0, |_| 0.0, 0.0, &RootConfig::default()).unwrap_err();
        assert!(matches!(err, NumericsError::InvalidArgument(_)));
    }

    #[test]
    fn newton_no_convergence_budget() {
        let cfg = RootConfig {
            max_iter: 3,
            x_tol: 0.0,
            f_tol: 0.0,
        };
        // x^2 + 1 has no real root; Newton just wanders.
        let err = newton(|x| x * x + 1.0, |x| 2.0 * x, 3.0, &cfg).unwrap_err();
        assert!(matches!(err, NumericsError::NoConvergence { .. }));
    }

    #[test]
    fn brent_transcendental() {
        // cos(x) = x near 0.739085.
        let r = brent(|x| x.cos() - x, 0.0, 1.0, &RootConfig::default()).unwrap();
        assert!((r.x - 0.739_085_133_215_160_6).abs() < 1e-10);
    }

    #[test]
    fn brent_is_fast_on_smooth_functions() {
        let cfg = RootConfig::default();
        let rb = brent(|x| x.exp() - 5.0, 0.0, 3.0, &cfg).unwrap();
        let ri = bisect(|x| x.exp() - 5.0, 0.0, 3.0, &cfg).unwrap();
        assert!((rb.x - 5.0_f64.ln()).abs() < 1e-10);
        assert!(rb.iterations <= ri.iterations);
    }

    #[test]
    fn brent_bad_bracket() {
        let err = brent(|x| x * x + 1.0, -1.0, 1.0, &RootConfig::default()).unwrap_err();
        assert!(matches!(err, NumericsError::InvalidBracket { .. }));
    }

    #[test]
    fn brent_endpoint_roots() {
        assert_eq!(
            brent(|x| x, 0.0, 1.0, &RootConfig::default()).unwrap().x,
            0.0
        );
        assert_eq!(
            brent(|x| x - 1.0, 0.0, 1.0, &RootConfig::default())
                .unwrap()
                .x,
            1.0
        );
    }

    #[test]
    fn all_methods_agree() {
        let f = |x: f64| x.powi(3) - 2.0 * x - 5.0; // classic Wallis cubic, root ≈ 2.0945515
        let cfg = RootConfig::default();
        let rb = bisect(f, 2.0, 3.0, &cfg).unwrap().x;
        let rn = newton(f, |x| 3.0 * x * x - 2.0, 2.0, &cfg).unwrap().x;
        let rr = brent(f, 2.0, 3.0, &cfg).unwrap().x;
        assert!((rb - rn).abs() < 1e-8);
        assert!((rr - rn).abs() < 1e-8);
        assert!((rn - 2.094_551_481_542_326_5).abs() < 1e-10);
    }
}
