use std::fmt;

/// Errors produced by the numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumericsError {
    /// A matrix or vector had a shape incompatible with the operation.
    ShapeMismatch {
        /// Human-readable description of the expected shape.
        expected: String,
        /// Human-readable description of the shape that was found.
        found: String,
    },
    /// A matrix was singular (or numerically singular) where a
    /// non-singular matrix was required.
    SingularMatrix,
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the algorithm that failed.
        algorithm: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// A bracketing method was given an interval that does not bracket
    /// a root (the function has the same sign at both ends).
    InvalidBracket {
        /// Left end of the interval.
        a: f64,
        /// Right end of the interval.
        b: f64,
    },
    /// An argument was outside the function's domain of validity.
    InvalidArgument(String),
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            NumericsError::SingularMatrix => write!(f, "matrix is singular"),
            NumericsError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            NumericsError::InvalidBracket { a, b } => {
                write!(f, "interval [{a}, {b}] does not bracket a root")
            }
            NumericsError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for NumericsError {}

#[cfg(test)]
mod tests {
    use super::NumericsError;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            NumericsError::ShapeMismatch {
                expected: "3x3".into(),
                found: "2x3".into(),
            },
            NumericsError::SingularMatrix,
            NumericsError::NoConvergence {
                algorithm: "qr",
                iterations: 100,
            },
            NumericsError::InvalidBracket { a: 0.0, b: 1.0 },
            NumericsError::InvalidArgument("n must be positive".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericsError>();
    }
}
