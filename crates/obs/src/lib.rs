//! Workspace-wide observability substrate, std-only like `rumor-par`
//! and `rumor-serve`.
//!
//! Three independent facilities share one crate so every runtime layer
//! can be instrumented without pulling external dependencies:
//!
//! * **Tracing** ([`span`], [`event`]) — hierarchical spans with
//!   monotonic timing and structured fields, emitted through a global
//!   sink ([`init`]) as human-readable text or JSON lines. When the sink is
//!   off and rollups are disabled, `span()` is a single relaxed atomic
//!   load and `Span::field` is a no-op: instrumentation stays in the
//!   hot paths permanently.
//! * **Rollups** ([`add`], [`snapshot`]) — process-wide named counters
//!   and per-span-name duration totals, gathered only while
//!   [`set_rollup`] is on. `perfreport` uses these to fold span
//!   statistics into the BENCH json.
//! * **Metrics** ([`Registry`], [`Counter`], [`Gauge`], [`Histogram`])
//!   — instantiable (not process-global) primitives with a
//!   Prometheus-flavoured text renderer. `rumor-serve` builds its
//!   `/metrics` page from a `Registry` so bucket formatting lives in
//!   exactly one place.
//!
//! # Example
//!
//! ```
//! use rumor_obs::{FieldValue, LogFormat};
//!
//! // Collect rollups without emitting any trace output.
//! rumor_obs::set_rollup(true);
//! {
//!     let mut sp = rumor_obs::span("demo.work");
//!     sp.field("items", 3u64);
//!     rumor_obs::add("demo.items_processed", 3);
//!     rumor_obs::event("demo.milestone", &[("phase", FieldValue::from("warmup"))]);
//! }
//! let snap = rumor_obs::snapshot();
//! assert_eq!(snap.counter("demo.items_processed"), Some(3));
//! assert!(snap.span_stat("demo.work").is_some());
//! rumor_obs::set_rollup(false);
//! rumor_obs::reset();
//! assert_eq!(rumor_obs::format(), LogFormat::Off);
//! ```

mod metrics;
mod rollup;
mod sink;
mod span;

pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use rollup::{
    add, reset, rollup_enabled, rollup_json, set_rollup, snapshot, RollupSnapshot, SpanStat,
};
pub use sink::{format, init, init_file, shutdown, LogFormat};
pub use span::{current_span_id, event, next_trace_id, span, FieldValue, Span};
