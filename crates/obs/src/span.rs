//! Hierarchical spans and point-in-time events.
//!
//! A [`Span`] measures a region with `Instant` (monotonic) timing and
//! carries structured fields. Spans nest through a thread-local stack:
//! a span opened while another is live records it as `parent`, and
//! [`event`]s attach to the innermost live span. IDs come from one
//! process-wide counter, so a request ID minted at `accept` (see
//! [`next_trace_id`]) never collides with span IDs minted later.
//!
//! Disabled-path cost: `span()` performs one relaxed atomic load per
//! facility and returns an inert guard; `field()` on an inert guard is
//! a branch on an `Option` discriminant.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::rollup;
use crate::sink::{self, LogFormat};

/// A structured field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One counter feeds both span IDs and request trace IDs.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Fused gate for [`span`]: true iff the sink or rollup collection is
/// on. Refreshed by `sink::init` and `rollup::set_rollup` (the only
/// writers of either flag), so the disabled-path cost of a span is one
/// relaxed load instead of two.
static ACTIVE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Recomputes the fused gate from the two facility flags.
pub(crate) fn refresh_active() {
    ACTIVE.store(
        sink::enabled() || rollup::rollup_enabled(),
        Ordering::Relaxed,
    );
}

thread_local! {
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Allocates a fresh process-unique ID for threading through a request
/// (accept → response) independent of any live span.
pub fn next_trace_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// The innermost live span's ID on this thread, or 0 if none.
pub fn current_span_id() -> u64 {
    STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

struct SpanMeta {
    name: &'static str,
    id: u64,
    parent: u64,
    start: Instant,
    fields: Vec<(&'static str, FieldValue)>,
}

/// RAII guard for a timed region; emits (and/or rolls up) on drop.
pub struct Span {
    meta: Option<SpanMeta>,
}

/// Opens a span named `name`. Inert (near-zero cost) unless the sink
/// or rollup collection is enabled.
pub fn span(name: &'static str) -> Span {
    if !ACTIVE.load(Ordering::Relaxed) {
        return Span { meta: None };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = current_span_id();
    STACK.with(|s| s.borrow_mut().push(id));
    Span {
        meta: Some(SpanMeta {
            name,
            id,
            parent,
            start: Instant::now(),
            fields: Vec::new(),
        }),
    }
}

impl Span {
    /// Attaches a structured field; no-op on an inert span.
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(m) = &mut self.meta {
            m.fields.push((key, value.into()));
        }
    }

    /// This span's ID (0 when inert).
    pub fn id(&self) -> u64 {
        self.meta.as_ref().map_or(0, |m| m.id)
    }

    /// Whether the span is actually recording.
    pub fn active(&self) -> bool {
        self.meta.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(m) = self.meta.take() else { return };
        STACK.with(|s| {
            let mut st = s.borrow_mut();
            if let Some(pos) = st.iter().rposition(|&x| x == m.id) {
                st.remove(pos);
            }
        });
        let ns = u64::try_from(m.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        rollup::observe_span(m.name, ns);
        match sink::format() {
            LogFormat::Off => {}
            LogFormat::Text => sink::emit(&render_text(
                "span",
                m.name,
                Some((m.id, m.parent, ns / 1_000)),
                &m.fields,
            )),
            LogFormat::Json => sink::emit(&render_json(
                "span",
                m.name,
                Some((m.id, m.parent, ns / 1_000)),
                &m.fields,
            )),
        }
    }
}

/// Emits a point-in-time record attached to the innermost live span.
pub fn event(name: &'static str, fields: &[(&'static str, FieldValue)]) {
    match sink::format() {
        LogFormat::Off => {}
        LogFormat::Text => sink::emit(&render_text("event", name, None, fields)),
        LogFormat::Json => sink::emit(&render_json("event", name, None, fields)),
    }
}

fn render_text(
    kind: &str,
    name: &str,
    span_part: Option<(u64, u64, u64)>,
    fields: &[(&'static str, FieldValue)],
) -> String {
    let mut out = String::with_capacity(96);
    let _ = write!(out, "[{kind}] {name}");
    match span_part {
        Some((id, parent, us)) => {
            let _ = write!(out, " id={id} parent={parent} us={us}");
        }
        None => {
            let parent = current_span_id();
            if parent != 0 {
                let _ = write!(out, " parent={parent}");
            }
        }
    }
    for (k, v) in fields {
        match v {
            FieldValue::U64(x) => {
                let _ = write!(out, " {k}={x}");
            }
            FieldValue::I64(x) => {
                let _ = write!(out, " {k}={x}");
            }
            FieldValue::F64(x) => {
                let _ = write!(out, " {k}={x}");
            }
            FieldValue::Bool(x) => {
                let _ = write!(out, " {k}={x}");
            }
            FieldValue::Str(x) => {
                let _ = write!(out, " {k}={x:?}");
            }
        }
    }
    out
}

fn render_json(
    kind: &str,
    name: &str,
    span_part: Option<(u64, u64, u64)>,
    fields: &[(&'static str, FieldValue)],
) -> String {
    let mut out = String::with_capacity(128);
    let _ = write!(out, "{{\"type\":\"{kind}\",\"name\":");
    push_json_str(&mut out, name);
    match span_part {
        Some((id, parent, us)) => {
            let _ = write!(out, ",\"id\":{id},\"parent\":{parent},\"us\":{us}");
        }
        None => {
            let parent = current_span_id();
            let _ = write!(out, ",\"parent\":{parent}");
        }
    }
    for (k, v) in fields {
        out.push(',');
        push_json_str(&mut out, k);
        out.push(':');
        match v {
            FieldValue::U64(x) => {
                let _ = write!(out, "{x}");
            }
            FieldValue::I64(x) => {
                let _ = write!(out, "{x}");
            }
            FieldValue::F64(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            FieldValue::Bool(x) => {
                let _ = write!(out, "{x}");
            }
            FieldValue::Str(x) => push_json_str(&mut out, x),
        }
    }
    out.push('}');
    out
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_span_costs_nothing_observable() {
        // Neither sink nor rollup enabled by default in this process.
        let mut sp = span("test.noop");
        if !sp.active() {
            sp.field("ignored", 1u64);
            assert_eq!(sp.id(), 0);
        }
    }

    #[test]
    fn json_escaping_is_safe() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn json_record_shape() {
        let line = render_json(
            "event",
            "x.y",
            None,
            &[
                ("n", FieldValue::U64(3)),
                ("ok", FieldValue::Bool(true)),
                ("r", FieldValue::F64(0.5)),
                ("bad", FieldValue::F64(f64::NAN)),
                ("s", FieldValue::Str("q\"".into())),
            ],
        );
        assert_eq!(
            line,
            "{\"type\":\"event\",\"name\":\"x.y\",\"parent\":0,\"n\":3,\"ok\":true,\"r\":0.5,\"bad\":null,\"s\":\"q\\\"\"}"
        );
    }

    #[test]
    fn trace_ids_are_unique() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
    }
}
