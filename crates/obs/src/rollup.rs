//! Process-wide rollup statistics: named counters and per-span-name
//! duration totals.
//!
//! Collection is off by default; `perfreport` (and tests) switch it on
//! with [`set_rollup`], run a workload, then read an ordered
//! [`snapshot`]. A `BTreeMap` keyed by static name keeps snapshots
//! deterministic, which lets the BENCH json diff cleanly across runs.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

static ENABLED: AtomicBool = AtomicBool::new(false);
static TABLES: Mutex<Option<Tables>> = Mutex::new(None);

#[derive(Default)]
struct Tables {
    counters: BTreeMap<&'static str, u64>,
    spans: BTreeMap<&'static str, SpanStat>,
}

/// Aggregate timing for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed spans observed.
    pub count: u64,
    /// Summed wall time, nanoseconds (saturating).
    pub total_ns: u64,
}

/// Enables or disables rollup collection.
pub fn set_rollup(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
    crate::span::refresh_active();
}

/// Whether rollup collection is currently on.
#[inline]
pub fn rollup_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn with_tables<R>(f: impl FnOnce(&mut Tables) -> R) -> R {
    let mut guard = TABLES.lock().unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert_with(Tables::default))
}

/// Adds `delta` to the named counter. No-op unless rollups are on.
pub fn add(name: &'static str, delta: u64) {
    if !rollup_enabled() {
        return;
    }
    with_tables(|t| {
        let slot = t.counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(delta);
    });
}

/// Folds one completed span into the per-name aggregate.
pub(crate) fn observe_span(name: &'static str, ns: u64) {
    if !rollup_enabled() {
        return;
    }
    with_tables(|t| {
        let stat = t.spans.entry(name).or_default();
        stat.count += 1;
        stat.total_ns = stat.total_ns.saturating_add(ns);
    });
}

/// An ordered, point-in-time copy of all rollup state.
#[derive(Debug, Clone, Default)]
pub struct RollupSnapshot {
    /// `(name, value)` pairs in name order.
    pub counters: Vec<(String, u64)>,
    /// `(name, stat)` pairs in name order.
    pub spans: Vec<(String, SpanStat)>,
}

impl RollupSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a span aggregate by name.
    pub fn span_stat(&self, name: &str) -> Option<SpanStat> {
        self.spans.iter().find(|(n, _)| n == name).map(|&(_, s)| s)
    }
}

/// Takes an ordered snapshot of the rollup tables.
pub fn snapshot() -> RollupSnapshot {
    with_tables(|t| RollupSnapshot {
        counters: t
            .counters
            .iter()
            .map(|(&k, &v)| (k.to_owned(), v))
            .collect(),
        spans: t.spans.iter().map(|(&k, &v)| (k.to_owned(), v)).collect(),
    })
}

/// Clears all rollup state (collection flag is left as-is).
pub fn reset() {
    with_tables(|t| {
        t.counters.clear();
        t.spans.clear();
    });
}

/// Renders the current rollup state as a deterministic JSON object:
/// `{"counters":{...},"spans":{"name":{"count":N,"total_ns":N}}}`.
pub fn rollup_json() -> String {
    let snap = snapshot();
    let mut out = String::with_capacity(256);
    out.push_str("{\"counters\":{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{name}\":{v}");
    }
    out.push_str("},\"spans\":{");
    for (i, (name, s)) in snap.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{name}\":{{\"count\":{},\"total_ns\":{}}}",
            s.count, s.total_ns
        );
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test exercises the global tables end-to-end; keeping it a
    // single #[test] avoids cross-test interference on global state.
    #[test]
    fn rollup_lifecycle() {
        reset();
        add("t.ignored", 5); // collection off: dropped
        set_rollup(true);
        add("t.a", 2);
        add("t.a", 3);
        observe_span("t.sp", 1_000);
        observe_span("t.sp", 500);
        let snap = snapshot();
        assert_eq!(snap.counter("t.a"), Some(5));
        assert_eq!(snap.counter("t.ignored"), None);
        let st = snap.span_stat("t.sp").unwrap();
        assert_eq!(st.count, 2);
        assert_eq!(st.total_ns, 1_500);
        let json = rollup_json();
        assert!(json.contains("\"t.a\":5"), "{json}");
        assert!(
            json.contains("\"t.sp\":{\"count\":2,\"total_ns\":1500}"),
            "{json}"
        );
        set_rollup(false);
        reset();
        assert!(snapshot().counters.is_empty());
    }
}
