//! Instantiable metric primitives and a Prometheus-flavoured text
//! renderer.
//!
//! Unlike the tracing sink these are **not** process-global:
//! `rumor-serve` tests run several servers in one process, each with
//! its own [`Registry`]. Entries render in registration order, so a
//! registry built the same way always produces byte-identical output —
//! the property `rumor-serve` pins with its exposition-stability test.
//!
//! Rendering is the single home of histogram-bucket formatting:
//! cumulative counts per bound, a final `le="+Inf"` bucket, then a
//! `_sum` line — the exact shape `/metrics` has always served.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Up/down gauge (e.g. in-flight requests).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one (wrapping, like the raw atomic it replaces).
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket latency histogram with an implicit `+Inf` bucket.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// One slot per bound plus the overflow bucket; stores per-bucket
    /// (non-cumulative) counts, cumulated at render time.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram over the given upper bounds (must be sorted).
    pub fn new(bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

enum Entry {
    Counter {
        name: String,
        c: Arc<Counter>,
    },
    Gauge {
        name: String,
        g: Arc<Gauge>,
    },
    Histogram {
        base: String,
        labels: String,
        h: Arc<Histogram>,
    },
}

/// An ordered collection of named metrics with a text renderer.
#[derive(Default)]
pub struct Registry {
    entries: Vec<Entry>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers a counter under `name` (labels included verbatim,
    /// e.g. `requests_total{endpoint="simulate"}`).
    pub fn counter(&mut self, name: impl Into<String>) -> Arc<Counter> {
        let c = Arc::new(Counter::default());
        self.entries.push(Entry::Counter {
            name: name.into(),
            c: Arc::clone(&c),
        });
        c
    }

    /// Registers a gauge under `name`.
    pub fn gauge(&mut self, name: impl Into<String>) -> Arc<Gauge> {
        let g = Arc::new(Gauge::default());
        self.entries.push(Entry::Gauge {
            name: name.into(),
            g: Arc::clone(&g),
        });
        g
    }

    /// Registers a histogram rendered as `{base}_bucket{{{labels},le=...}}`
    /// lines plus `{base}_sum{{{labels}}}`. `labels` may be empty.
    pub fn histogram(
        &mut self,
        base: impl Into<String>,
        labels: impl Into<String>,
        bounds: &[u64],
    ) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new(bounds));
        self.entries.push(Entry::Histogram {
            base: base.into(),
            labels: labels.into(),
            h: Arc::clone(&h),
        });
        h
    }

    /// Renders all entries, in registration order, as Prometheus-
    /// flavoured plain text.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        for entry in &self.entries {
            match entry {
                Entry::Counter { name, c } => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Entry::Gauge { name, g } => {
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Entry::Histogram { base, labels, h } => {
                    let sep = if labels.is_empty() { "" } else { "," };
                    let mut cumulative = 0u64;
                    for (i, bound) in h.bounds.iter().enumerate() {
                        cumulative += h.buckets[i].load(Ordering::Relaxed);
                        let _ = writeln!(
                            out,
                            "{base}_bucket{{{labels}{sep}le=\"{bound}\"}} {cumulative}"
                        );
                    }
                    cumulative += h.buckets[h.bounds.len()].load(Ordering::Relaxed);
                    let _ = writeln!(
                        out,
                        "{base}_bucket{{{labels}{sep}le=\"+Inf\"}} {cumulative}"
                    );
                    let _ = writeln!(out, "{base}_sum{{{labels}}} {}", h.sum());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn histogram_observe_and_sum() {
        let h = Histogram::new(&[1, 5, 25]);
        h.observe(1); // le=1
        h.observe(3); // le=5
        h.observe(100); // +Inf
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 104);
    }

    #[test]
    fn registry_renders_in_registration_order() {
        let mut r = Registry::new();
        let a = r.counter("alpha_total");
        let g = r.gauge("level");
        let h = r.histogram("lat_ms", "endpoint=\"x\"", &[1, 5]);
        a.add(2);
        g.set(7);
        h.observe(3);
        h.observe(42);
        assert_eq!(
            r.render(),
            "alpha_total 2\n\
             level 7\n\
             lat_ms_bucket{endpoint=\"x\",le=\"1\"} 0\n\
             lat_ms_bucket{endpoint=\"x\",le=\"5\"} 1\n\
             lat_ms_bucket{endpoint=\"x\",le=\"+Inf\"} 2\n\
             lat_ms_sum{endpoint=\"x\"} 45\n"
        );
    }

    #[test]
    fn unlabelled_histogram_renders_without_leading_comma() {
        let mut r = Registry::new();
        let h = r.histogram("d_ms", "", &[10]);
        h.observe(3);
        assert_eq!(
            r.render(),
            "d_ms_bucket{le=\"10\"} 1\nd_ms_bucket{le=\"+Inf\"} 1\nd_ms_sum{} 3\n"
        );
    }
}
