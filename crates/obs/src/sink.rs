//! The global trace sink: where spans and events go, if anywhere.
//!
//! The sink is process-global on purpose — instrumentation sites in
//! `rumor-ode` or `rumor-sim` cannot thread a logger handle through
//! every call signature without distorting the numeric APIs. The
//! fast-path cost when tracing is off is one relaxed atomic load.
//!
//! Contract:
//! * [`init`] may be called repeatedly (tests swap sinks); each call
//!   replaces the writer and flushes the previous one.
//! * Writes are line-buffered under a mutex; a poisoned lock is
//!   recovered, never propagated into numeric code.
//! * Sink I/O errors are swallowed: observability must never change
//!   control flow in the code under observation.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Output encoding of the global trace sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// No output; spans still time themselves if rollups are enabled.
    #[default]
    Off,
    /// Human-readable single-line records, e.g.
    /// `[span] ode.adaptive id=3 parent=0 us=812 accepted=204`.
    Text,
    /// One JSON object per line, machine-parsable.
    Json,
}

impl LogFormat {
    /// Parses the CLI spelling (`off` / `text` / `json`).
    pub fn parse(s: &str) -> Option<LogFormat> {
        match s {
            "off" => Some(LogFormat::Off),
            "text" => Some(LogFormat::Text),
            "json" => Some(LogFormat::Json),
            _ => None,
        }
    }
}

/// 0 = Off, 1 = Text, 2 = Json. Relaxed is enough: the flag is a
/// sampling decision, not a synchronization edge.
static FORMAT: AtomicU8 = AtomicU8::new(0);
static WRITER: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);

/// Installs (or replaces) the global sink. `writer = None` routes
/// records to stderr.
pub fn init(fmt: LogFormat, writer: Option<Box<dyn Write + Send>>) {
    let mut guard = WRITER.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(old) = guard.as_mut() {
        let _ = old.flush();
    }
    *guard = writer;
    FORMAT.store(fmt as u8, Ordering::Relaxed);
    crate::span::refresh_active();
}

/// Installs a buffered file sink at `path` (truncating it).
pub fn init_file(fmt: LogFormat, path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    init(fmt, Some(Box::new(BufWriter::new(file))));
    Ok(())
}

/// Flushes and disables the sink.
pub fn shutdown() {
    init(LogFormat::Off, None);
}

/// The currently installed format.
pub fn format() -> LogFormat {
    match FORMAT.load(Ordering::Relaxed) {
        1 => LogFormat::Text,
        2 => LogFormat::Json,
        _ => LogFormat::Off,
    }
}

/// Whether any trace output is being emitted.
#[inline]
pub(crate) fn enabled() -> bool {
    FORMAT.load(Ordering::Relaxed) != 0
}

/// Writes one record line. Errors are deliberately ignored.
pub(crate) fn emit(line: &str) {
    let mut guard = WRITER.lock().unwrap_or_else(|e| e.into_inner());
    match guard.as_mut() {
        Some(w) => {
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
        None => {
            let _ = writeln!(io::stderr().lock(), "{line}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        assert_eq!(LogFormat::parse("off"), Some(LogFormat::Off));
        assert_eq!(LogFormat::parse("text"), Some(LogFormat::Text));
        assert_eq!(LogFormat::parse("json"), Some(LogFormat::Json));
        assert_eq!(LogFormat::parse("yaml"), None);
    }
}
