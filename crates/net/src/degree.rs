//! Degree distributions and degree classes.
//!
//! The heterogeneous SIR model partitions users into `n` groups of equal
//! social connectivity; [`DegreeClasses`] is exactly that partition: the
//! sorted list of distinct degrees `k_i` with their probabilities
//! `P(k_i)` and the induced mean degree `⟨k⟩`. It is the sole interface
//! between a network (real or synthetic) and the ODE model in
//! `rumor-core`.

use crate::graph::Graph;
use crate::{NetError, Result};

/// The distinct-degree partition of a network.
///
/// # Example
///
/// ```
/// use rumor_net::degree::DegreeClasses;
///
/// # fn main() -> Result<(), rumor_net::NetError> {
/// // Three nodes of degree 1, one node of degree 3.
/// let classes = DegreeClasses::from_degrees(&[1, 1, 1, 3])?;
/// assert_eq!(classes.len(), 2);
/// assert_eq!(classes.degree(0), 1);
/// assert!((classes.probability(0) - 0.75).abs() < 1e-12);
/// assert!((classes.mean_degree() - 1.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeClasses {
    degrees: Vec<usize>,
    probabilities: Vec<f64>,
    counts: Vec<usize>,
    mean_degree: f64,
}

impl DegreeClasses {
    /// Builds the partition from a raw degree sequence.
    ///
    /// Zero-degree nodes are excluded: isolated users neither receive nor
    /// spread rumors, and including `k = 0` would make the group's
    /// infection term vanish identically.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptyGraph`] if no node has positive degree.
    pub fn from_degrees(degrees: &[usize]) -> Result<Self> {
        let mut histogram: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        for &d in degrees {
            if d > 0 {
                *histogram.entry(d).or_insert(0) += 1;
            }
        }
        if histogram.is_empty() {
            return Err(NetError::EmptyGraph);
        }
        let total: usize = histogram.values().sum();
        let mut ks = Vec::with_capacity(histogram.len());
        let mut ps = Vec::with_capacity(histogram.len());
        let mut cs = Vec::with_capacity(histogram.len());
        let mut mean = 0.0;
        for (&k, &c) in &histogram {
            let p = c as f64 / total as f64;
            ks.push(k);
            ps.push(p);
            cs.push(c);
            mean += k as f64 * p;
        }
        Ok(DegreeClasses {
            degrees: ks,
            probabilities: ps,
            counts: cs,
            mean_degree: mean,
        })
    }

    /// Builds the partition from a graph's degree sequence.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptyGraph`] if the graph has no edges.
    pub fn from_graph(graph: &Graph) -> Result<Self> {
        Self::from_degrees(&graph.degrees())
    }

    /// Builds the partition directly from `(degree, probability)` pairs,
    /// e.g. an analytic `P(k)`.
    ///
    /// Probabilities are normalized to sum to 1; synthetic node counts are
    /// not available so [`DegreeClasses::count`] reports 0 for every class.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidGeneratorConfig`] if the input is empty,
    /// contains non-positive probabilities or zero degrees, or contains
    /// duplicate degrees.
    pub fn from_probabilities(pairs: &[(usize, f64)]) -> Result<Self> {
        if pairs.is_empty() {
            return Err(NetError::InvalidGeneratorConfig(
                "degree/probability pairs must be non-empty".into(),
            ));
        }
        let mut sorted = pairs.to_vec();
        sorted.sort_by_key(|&(k, _)| k);
        let mut ks = Vec::with_capacity(sorted.len());
        let mut ps = Vec::with_capacity(sorted.len());
        let mut total = 0.0;
        for &(k, p) in &sorted {
            if k == 0 {
                return Err(NetError::InvalidGeneratorConfig(
                    "degree classes must have positive degree".into(),
                ));
            }
            if !(p > 0.0) || !p.is_finite() {
                return Err(NetError::InvalidGeneratorConfig(format!(
                    "probability for degree {k} must be positive and finite"
                )));
            }
            if ks.last() == Some(&k) {
                return Err(NetError::InvalidGeneratorConfig(format!(
                    "duplicate degree {k}"
                )));
            }
            ks.push(k);
            ps.push(p);
            total += p;
        }
        let mut mean = 0.0;
        for (k, p) in ks.iter().zip(&mut ps) {
            *p /= total;
            mean += *k as f64 * *p;
        }
        let counts = vec![0; ks.len()];
        Ok(DegreeClasses {
            degrees: ks,
            probabilities: ps,
            counts,
            mean_degree: mean,
        })
    }

    /// Number of distinct degree classes (the paper's `n`).
    pub fn len(&self) -> usize {
        self.degrees.len()
    }

    /// `true` if there are no classes (never constructed this way).
    pub fn is_empty(&self) -> bool {
        self.degrees.is_empty()
    }

    /// The degree `k_i` of class `i` (sorted ascending).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn degree(&self, i: usize) -> usize {
        self.degrees[i]
    }

    /// The probability `P(k_i)` of class `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn probability(&self, i: usize) -> f64 {
        self.probabilities[i]
    }

    /// The number of nodes in class `i` (0 if built from an analytic
    /// distribution).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn count(&self, i: usize) -> usize {
        self.counts[i]
    }

    /// All class degrees, ascending.
    pub fn degrees(&self) -> &[usize] {
        &self.degrees
    }

    /// All class probabilities (parallel to [`DegreeClasses::degrees`]).
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Mean degree `⟨k⟩ = Σ k P(k)`.
    pub fn mean_degree(&self) -> f64 {
        self.mean_degree
    }

    /// The `q`-th raw moment `⟨k^q⟩ = Σ k^q P(k)`.
    pub fn moment(&self, q: f64) -> f64 {
        self.degrees
            .iter()
            .zip(&self.probabilities)
            .map(|(&k, &p)| (k as f64).powf(q) * p)
            .sum()
    }

    /// Maximum degree.
    ///
    /// # Panics
    ///
    /// Panics if the partition is empty (cannot happen via constructors).
    pub fn max_degree(&self) -> usize {
        *self.degrees.last().expect("non-empty partition")
    }

    /// Minimum degree.
    ///
    /// # Panics
    ///
    /// Panics if the partition is empty (cannot happen via constructors).
    pub fn min_degree(&self) -> usize {
        *self.degrees.first().expect("non-empty partition")
    }

    /// Iterates over `(degree, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.degrees
            .iter()
            .copied()
            .zip(self.probabilities.iter().copied())
    }

    /// Finds the class index of a given degree, if present.
    pub fn class_of(&self, degree: usize) -> Option<usize> {
        self.degrees.binary_search(&degree).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeKind, Graph};

    #[test]
    fn from_degrees_basic_partition() {
        let c = DegreeClasses::from_degrees(&[1, 2, 2, 3, 3, 3]).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.degrees(), &[1, 2, 3]);
        assert!((c.probability(2) - 0.5).abs() < 1e-12);
        assert_eq!(c.count(1), 2);
        assert!((c.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_degrees_excluded() {
        let c = DegreeClasses::from_degrees(&[0, 0, 1, 1]).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.degree(0), 1);
        assert!((c.probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_isolated_is_error() {
        assert!(matches!(
            DegreeClasses::from_degrees(&[0, 0]),
            Err(NetError::EmptyGraph)
        ));
        assert!(DegreeClasses::from_degrees(&[]).is_err());
    }

    #[test]
    fn mean_degree_matches_hand_computation() {
        let c = DegreeClasses::from_degrees(&[1, 3]).unwrap();
        assert!((c.mean_degree() - 2.0).abs() < 1e-12);
        assert!((c.moment(1.0) - c.mean_degree()).abs() < 1e-12);
        assert!((c.moment(2.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn from_graph_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], EdgeKind::Undirected).unwrap();
        let c = DegreeClasses::from_graph(&g).unwrap();
        assert_eq!(c.degrees(), &[1, 2]);
        assert!((c.probability(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_probabilities_normalizes() {
        let c = DegreeClasses::from_probabilities(&[(1, 2.0), (4, 2.0)]).unwrap();
        assert!((c.probability(0) - 0.5).abs() < 1e-12);
        assert!((c.mean_degree() - 2.5).abs() < 1e-12);
        assert_eq!(c.count(0), 0);
    }

    #[test]
    fn from_probabilities_sorts_by_degree() {
        let c = DegreeClasses::from_probabilities(&[(9, 0.5), (2, 0.5)]).unwrap();
        assert_eq!(c.degrees(), &[2, 9]);
    }

    #[test]
    fn from_probabilities_validation() {
        assert!(DegreeClasses::from_probabilities(&[]).is_err());
        assert!(DegreeClasses::from_probabilities(&[(0, 1.0)]).is_err());
        assert!(DegreeClasses::from_probabilities(&[(1, 0.0)]).is_err());
        assert!(DegreeClasses::from_probabilities(&[(1, -1.0)]).is_err());
        assert!(DegreeClasses::from_probabilities(&[(1, f64::NAN)]).is_err());
        assert!(DegreeClasses::from_probabilities(&[(3, 0.5), (3, 0.5)]).is_err());
    }

    #[test]
    fn class_lookup() {
        let c = DegreeClasses::from_degrees(&[1, 5, 5, 9]).unwrap();
        assert_eq!(c.class_of(5), Some(1));
        assert_eq!(c.class_of(2), None);
        assert_eq!(c.min_degree(), 1);
        assert_eq!(c.max_degree(), 9);
    }

    #[test]
    fn iter_yields_pairs_in_order() {
        let c = DegreeClasses::from_degrees(&[2, 2, 7]).unwrap();
        let pairs: Vec<(usize, f64)> = c.iter().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, 2);
        assert_eq!(pairs[1].0, 7);
    }
}
