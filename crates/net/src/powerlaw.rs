//! Power-law exponent estimation.
//!
//! Two estimators are provided: the continuous-approximation maximum
//! likelihood estimator (Clauset–Shalizi–Newman Eq. 3.1 with the ½
//! correction for discrete data) and a log–log least-squares regression
//! on the degree histogram. The dataset crate uses these to verify that
//! the synthetic Digg-like network really is power-law with the intended
//! exponent.

use crate::{NetError, Result};
use rumor_numerics::stats::linear_fit;

/// Result of a power-law fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerlawFit {
    /// Estimated exponent `γ` in `P(k) ∝ k^{-γ}`.
    pub gamma: f64,
    /// The `k_min` used for the fit.
    pub k_min: usize,
    /// Number of samples at or above `k_min`.
    pub tail_len: usize,
}

/// Discrete MLE for the exponent with the standard `k_min − ½`
/// continuous correction:
/// `γ ≈ 1 + n / Σ ln(k_i / (k_min − ½))`.
///
/// # Errors
///
/// Returns [`NetError::InvalidGeneratorConfig`] if fewer than two samples
/// lie at or above `k_min`, or if `k_min == 0`.
pub fn mle_exponent(degrees: &[usize], k_min: usize) -> Result<PowerlawFit> {
    if k_min == 0 {
        return Err(NetError::InvalidGeneratorConfig(
            "k_min must be at least 1".into(),
        ));
    }
    let tail: Vec<usize> = degrees.iter().copied().filter(|&k| k >= k_min).collect();
    if tail.len() < 2 {
        return Err(NetError::InvalidGeneratorConfig(format!(
            "need at least two samples >= k_min = {k_min}, found {}",
            tail.len()
        )));
    }
    let shift = k_min as f64 - 0.5;
    let log_sum: f64 = tail.iter().map(|&k| (k as f64 / shift).ln()).sum();
    if log_sum <= 0.0 {
        return Err(NetError::InvalidGeneratorConfig(
            "degenerate tail: all samples equal k_min".into(),
        ));
    }
    Ok(PowerlawFit {
        gamma: 1.0 + tail.len() as f64 / log_sum,
        k_min,
        tail_len: tail.len(),
    })
}

/// Log–log least-squares estimate: regress `ln P(k)` on `ln k` over the
/// empirical histogram (tail `k ≥ k_min`) and report `−slope`.
///
/// Less statistically sound than [`mle_exponent`] but matches what many
/// network papers (including the Digg literature) plot.
///
/// # Errors
///
/// Returns [`NetError::InvalidGeneratorConfig`] if fewer than two distinct
/// degrees survive the `k_min` cut.
pub fn loglog_exponent(degrees: &[usize], k_min: usize) -> Result<PowerlawFit> {
    if k_min == 0 {
        return Err(NetError::InvalidGeneratorConfig(
            "k_min must be at least 1".into(),
        ));
    }
    let mut hist: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    let mut tail_len = 0usize;
    for &k in degrees {
        if k >= k_min {
            *hist.entry(k).or_insert(0) += 1;
            tail_len += 1;
        }
    }
    // Drop sparsely-populated bins: degrees observed fewer than 5 times
    // contribute mostly sampling noise and flatten the regression slope.
    hist.retain(|_, &mut c| c >= 5);
    if hist.len() < 2 {
        return Err(NetError::InvalidGeneratorConfig(format!(
            "need at least two distinct degrees >= k_min = {k_min}, found {}",
            hist.len()
        )));
    }
    let total = tail_len as f64;
    let xs: Vec<f64> = hist.keys().map(|&k| (k as f64).ln()).collect();
    let ys: Vec<f64> = hist.values().map(|&c| (c as f64 / total).ln()).collect();
    let fit = linear_fit(&xs, &ys)
        .map_err(|e| NetError::InvalidGeneratorConfig(format!("log-log regression failed: {e}")))?;
    Ok(PowerlawFit {
        gamma: -fit.slope,
        k_min,
        tail_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{powerlaw_degree_sequence, PowerlawSequenceConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn synthetic(gamma: f64, n: usize, seed: u64) -> Vec<usize> {
        let cfg = PowerlawSequenceConfig {
            n,
            gamma,
            k_min: 1,
            k_max: 10_000,
            force_even_sum: false,
        };
        powerlaw_degree_sequence(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap()
    }

    #[test]
    fn mle_recovers_known_exponent() {
        // The k_min − ½ continuous correction is only accurate for
        // k_min ≳ 6 (Clauset–Shalizi–Newman §3), so fit the tail.
        let d = synthetic(2.5, 100_000, 1);
        let fit = mle_exponent(&d, 6).unwrap();
        assert!((fit.gamma - 2.5).abs() < 0.15, "gamma {}", fit.gamma);
        assert!(fit.tail_len < d.len());
    }

    #[test]
    fn mle_with_larger_kmin() {
        let d = synthetic(2.2, 200_000, 2);
        let fit = mle_exponent(&d, 5).unwrap();
        assert!((fit.gamma - 2.2).abs() < 0.15, "gamma {}", fit.gamma);
        assert!(fit.tail_len < d.len());
    }

    #[test]
    fn loglog_estimates_same_ballpark() {
        let d = synthetic(2.5, 100_000, 3);
        let fit = loglog_exponent(&d, 1).unwrap();
        // Log-log binning is biased but should land within ~0.5.
        assert!((fit.gamma - 2.5).abs() < 0.5, "gamma {}", fit.gamma);
    }

    #[test]
    fn estimators_agree_on_clean_data() {
        let d = synthetic(3.0, 150_000, 4);
        let m = mle_exponent(&d, 6).unwrap().gamma;
        let l = loglog_exponent(&d, 2).unwrap().gamma;
        assert!((m - l).abs() < 0.6, "mle {m} vs loglog {l}");
    }

    #[test]
    fn validation_errors() {
        assert!(mle_exponent(&[1, 2, 3], 0).is_err());
        assert!(mle_exponent(&[1], 1).is_err());
        assert!(mle_exponent(&[5, 5, 5], 10).is_err());
        assert!(loglog_exponent(&[1, 2], 0).is_err());
        assert!(loglog_exponent(&[3, 3, 3], 1).is_err()); // single distinct degree
    }

    #[test]
    fn all_samples_at_kmin_still_finite() {
        // With the k_min − ½ shift, ln(k/(k_min − ½)) > 0 even when every
        // sample equals k_min, so the estimate is finite (and large-ish).
        let fit = mle_exponent(&[2, 2, 2, 2], 2).unwrap();
        assert!(fit.gamma > 1.0 && fit.gamma.is_finite());
    }
}
