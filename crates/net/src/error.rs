use std::fmt;

/// Errors produced by graph construction and generation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetError {
    /// An edge referenced a node outside `0..node_count`.
    NodeOutOfBounds {
        /// The offending node id.
        node: usize,
        /// The number of nodes in the graph.
        node_count: usize,
    },
    /// A generator was configured with impossible parameters.
    InvalidGeneratorConfig(String),
    /// A degree sequence could not be realized as a simple graph.
    UnrealizableDegreeSequence(String),
    /// An operation that requires a non-empty graph received an empty one.
    EmptyGraph,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NodeOutOfBounds { node, node_count } => {
                write!(
                    f,
                    "node {node} out of bounds (graph has {node_count} nodes)"
                )
            }
            NetError::InvalidGeneratorConfig(msg) => {
                write!(f, "invalid generator configuration: {msg}")
            }
            NetError::UnrealizableDegreeSequence(msg) => {
                write!(f, "degree sequence cannot be realized: {msg}")
            }
            NetError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::NetError;

    #[test]
    fn display_nonempty() {
        let errs = [
            NetError::NodeOutOfBounds {
                node: 5,
                node_count: 3,
            },
            NetError::InvalidGeneratorConfig("m must be positive".into()),
            NetError::UnrealizableDegreeSequence("odd sum".into()),
            NetError::EmptyGraph,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
