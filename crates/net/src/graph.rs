//! Compressed-sparse-row graphs.

use crate::{NetError, Result};

/// Whether edges are interpreted one-way or both ways.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Each `(u, v)` pair adds `v` to `u`'s adjacency only.
    Directed,
    /// Each `(u, v)` pair adds both `v → u` and `u → v`.
    Undirected,
}

/// A compact adjacency-list graph in CSR form.
///
/// Node ids are dense `0..node_count`. Parallel edges are permitted
/// (the configuration model can produce them unless deduplicated);
/// self-loops are permitted at construction and can be stripped with
/// [`Graph::simplified`].
///
/// # Example
///
/// ```
/// use rumor_net::graph::{EdgeKind, Graph};
///
/// # fn main() -> Result<(), rumor_net::NetError> {
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)], EdgeKind::Undirected)?;
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.neighbors(0), &[1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    kind: EdgeKind,
    edge_count: usize,
}

impl Graph {
    /// Builds a graph from an edge list.
    ///
    /// For [`EdgeKind::Undirected`] each input pair contributes to both
    /// endpoints' adjacency lists; [`Graph::degree`] then counts each
    /// incident edge once per endpoint, with self-loops contributing 2.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NodeOutOfBounds`] if an edge references a node
    /// `>= node_count`, or [`NetError::InvalidGeneratorConfig`] if
    /// `node_count` exceeds `u32::MAX`.
    pub fn from_edges(node_count: usize, edges: &[(usize, usize)], kind: EdgeKind) -> Result<Self> {
        if node_count > u32::MAX as usize {
            return Err(NetError::InvalidGeneratorConfig(format!(
                "node_count {node_count} exceeds u32 capacity"
            )));
        }
        for &(u, v) in edges {
            for node in [u, v] {
                if node >= node_count {
                    return Err(NetError::NodeOutOfBounds { node, node_count });
                }
            }
        }
        // Count out-degrees.
        let mut counts = vec![0usize; node_count];
        for &(u, v) in edges {
            counts[u] += 1;
            if kind == EdgeKind::Undirected {
                counts[v] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(node_count + 1);
        offsets.push(0);
        for c in &counts {
            offsets.push(offsets.last().expect("non-empty") + c);
        }
        let mut targets = vec![0u32; *offsets.last().expect("non-empty")];
        let mut cursor = offsets[..node_count].to_vec();
        for &(u, v) in edges {
            targets[cursor[u]] = v as u32;
            cursor[u] += 1;
            if kind == EdgeKind::Undirected {
                targets[cursor[v]] = u as u32;
                cursor[v] += 1;
            }
        }
        let mut g = Graph {
            offsets,
            targets,
            kind,
            edge_count: edges.len(),
        };
        g.sort_adjacency();
        Ok(g)
    }

    /// Builds a graph directly from CSR parts, skipping the edge-list
    /// intermediate entirely — the streaming-ingest constructor.
    ///
    /// `offsets` must be monotone with `offsets[0] == 0` and
    /// `offsets.last() == targets.len()`; `edge_count` is the number of
    /// *input* edges the CSR encodes (for [`EdgeKind::Undirected`],
    /// `targets.len()` counts each edge twice, self-loops included).
    /// Adjacency lists are sorted in place, so a CSR filled in file
    /// order ends up identical to one built via [`Graph::from_edges`].
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidGeneratorConfig`] for malformed
    /// offsets or an oversized node count, and
    /// [`NetError::NodeOutOfBounds`] if a target references a node
    /// `>= node_count`.
    pub fn from_csr_parts(
        offsets: Vec<usize>,
        targets: Vec<u32>,
        kind: EdgeKind,
        edge_count: usize,
    ) -> Result<Self> {
        if offsets.is_empty() {
            return Err(NetError::InvalidGeneratorConfig(
                "CSR offsets must contain at least the leading zero".into(),
            ));
        }
        let node_count = offsets.len() - 1;
        if node_count > u32::MAX as usize {
            return Err(NetError::InvalidGeneratorConfig(format!(
                "node_count {node_count} exceeds u32 capacity"
            )));
        }
        if offsets[0] != 0 || *offsets.last().expect("non-empty") != targets.len() {
            return Err(NetError::InvalidGeneratorConfig(format!(
                "CSR offsets must start at 0 and end at targets.len() = {}",
                targets.len()
            )));
        }
        if offsets.windows(2).any(|w| w[1] < w[0]) {
            return Err(NetError::InvalidGeneratorConfig(
                "CSR offsets must be monotone non-decreasing".into(),
            ));
        }
        for &v in &targets {
            if v as usize >= node_count {
                return Err(NetError::NodeOutOfBounds {
                    node: v as usize,
                    node_count,
                });
            }
        }
        let mut g = Graph {
            offsets,
            targets,
            kind,
            edge_count,
        };
        g.sort_adjacency();
        Ok(g)
    }

    fn sort_adjacency(&mut self) {
        for u in 0..self.node_count() {
            let (s, e) = (self.offsets[u], self.offsets[u + 1]);
            self.targets[s..e].sort_unstable();
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of *input* edges (each undirected edge counted once).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether the graph was built as directed or undirected.
    pub fn kind(&self) -> EdgeKind {
        self.kind
    }

    /// Degree of node `u` (out-degree for directed graphs; for undirected
    /// graphs each self-loop contributes 2).
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.node_count()`.
    pub fn degree(&self, u: usize) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Neighbors of node `u`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.node_count()`.
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.targets[self.offsets[u]..self.offsets[u + 1]]
    }

    /// `true` if an edge `u → v` exists.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.node_count()`.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// The full degree sequence.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.node_count()).map(|u| self.degree(u)).collect()
    }

    /// Mean degree `⟨k⟩`.
    pub fn mean_degree(&self) -> f64 {
        if self.node_count() == 0 {
            return 0.0;
        }
        self.targets.len() as f64 / self.node_count() as f64
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count())
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Minimum degree.
    pub fn min_degree(&self) -> usize {
        (0..self.node_count())
            .map(|u| self.degree(u))
            .min()
            .unwrap_or(0)
    }

    /// Returns a copy with self-loops and duplicate edges removed.
    pub fn simplified(&self) -> Graph {
        let mut edges = Vec::new();
        for u in 0..self.node_count() {
            let mut prev: Option<u32> = None;
            for &v in self.neighbors(u) {
                if v as usize == u {
                    continue;
                }
                if self.kind == EdgeKind::Undirected && (v as usize) < u {
                    continue; // keep one orientation only
                }
                if prev == Some(v) {
                    continue; // adjacency is sorted, duplicates are adjacent
                }
                edges.push((u, v as usize));
                prev = Some(v);
            }
        }
        Graph::from_edges(self.node_count(), &edges, self.kind)
            .expect("simplification preserves node bounds")
    }

    /// Iterates over each stored arc `(u, v)` (undirected edges appear in
    /// both orientations).
    pub fn iter_arcs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.node_count())
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v as usize)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)], EdgeKind::Undirected).unwrap()
    }

    #[test]
    fn undirected_degrees_and_neighbors() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        for u in 0..3 {
            assert_eq!(g.degree(u), 2);
        }
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn directed_graph_one_way() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)], EdgeKind::Directed).unwrap();
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 0);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn out_of_bounds_edge_rejected() {
        let err = Graph::from_edges(2, &[(0, 5)], EdgeKind::Directed).unwrap_err();
        assert!(matches!(err, NetError::NodeOutOfBounds { node: 5, .. }));
    }

    #[test]
    fn empty_graph_behaviour() {
        let g = Graph::from_edges(0, &[], EdgeKind::Undirected).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.mean_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.min_degree(), 0);
    }

    #[test]
    fn isolated_nodes_have_zero_degree() {
        let g = Graph::from_edges(4, &[(0, 1)], EdgeKind::Undirected).unwrap();
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.min_degree(), 0);
        assert_eq!(g.max_degree(), 1);
    }

    #[test]
    fn mean_degree_undirected() {
        let g = triangle();
        assert!((g.mean_degree() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn self_loop_counts_twice_undirected() {
        let g = Graph::from_edges(2, &[(0, 0), (0, 1)], EdgeKind::Undirected).unwrap();
        assert_eq!(g.degree(0), 3); // self-loop twice + edge once
        let s = g.simplified();
        assert_eq!(s.degree(0), 1);
        assert!(!s.has_edge(0, 0));
    }

    #[test]
    fn simplified_removes_duplicates() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 1), (1, 2)], EdgeKind::Undirected).unwrap();
        assert_eq!(g.degree(0), 2);
        let s = g.simplified();
        assert_eq!(s.degree(0), 1);
        assert_eq!(s.edge_count(), 2);
        assert!(s.has_edge(1, 2) && s.has_edge(2, 1));
    }

    #[test]
    fn iter_arcs_counts_both_orientations() {
        let g = triangle();
        assert_eq!(g.iter_arcs().count(), 6);
        let g = Graph::from_edges(3, &[(0, 1)], EdgeKind::Directed).unwrap();
        assert_eq!(g.iter_arcs().count(), 1);
    }

    #[test]
    fn degrees_vector_matches_individual_queries() {
        let g = triangle();
        assert_eq!(g.degrees(), vec![2, 2, 2]);
    }

    #[test]
    fn from_csr_parts_matches_from_edges() {
        // The same triangle, CSR filled in arbitrary within-row order:
        // sort_adjacency must normalize it to the from_edges layout.
        let g = Graph::from_csr_parts(
            vec![0, 2, 4, 6],
            vec![2, 1, 0, 2, 1, 0],
            EdgeKind::Undirected,
            3,
        )
        .unwrap();
        assert_eq!(g, triangle());
    }

    #[test]
    fn from_csr_parts_rejects_malformed_input() {
        // Empty offsets.
        assert!(Graph::from_csr_parts(vec![], vec![], EdgeKind::Directed, 0).is_err());
        // Leading offset not zero.
        assert!(Graph::from_csr_parts(vec![1, 1], vec![0], EdgeKind::Directed, 1).is_err());
        // Final offset disagrees with targets length.
        assert!(Graph::from_csr_parts(vec![0, 2], vec![0], EdgeKind::Directed, 2).is_err());
        // Non-monotone offsets.
        assert!(
            Graph::from_csr_parts(vec![0, 2, 1, 3], vec![0, 1, 2], EdgeKind::Directed, 3).is_err()
        );
        // Target out of bounds.
        assert!(matches!(
            Graph::from_csr_parts(vec![0, 1], vec![9], EdgeKind::Directed, 1),
            Err(NetError::NodeOutOfBounds { node: 9, .. })
        ));
    }

    #[test]
    fn from_csr_parts_empty_graph() {
        let g = Graph::from_csr_parts(vec![0], vec![], EdgeKind::Undirected, 0).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
