//! Structural graph metrics: components, clustering, assortativity.

use crate::graph::Graph;
use crate::{NetError, Result};

/// Connected components via breadth-first search (edges treated as
/// undirected regardless of [`crate::graph::EdgeKind`]).
///
/// Returns a vector mapping each node to a component id in `0..n_components`,
/// ids assigned in discovery order.
pub fn connected_components(graph: &Graph) -> Vec<usize> {
    let n = graph.node_count();
    // Build reverse adjacency on the fly for directed graphs.
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (u, v) in graph.iter_arcs() {
        rev[v].push(u as u32);
    }
    let mut comp = vec![usize::MAX; n];
    let mut next = 0;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        comp[start] = next;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in graph.neighbors(u) {
                let v = v as usize;
                if comp[v] == usize::MAX {
                    comp[v] = next;
                    queue.push_back(v);
                }
            }
            for &v in &rev[u] {
                let v = v as usize;
                if comp[v] == usize::MAX {
                    comp[v] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Number of connected components.
pub fn component_count(graph: &Graph) -> usize {
    connected_components(graph)
        .iter()
        .max()
        .map_or(0, |m| m + 1)
}

/// Size of the largest connected component (0 for an empty graph).
pub fn largest_component_size(graph: &Graph) -> usize {
    let comp = connected_components(graph);
    let mut counts = std::collections::HashMap::new();
    for c in comp {
        *counts.entry(c).or_insert(0usize) += 1;
    }
    counts.values().copied().max().unwrap_or(0)
}

/// Global clustering coefficient: `3 × triangles / connected triples`.
///
/// # Errors
///
/// Returns [`NetError::EmptyGraph`] for a graph without edges.
pub fn global_clustering(graph: &Graph) -> Result<f64> {
    let n = graph.node_count();
    if n == 0 || graph.edge_count() == 0 {
        return Err(NetError::EmptyGraph);
    }
    let mut triangles = 0u64;
    let mut triples = 0u64;
    for u in 0..n {
        let nb = graph.neighbors(u);
        let d = nb.len() as u64;
        if d >= 2 {
            triples += d * (d - 1) / 2;
        }
        for (i, &a) in nb.iter().enumerate() {
            for &b in &nb[i + 1..] {
                if graph.has_edge(a as usize, b as usize) {
                    triangles += 1;
                }
            }
        }
    }
    if triples == 0 {
        return Ok(0.0);
    }
    // Each triangle is seen once per apex node → 3 apexes; triples formula
    // already counts per-apex pairs, so the ratio needs no extra factor.
    Ok(triangles as f64 / triples as f64)
}

/// Degree assortativity: the Pearson correlation of degrees across edges
/// (Newman's `r`). Positive values mean hubs attach to hubs.
///
/// # Errors
///
/// Returns [`NetError::EmptyGraph`] if the graph has no edges, or
/// [`NetError::InvalidGeneratorConfig`] if all edge-endpoint degrees are
/// identical (correlation undefined, e.g. a cycle).
pub fn degree_assortativity(graph: &Graph) -> Result<f64> {
    let arcs: Vec<(usize, usize)> = graph.iter_arcs().collect();
    if arcs.is_empty() {
        return Err(NetError::EmptyGraph);
    }
    let m = arcs.len() as f64;
    let (mut sum_prod, mut sum_j, mut sum_k, mut sum_j2, mut sum_k2) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for &(u, v) in &arcs {
        let j = graph.degree(u) as f64;
        let k = graph.degree(v) as f64;
        sum_prod += j * k;
        sum_j += j;
        sum_k += k;
        sum_j2 += j * j;
        sum_k2 += k * k;
    }
    let num = sum_prod / m - (sum_j / m) * (sum_k / m);
    let den = ((sum_j2 / m - (sum_j / m).powi(2)) * (sum_k2 / m - (sum_k / m).powi(2))).sqrt();
    if den == 0.0 {
        return Err(NetError::InvalidGeneratorConfig(
            "assortativity undefined: all endpoint degrees identical".into(),
        ));
    }
    Ok(num / den)
}

/// Breadth-first distances from `source` (treating edges as undirected);
/// unreachable nodes get `usize::MAX`.
///
/// # Errors
///
/// Returns [`NetError::NodeOutOfBounds`] if `source` is out of range.
pub fn bfs_distances(graph: &Graph, source: usize) -> Result<Vec<usize>> {
    let n = graph.node_count();
    if source >= n {
        return Err(NetError::NodeOutOfBounds {
            node: source,
            node_count: n,
        });
    }
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (u, v) in graph.iter_arcs() {
        rev[v].push(u as u32);
    }
    let mut dist = vec![usize::MAX; n];
    dist[source] = 0;
    let mut queue = std::collections::VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        let d = dist[u] + 1;
        for &v in graph.neighbors(u).iter().chain(rev[u].iter()) {
            let v = v as usize;
            if dist[v] == usize::MAX {
                dist[v] = d;
                queue.push_back(v);
            }
        }
    }
    Ok(dist)
}

/// Mean shortest-path length estimated from BFS trees rooted at
/// `sample_count` deterministic, evenly spaced source nodes (exact when
/// `sample_count >= n`). Unreachable pairs are excluded.
///
/// # Example
///
/// ```
/// use rumor_net::graph::{EdgeKind, Graph};
/// use rumor_net::metrics::average_path_length;
///
/// # fn main() -> Result<(), rumor_net::NetError> {
/// // Path 0 - 1 - 2: pair distances 1, 1, 2 (each direction).
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)], EdgeKind::Undirected)?;
/// let apl = average_path_length(&g, 3)?;
/// assert!((apl - 8.0 / 6.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`NetError::EmptyGraph`] if the graph has no edges or no pair
/// of connected nodes, and [`NetError::InvalidGeneratorConfig`] if
/// `sample_count == 0`.
pub fn average_path_length(graph: &Graph, sample_count: usize) -> Result<f64> {
    if graph.node_count() == 0 || graph.edge_count() == 0 {
        return Err(NetError::EmptyGraph);
    }
    if sample_count == 0 {
        return Err(NetError::InvalidGeneratorConfig(
            "need at least one BFS sample".into(),
        ));
    }
    let n = graph.node_count();
    let samples = sample_count.min(n);
    let mut total = 0.0;
    let mut pairs = 0usize;
    for s in 0..samples {
        let source = s * n / samples;
        let dist = bfs_distances(graph, source)?;
        for (v, &d) in dist.iter().enumerate() {
            if v != source && d != usize::MAX {
                total += d as f64;
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        return Err(NetError::EmptyGraph);
    }
    Ok(total / pairs as f64)
}

/// Average nearest-neighbour degree as a function of degree,
/// `k_nn(k) = E[degree of a random neighbour | node degree = k]` —
/// the standard probe of degree–degree correlations. Returns sorted
/// `(k, k_nn(k))` pairs over the degrees present in the graph.
///
/// A flat profile indicates an uncorrelated network (where the
/// mean-field model's factorization is exact); rising/falling profiles
/// indicate assortative/disassortative mixing.
///
/// # Errors
///
/// Returns [`NetError::EmptyGraph`] if the graph has no edges.
pub fn knn_by_degree(graph: &Graph) -> Result<Vec<(usize, f64)>> {
    if graph.node_count() == 0 || graph.edge_count() == 0 {
        return Err(NetError::EmptyGraph);
    }
    let mut sums: std::collections::BTreeMap<usize, (f64, usize)> =
        std::collections::BTreeMap::new();
    for u in 0..graph.node_count() {
        let k = graph.degree(u);
        if k == 0 {
            continue;
        }
        let mean_nb: f64 = graph
            .neighbors(u)
            .iter()
            .map(|&v| graph.degree(v as usize) as f64)
            .sum::<f64>()
            / k as f64;
        let entry = sums.entry(k).or_insert((0.0, 0));
        entry.0 += mean_nb;
        entry.1 += 1;
    }
    Ok(sums
        .into_iter()
        .map(|(k, (total, count))| (k, total / count as f64))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeKind, Graph};

    fn path(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges, EdgeKind::Undirected).unwrap()
    }

    #[test]
    fn single_component_path() {
        let g = path(5);
        assert_eq!(component_count(&g), 1);
        assert_eq!(largest_component_size(&g), 5);
    }

    #[test]
    fn two_components() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)], EdgeKind::Undirected).unwrap();
        let comp = connected_components(&g);
        assert_eq!(component_count(&g), 3); // {0,1}, {2,3}, {4}
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_eq!(largest_component_size(&g), 2);
    }

    #[test]
    fn directed_components_are_weak() {
        // 0 → 1 ← 2: weakly connected as one component.
        let g = Graph::from_edges(3, &[(0, 1), (2, 1)], EdgeKind::Directed).unwrap();
        assert_eq!(component_count(&g), 1);
    }

    #[test]
    fn clustering_triangle_is_one() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)], EdgeKind::Undirected).unwrap();
        assert!((global_clustering(&g).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_star_is_zero() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)], EdgeKind::Undirected).unwrap();
        assert_eq!(global_clustering(&g).unwrap(), 0.0);
    }

    #[test]
    fn clustering_known_mixed_value() {
        // Triangle 0-1-2 plus pendant 3 attached to 0.
        let g =
            Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3)], EdgeKind::Undirected).unwrap();
        // Triangles (per-apex): 3. Triples: node0 C(3,2)=3, node1 1, node2 1, node3 0 → 5.
        assert!((global_clustering(&g).unwrap() - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_empty_graph_errors() {
        let g = Graph::from_edges(3, &[], EdgeKind::Undirected).unwrap();
        assert!(matches!(global_clustering(&g), Err(NetError::EmptyGraph)));
    }

    #[test]
    fn assortativity_star_is_negative() {
        let edges: Vec<(usize, usize)> = (1..10).map(|i| (0, i)).collect();
        let g = Graph::from_edges(10, &edges, EdgeKind::Undirected).unwrap();
        assert!((degree_assortativity(&g).unwrap() + 1.0).abs() < 1e-9);
    }

    #[test]
    fn assortativity_undefined_on_regular_graph() {
        // 4-cycle: every endpoint degree is 2.
        let g =
            Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], EdgeKind::Undirected).unwrap();
        assert!(degree_assortativity(&g).is_err());
    }

    #[test]
    fn assortativity_no_edges_errors() {
        let g = Graph::from_edges(3, &[], EdgeKind::Undirected).unwrap();
        assert!(matches!(
            degree_assortativity(&g),
            Err(NetError::EmptyGraph)
        ));
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, 0).unwrap();
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d = bfs_distances(&g, 2).unwrap();
        assert_eq!(d, vec![2, 1, 0, 1, 2]);
        assert!(bfs_distances(&g, 99).is_err());
    }

    #[test]
    fn bfs_marks_unreachable() {
        let g = Graph::from_edges(4, &[(0, 1)], EdgeKind::Undirected).unwrap();
        let d = bfs_distances(&g, 0).unwrap();
        assert_eq!(d[1], 1);
        assert_eq!(d[2], usize::MAX);
        assert_eq!(d[3], usize::MAX);
    }

    #[test]
    fn bfs_follows_directed_edges_both_ways() {
        // Weak connectivity: 0 → 1 ← 2 is all within distance 2 of 0.
        let g = Graph::from_edges(3, &[(0, 1), (2, 1)], EdgeKind::Directed).unwrap();
        let d = bfs_distances(&g, 0).unwrap();
        assert_eq!(d, vec![0, 1, 2]);
    }

    #[test]
    fn average_path_length_exact_on_path_graph() {
        // Path on 4 nodes: pair distances 1,2,3,1,2,1 → mean = 10/6.
        let g = path(4);
        let apl = average_path_length(&g, 10).unwrap();
        assert!((apl - 10.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn average_path_length_validation() {
        let empty = Graph::from_edges(3, &[], EdgeKind::Undirected).unwrap();
        assert!(average_path_length(&empty, 3).is_err());
        let g = path(3);
        assert!(average_path_length(&g, 0).is_err());
    }

    #[test]
    fn small_world_rewiring_shortens_paths() {
        use crate::generators::watts_strogatz;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let lattice = watts_strogatz(400, 6, 0.0, &mut StdRng::seed_from_u64(6)).unwrap();
        let rewired = watts_strogatz(400, 6, 0.2, &mut StdRng::seed_from_u64(6)).unwrap();
        let l0 = average_path_length(&lattice, 40).unwrap();
        let l1 = average_path_length(&rewired, 40).unwrap();
        assert!(
            l1 < 0.5 * l0,
            "rewired APL {l1} should be far below the lattice's {l0}"
        );
    }

    #[test]
    fn knn_star_profile() {
        // Star: leaves (k = 1) neighbour the hub (k = 9); hub neighbours
        // leaves (k = 1).
        let edges: Vec<(usize, usize)> = (1..10).map(|i| (0, i)).collect();
        let g = Graph::from_edges(10, &edges, EdgeKind::Undirected).unwrap();
        let knn = knn_by_degree(&g).unwrap();
        assert_eq!(knn.len(), 2);
        assert_eq!(knn[0], (1, 9.0));
        assert_eq!(knn[1], (9, 1.0));
    }

    #[test]
    fn knn_regular_graph_is_flat() {
        // Cycle: every node and neighbour has degree 2.
        let g = Graph::from_edges(
            5,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)],
            EdgeKind::Undirected,
        )
        .unwrap();
        let knn = knn_by_degree(&g).unwrap();
        assert_eq!(knn, vec![(2, 2.0)]);
    }

    #[test]
    fn knn_empty_graph_errors() {
        let g = Graph::from_edges(3, &[], EdgeKind::Undirected).unwrap();
        assert!(matches!(knn_by_degree(&g), Err(NetError::EmptyGraph)));
    }

    #[test]
    fn assortativity_mixed_graph_in_range() {
        let g = Graph::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 3)],
            EdgeKind::Undirected,
        )
        .unwrap();
        let r = degree_assortativity(&g).unwrap();
        assert!((-1.0..=1.0).contains(&r));
    }
}
