//! Watts–Strogatz small-world graphs.

use crate::graph::{EdgeKind, Graph};
use crate::{NetError, Result};
use rand::Rng;

/// Samples a Watts–Strogatz small-world graph: a ring lattice where each
/// node connects to its `k` nearest neighbours (`k` even), with each
/// edge rewired to a uniform random target with probability `beta`.
///
/// Unlike the scale-free generators this produces a *homogeneous* degree
/// distribution — the ablation benchmarks use it as the "no hubs"
/// contrast network.
///
/// # Errors
///
/// Returns [`NetError::InvalidGeneratorConfig`] if `k` is odd or zero,
/// `k >= n`, or `beta ∉ [0, 1]`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use rumor_net::generators::watts_strogatz;
///
/// # fn main() -> Result<(), rumor_net::NetError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let g = watts_strogatz(100, 6, 0.1, &mut rng)?;
/// assert_eq!(g.node_count(), 100);
/// assert_eq!(g.edge_count(), 300);
/// # Ok(())
/// # }
/// ```
pub fn watts_strogatz(n: usize, k: usize, beta: f64, rng: &mut impl Rng) -> Result<Graph> {
    if k == 0 || k % 2 != 0 {
        return Err(NetError::InvalidGeneratorConfig(format!(
            "lattice degree k must be positive and even, got {k}"
        )));
    }
    if k >= n {
        return Err(NetError::InvalidGeneratorConfig(format!(
            "lattice degree k = {k} must be below n = {n}"
        )));
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(NetError::InvalidGeneratorConfig(format!(
            "rewiring probability must lie in [0, 1], got {beta}"
        )));
    }
    // Ring lattice edges: (u, u + d) for d = 1..=k/2.
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n * k / 2);
    for u in 0..n {
        for d in 1..=k / 2 {
            edges.push((u, (u + d) % n));
        }
    }
    // Track adjacency to keep the rewired graph simple.
    let mut adjacent: Vec<std::collections::HashSet<usize>> = vec![Default::default(); n];
    for &(u, v) in &edges {
        adjacent[u].insert(v);
        adjacent[v].insert(u);
    }
    for idx in 0..edges.len() {
        if !rng.gen_bool(beta) {
            continue;
        }
        let (u, old_v) = edges[idx];
        // Pick a fresh target avoiding self-loops and duplicates; give up
        // after a bounded number of attempts (dense corner cases).
        for _ in 0..32 {
            let new_v = rng.gen_range(0..n);
            if new_v == u || adjacent[u].contains(&new_v) {
                continue;
            }
            adjacent[u].remove(&old_v);
            adjacent[old_v].remove(&u);
            adjacent[u].insert(new_v);
            adjacent[new_v].insert(u);
            edges[idx] = (u, new_v);
            break;
        }
    }
    Graph::from_edges(n, &edges, EdgeKind::Undirected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{global_clustering, largest_component_size};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_beta_is_ring_lattice() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = watts_strogatz(30, 4, 0.0, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 60);
        for u in 0..30 {
            assert_eq!(g.degree(u), 4, "lattice is 4-regular");
            assert!(g.has_edge(u, (u + 1) % 30));
            assert!(g.has_edge(u, (u + 2) % 30));
        }
    }

    #[test]
    fn edge_count_preserved_under_rewiring() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = watts_strogatz(200, 6, 0.3, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 600);
        assert_eq!(g.node_count(), 200);
    }

    #[test]
    fn graph_stays_simple() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = watts_strogatz(150, 6, 0.5, &mut rng).unwrap();
        for u in 0..g.node_count() {
            assert!(!g.has_edge(u, u));
            let nb = g.neighbors(u);
            for w in nb.windows(2) {
                assert_ne!(w[0], w[1]);
            }
        }
    }

    #[test]
    fn rewiring_reduces_clustering() {
        // The small-world signature: the lattice clusters heavily, the
        // rewired graph much less.
        let lattice = watts_strogatz(400, 8, 0.0, &mut StdRng::seed_from_u64(4)).unwrap();
        let rewired = watts_strogatz(400, 8, 0.8, &mut StdRng::seed_from_u64(4)).unwrap();
        let cl = global_clustering(&lattice).unwrap();
        let cr = global_clustering(&rewired).unwrap();
        assert!(cl > 0.5, "lattice clustering {cl}");
        assert!(cr < cl / 2.0, "rewired clustering {cr} vs lattice {cl}");
    }

    #[test]
    fn mostly_connected_at_moderate_beta() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = watts_strogatz(300, 6, 0.2, &mut rng).unwrap();
        assert!(largest_component_size(&g) as f64 > 0.95 * 300.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(watts_strogatz(10, 3, 0.1, &mut rng).is_err()); // odd k
        assert!(watts_strogatz(10, 0, 0.1, &mut rng).is_err());
        assert!(watts_strogatz(10, 10, 0.1, &mut rng).is_err()); // k >= n
        assert!(watts_strogatz(10, 4, 1.5, &mut rng).is_err());
        assert!(watts_strogatz(10, 4, -0.1, &mut rng).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = watts_strogatz(100, 4, 0.3, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = watts_strogatz(100, 4, 0.3, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }
}
