//! The configuration model: realize a prescribed degree sequence.

use crate::graph::{EdgeKind, Graph};
use crate::{NetError, Result};
use rand::seq::SliceRandom;
use rand::Rng;

/// Builds a random multigraph with (approximately) the prescribed degree
/// sequence via uniform stub matching, then strips self-loops and
/// duplicate edges.
///
/// Stripping makes realized degrees differ slightly from the request at
/// the heavy tail — the standard "erased configuration model". For the
/// degree histograms used by the mean-field rumor model this bias is
/// negligible (< 1% of stubs for Digg-scale parameters), and the erased
/// variant guarantees a *simple* graph for the agent-based simulator.
///
/// # Errors
///
/// * [`NetError::UnrealizableDegreeSequence`] if the degree sum is odd.
/// * [`NetError::InvalidGeneratorConfig`] if the sequence is empty.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use rumor_net::generators::configuration_model;
///
/// # fn main() -> Result<(), rumor_net::NetError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let g = configuration_model(&[3, 3, 2, 2, 2, 2], &mut rng)?;
/// assert_eq!(g.node_count(), 6);
/// # Ok(())
/// # }
/// ```
pub fn configuration_model(degrees: &[usize], rng: &mut impl Rng) -> Result<Graph> {
    if degrees.is_empty() {
        return Err(NetError::InvalidGeneratorConfig(
            "degree sequence must be non-empty".into(),
        ));
    }
    let stub_total: usize = degrees.iter().sum();
    if stub_total % 2 != 0 {
        return Err(NetError::UnrealizableDegreeSequence(format!(
            "degree sum {stub_total} is odd"
        )));
    }
    let mut stubs: Vec<usize> = Vec::with_capacity(stub_total);
    for (u, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(u, d));
    }
    stubs.shuffle(rng);
    let mut edges = Vec::with_capacity(stub_total / 2);
    for pair in stubs.chunks_exact(2) {
        edges.push((pair[0], pair[1]));
    }
    let multi = Graph::from_edges(degrees.len(), &edges, EdgeKind::Undirected)?;
    Ok(multi.simplified())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn realizes_regular_sequence() {
        let mut rng = StdRng::seed_from_u64(1);
        let degrees = vec![4usize; 100];
        let g = configuration_model(&degrees, &mut rng).unwrap();
        assert_eq!(g.node_count(), 100);
        // Erased model: degrees can only shrink slightly.
        let realized = g.mean_degree();
        assert!(realized > 3.7 && realized <= 4.0, "mean degree {realized}");
    }

    #[test]
    fn graph_is_simple() {
        let mut rng = StdRng::seed_from_u64(2);
        let degrees = vec![6usize; 50];
        let g = configuration_model(&degrees, &mut rng).unwrap();
        for u in 0..g.node_count() {
            assert!(!g.has_edge(u, u));
            let nb = g.neighbors(u);
            for w in nb.windows(2) {
                assert_ne!(w[0], w[1]);
            }
        }
    }

    #[test]
    fn odd_sum_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let err = configuration_model(&[3, 2], &mut rng).unwrap_err();
        assert!(matches!(err, NetError::UnrealizableDegreeSequence(_)));
    }

    #[test]
    fn empty_sequence_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(configuration_model(&[], &mut rng).is_err());
    }

    #[test]
    fn zero_degrees_allowed() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = configuration_model(&[0, 0, 2, 2], &mut rng).unwrap();
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn heterogeneous_sequence_roughly_preserved() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut degrees = vec![1usize; 900];
        degrees.extend(vec![20usize; 100]);
        let g = configuration_model(&degrees, &mut rng).unwrap();
        // Hubs stay hubs, leaves stay leaves.
        let hub_mean: f64 = (900..1000).map(|u| g.degree(u) as f64).sum::<f64>() / 100.0;
        let leaf_mean: f64 = (0..900).map(|u| g.degree(u) as f64).sum::<f64>() / 900.0;
        assert!(hub_mean > 15.0, "hub mean {hub_mean}");
        assert!(leaf_mean <= 1.0 + 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let degrees = vec![3usize; 40];
        let g1 = configuration_model(&degrees, &mut StdRng::seed_from_u64(3)).unwrap();
        let g2 = configuration_model(&degrees, &mut StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(g1, g2);
    }
}
