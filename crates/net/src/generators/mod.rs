//! Random-graph generators.
//!
//! All generators are deterministic given a [`rand::Rng`] seed, which the
//! experiment harness exploits to make every figure reproducible.

mod ba;
mod config_model;
mod er;
mod powerlaw_seq;
mod ws;

pub use ba::barabasi_albert;
pub use config_model::configuration_model;
pub use er::erdos_renyi;
pub use powerlaw_seq::{powerlaw_degree_sequence, PowerlawSequenceConfig};
pub use ws::watts_strogatz;
