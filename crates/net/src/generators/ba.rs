//! Barabási–Albert preferential attachment.

use crate::graph::{EdgeKind, Graph};
use crate::{NetError, Result};
use rand::Rng;

/// Samples an undirected Barabási–Albert scale-free graph: starts from a
/// small clique of `m + 1` nodes and attaches each new node with `m`
/// edges chosen preferentially by degree.
///
/// The resulting degree distribution follows `P(k) ∝ k^{-3}` in the tail,
/// which is the canonical "scale-free OSN" structure the paper's
/// heterogeneous model targets.
///
/// # Errors
///
/// Returns [`NetError::InvalidGeneratorConfig`] if `m == 0` or
/// `n < m + 1`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use rumor_net::generators::barabasi_albert;
///
/// # fn main() -> Result<(), rumor_net::NetError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let g = barabasi_albert(500, 3, &mut rng)?;
/// assert_eq!(g.node_count(), 500);
/// assert!(g.min_degree() >= 3);
/// # Ok(())
/// # }
/// ```
pub fn barabasi_albert(n: usize, m: usize, rng: &mut impl Rng) -> Result<Graph> {
    if m == 0 {
        return Err(NetError::InvalidGeneratorConfig(
            "attachment count m must be positive".into(),
        ));
    }
    if n < m + 1 {
        return Err(NetError::InvalidGeneratorConfig(format!(
            "need at least m + 1 = {} nodes, got {n}",
            m + 1
        )));
    }
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(m * n);
    // `stubs` holds one entry per edge endpoint, so uniform sampling from
    // it is exactly degree-proportional sampling.
    let mut stubs: Vec<usize> = Vec::with_capacity(2 * m * n);

    // Seed clique on nodes 0..=m.
    for u in 0..=m {
        for v in (u + 1)..=m {
            edges.push((u, v));
            stubs.push(u);
            stubs.push(v);
        }
    }

    let mut chosen: Vec<usize> = Vec::with_capacity(m);
    for new in (m + 1)..n {
        chosen.clear();
        // Sample m distinct targets preferentially; rejection on duplicates.
        let mut guard = 0usize;
        while chosen.len() < m {
            let t = stubs[rng.gen_range(0..stubs.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
            if guard > 100 * m + 1000 {
                // Degenerate corner (tiny graphs): fall back to the lowest ids.
                for u in 0..new {
                    if chosen.len() == m {
                        break;
                    }
                    if !chosen.contains(&u) {
                        chosen.push(u);
                    }
                }
            }
        }
        for &t in &chosen {
            edges.push((new, t));
            stubs.push(new);
            stubs.push(t);
        }
    }
    Graph::from_edges(n, &edges, EdgeKind::Undirected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn node_and_edge_counts() {
        let mut rng = StdRng::seed_from_u64(11);
        let (n, m) = (1000, 4);
        let g = barabasi_albert(n, m, &mut rng).unwrap();
        assert_eq!(g.node_count(), n);
        // Seed clique C(m+1, 2) edges + m per subsequent node.
        let expect = (m + 1) * m / 2 + m * (n - m - 1);
        assert_eq!(g.edge_count(), expect);
    }

    #[test]
    fn minimum_degree_is_m() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = barabasi_albert(300, 3, &mut rng).unwrap();
        assert!(g.min_degree() >= 3);
    }

    #[test]
    fn heavy_tail_exists() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = barabasi_albert(3000, 2, &mut rng).unwrap();
        // Scale-free graphs have hubs far above the mean degree.
        assert!(g.max_degree() as f64 > 5.0 * g.mean_degree());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(barabasi_albert(10, 0, &mut rng).is_err());
        assert!(barabasi_albert(2, 5, &mut rng).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let g1 = barabasi_albert(200, 2, &mut StdRng::seed_from_u64(7)).unwrap();
        let g2 = barabasi_albert(200, 2, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn smallest_valid_graph_is_clique() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = barabasi_albert(4, 3, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.min_degree(), 3);
    }

    #[test]
    fn no_self_loops_or_duplicate_attachments() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = barabasi_albert(500, 3, &mut rng).unwrap();
        for u in 0..g.node_count() {
            assert!(!g.has_edge(u, u), "self loop at {u}");
            let nb = g.neighbors(u);
            for w in nb.windows(2) {
                assert_ne!(w[0], w[1], "duplicate edge at node {u}");
            }
        }
    }
}
