//! Bounded discrete power-law degree-sequence sampling.

use crate::{NetError, Result};
use rand::Rng;

/// Configuration for [`powerlaw_degree_sequence`].
#[derive(Debug, Clone, PartialEq)]
pub struct PowerlawSequenceConfig {
    /// Number of degrees to sample.
    pub n: usize,
    /// Power-law exponent `γ` in `P(k) ∝ k^{-γ}` (must exceed 1).
    pub gamma: f64,
    /// Minimum degree (inclusive, ≥ 1).
    pub k_min: usize,
    /// Maximum degree (inclusive, ≥ `k_min`).
    pub k_max: usize,
    /// Force the sequence sum to be even so a graph can realize it.
    pub force_even_sum: bool,
}

impl Default for PowerlawSequenceConfig {
    fn default() -> Self {
        PowerlawSequenceConfig {
            n: 1000,
            gamma: 2.5,
            k_min: 1,
            k_max: 100,
            force_even_sum: true,
        }
    }
}

/// Samples `n` degrees from the bounded discrete power law
/// `P(k) ∝ k^{-γ}` on `[k_min, k_max]` by inverse-CDF lookup.
///
/// This is the degree structure the Digg-like synthetic dataset in
/// `rumor-datasets` is built from.
///
/// # Errors
///
/// Returns [`NetError::InvalidGeneratorConfig`] if `γ ≤ 1`, `k_min == 0`,
/// `k_max < k_min`, or `n == 0`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use rumor_net::generators::{powerlaw_degree_sequence, PowerlawSequenceConfig};
///
/// # fn main() -> Result<(), rumor_net::NetError> {
/// let cfg = PowerlawSequenceConfig { n: 500, gamma: 2.2, k_min: 1, k_max: 50, force_even_sum: true };
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let degrees = powerlaw_degree_sequence(&cfg, &mut rng)?;
/// assert_eq!(degrees.len(), 500);
/// assert_eq!(degrees.iter().sum::<usize>() % 2, 0);
/// # Ok(())
/// # }
/// ```
pub fn powerlaw_degree_sequence(
    cfg: &PowerlawSequenceConfig,
    rng: &mut impl Rng,
) -> Result<Vec<usize>> {
    if cfg.n == 0 {
        return Err(NetError::InvalidGeneratorConfig(
            "n must be positive".into(),
        ));
    }
    if cfg.gamma <= 1.0 {
        return Err(NetError::InvalidGeneratorConfig(format!(
            "gamma must exceed 1, got {}",
            cfg.gamma
        )));
    }
    if cfg.k_min == 0 {
        return Err(NetError::InvalidGeneratorConfig(
            "k_min must be at least 1".into(),
        ));
    }
    if cfg.k_max < cfg.k_min {
        return Err(NetError::InvalidGeneratorConfig(format!(
            "k_max {} below k_min {}",
            cfg.k_max, cfg.k_min
        )));
    }

    // Cumulative weights over [k_min, k_max].
    let span = cfg.k_max - cfg.k_min + 1;
    let mut cdf = Vec::with_capacity(span);
    let mut acc = 0.0;
    for k in cfg.k_min..=cfg.k_max {
        acc += (k as f64).powf(-cfg.gamma);
        cdf.push(acc);
    }
    let total = acc;

    let mut degrees = Vec::with_capacity(cfg.n);
    for _ in 0..cfg.n {
        let u: f64 = rng.gen_range(0.0..total);
        let idx = cdf.partition_point(|&c| c < u).min(span - 1);
        degrees.push(cfg.k_min + idx);
    }
    if cfg.force_even_sum && degrees.iter().sum::<usize>() % 2 == 1 {
        // Bump one non-maximal degree by 1 to even the stub count.
        if let Some(d) = degrees.iter_mut().find(|d| **d < cfg.k_max) {
            *d += 1;
        } else {
            // All at k_max (possible only for k_min == k_max with odd n·k).
            return Err(NetError::UnrealizableDegreeSequence(
                "cannot even the degree sum without exceeding k_max".into(),
            ));
        }
    }
    Ok(degrees)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(cfg: &PowerlawSequenceConfig, seed: u64) -> Vec<usize> {
        powerlaw_degree_sequence(cfg, &mut StdRng::seed_from_u64(seed)).unwrap()
    }

    #[test]
    fn respects_bounds() {
        let cfg = PowerlawSequenceConfig {
            n: 5000,
            gamma: 2.3,
            k_min: 2,
            k_max: 80,
            force_even_sum: false,
        };
        let d = sample(&cfg, 1);
        assert!(d.iter().all(|&k| (2..=80).contains(&k)));
    }

    #[test]
    fn even_sum_enforced() {
        let cfg = PowerlawSequenceConfig {
            n: 999,
            ..Default::default()
        };
        for seed in 0..10 {
            let d = sample(&cfg, seed);
            assert_eq!(d.iter().sum::<usize>() % 2, 0, "seed {seed}");
        }
    }

    #[test]
    fn heavier_gamma_means_lighter_tail() {
        let base = PowerlawSequenceConfig {
            n: 20000,
            k_min: 1,
            k_max: 1000,
            force_even_sum: false,
            ..Default::default()
        };
        let shallow = sample(
            &PowerlawSequenceConfig {
                gamma: 2.0,
                ..base.clone()
            },
            5,
        );
        let steep = sample(&PowerlawSequenceConfig { gamma: 3.5, ..base }, 5);
        let mean = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len() as f64;
        assert!(mean(&shallow) > mean(&steep));
    }

    #[test]
    fn frequency_ratio_tracks_power_law() {
        let cfg = PowerlawSequenceConfig {
            n: 200_000,
            gamma: 2.0,
            k_min: 1,
            k_max: 100,
            force_even_sum: false,
        };
        let d = sample(&cfg, 9);
        let count = |k: usize| d.iter().filter(|&&x| x == k).count() as f64;
        // P(1)/P(2) should be close to 2^γ = 4.
        let ratio = count(1) / count(2);
        assert!((ratio - 4.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        for bad in [
            PowerlawSequenceConfig {
                n: 0,
                ..Default::default()
            },
            PowerlawSequenceConfig {
                gamma: 1.0,
                ..Default::default()
            },
            PowerlawSequenceConfig {
                k_min: 0,
                ..Default::default()
            },
            PowerlawSequenceConfig {
                k_min: 10,
                k_max: 5,
                ..Default::default()
            },
        ] {
            assert!(powerlaw_degree_sequence(&bad, &mut rng).is_err());
        }
    }

    #[test]
    fn degenerate_single_degree() {
        let cfg = PowerlawSequenceConfig {
            n: 10,
            gamma: 2.0,
            k_min: 4,
            k_max: 4,
            force_even_sum: true,
        };
        let d = sample(&cfg, 0);
        assert!(d.iter().all(|&k| k == 4));
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = PowerlawSequenceConfig::default();
        assert_eq!(sample(&cfg, 42), sample(&cfg, 42));
    }
}
