//! Erdős–Rényi `G(n, p)` graphs.

use crate::graph::{EdgeKind, Graph};
use crate::{NetError, Result};
use rand::Rng;

/// Samples an undirected Erdős–Rényi graph `G(n, p)`.
///
/// Uses geometric skip sampling (Batagelj–Brandes), so the cost is
/// proportional to the number of edges rather than `n²`.
///
/// # Errors
///
/// Returns [`NetError::InvalidGeneratorConfig`] if `p ∉ [0, 1]`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use rumor_net::generators::erdos_renyi;
///
/// # fn main() -> Result<(), rumor_net::NetError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let g = erdos_renyi(100, 0.05, &mut rng)?;
/// assert_eq!(g.node_count(), 100);
/// # Ok(())
/// # }
/// ```
pub fn erdos_renyi(n: usize, p: f64, rng: &mut impl Rng) -> Result<Graph> {
    if !(0.0..=1.0).contains(&p) {
        return Err(NetError::InvalidGeneratorConfig(format!(
            "edge probability must be in [0, 1], got {p}"
        )));
    }
    let mut edges: Vec<(usize, usize)> = Vec::new();
    if p > 0.0 && n > 1 {
        if p >= 1.0 {
            for u in 0..n {
                for v in (u + 1)..n {
                    edges.push((u, v));
                }
            }
        } else {
            // Walk the strictly-upper-triangular pairs with geometric skips.
            let lp = (1.0 - p).ln();
            let mut v: i64 = 1;
            let mut w: i64 = -1;
            while (v as usize) < n {
                let r: f64 = rng.gen_range(f64::EPSILON..1.0);
                w += 1 + (r.ln() / lp).floor() as i64;
                while w >= v && (v as usize) < n {
                    w -= v;
                    v += 1;
                }
                if (v as usize) < n {
                    edges.push((w as usize, v as usize));
                }
            }
        }
    }
    Graph::from_edges(n, &edges, EdgeKind::Undirected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn edge_count_near_expectation() {
        let mut rng = StdRng::seed_from_u64(42);
        let (n, p) = (2000, 0.01);
        let g = erdos_renyi(n, p, &mut rng).unwrap();
        let expect = p * (n * (n - 1) / 2) as f64;
        let got = g.edge_count() as f64;
        // Within 5 standard deviations of the binomial expectation.
        let sd = (expect * (1.0 - p)).sqrt();
        assert!((got - expect).abs() < 5.0 * sd, "{got} vs {expect}");
    }

    #[test]
    fn p_zero_and_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let g0 = erdos_renyi(10, 0.0, &mut rng).unwrap();
        assert_eq!(g0.edge_count(), 0);
        let g1 = erdos_renyi(10, 1.0, &mut rng).unwrap();
        assert_eq!(g1.edge_count(), 45);
        assert_eq!(g1.min_degree(), 9);
    }

    #[test]
    fn invalid_p_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(erdos_renyi(10, -0.1, &mut rng).is_err());
        assert!(erdos_renyi(10, 1.5, &mut rng).is_err());
    }

    #[test]
    fn no_self_loops() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = erdos_renyi(200, 0.05, &mut rng).unwrap();
        for u in 0..g.node_count() {
            assert!(!g.has_edge(u, u));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g1 = erdos_renyi(100, 0.1, &mut StdRng::seed_from_u64(5)).unwrap();
        let g2 = erdos_renyi(100, 0.1, &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn tiny_graphs() {
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(erdos_renyi(0, 0.5, &mut rng).unwrap().node_count(), 0);
        assert_eq!(erdos_renyi(1, 0.5, &mut rng).unwrap().edge_count(), 0);
    }
}
