//! Graph substrate for the rumor-propagation reproduction workspace.
//!
//! The paper evaluates its model on the Digg2009 friendship graph. The
//! mean-field ODE model consumes a network only through its *degree
//! structure* — the degree distribution `P(k)`, the mean degree `⟨k⟩`
//! and the set of distinct degree classes — while the agent-based
//! validator in `rumor-sim` walks actual edges. This crate provides both
//! views:
//!
//! * [`graph::Graph`] — a compact CSR (compressed sparse row) graph.
//! * [`generators`] — Erdős–Rényi, Barabási–Albert, and configuration-model
//!   generators plus bounded power-law degree-sequence sampling, all
//!   deterministic given a seed.
//! * [`degree`] — degree histograms, [`degree::DegreeClasses`] (the `n`
//!   groups of the paper's heterogeneous model), and distribution moments.
//! * [`metrics`] — connected components, clustering, assortativity.
//! * [`powerlaw`] — discrete MLE and log–log regression estimates of the
//!   power-law exponent.

// Deliberate idioms throughout this workspace:
// * `!(x > 0.0)` rejects NaN alongside non-positive values, which the
//   suggested `x <= 0.0` would silently accept;
// * index-based loops mirror the mathematical stencils of the numeric
//   kernels more directly than iterator chains.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod degree;
pub mod generators;
pub mod graph;
pub mod metrics;
pub mod powerlaw;

mod error;

pub use error::NetError;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, NetError>;
