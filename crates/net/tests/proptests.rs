//! Property-based tests of the graph substrate.

// Index-based loops mirror the per-class stencils (workspace idiom).
#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rumor_net::degree::DegreeClasses;
use rumor_net::generators::{
    barabasi_albert, configuration_model, erdos_renyi, powerlaw_degree_sequence,
    PowerlawSequenceConfig,
};
use rumor_net::graph::{EdgeKind, Graph};
use rumor_net::metrics::{connected_components, largest_component_size};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn graph_degree_sum_is_twice_edges_undirected(
        edges in proptest::collection::vec((0usize..20, 0usize..20), 0..60),
    ) {
        let g = Graph::from_edges(20, &edges, EdgeKind::Undirected).expect("graph");
        let degree_sum: usize = g.degrees().iter().sum();
        prop_assert_eq!(degree_sum, 2 * edges.len());
    }

    #[test]
    fn graph_degree_sum_equals_edges_directed(
        edges in proptest::collection::vec((0usize..20, 0usize..20), 0..60),
    ) {
        let g = Graph::from_edges(20, &edges, EdgeKind::Directed).expect("graph");
        let degree_sum: usize = g.degrees().iter().sum();
        prop_assert_eq!(degree_sum, edges.len());
    }

    #[test]
    fn simplified_graph_is_simple(
        edges in proptest::collection::vec((0usize..12, 0usize..12), 0..80),
    ) {
        let g = Graph::from_edges(12, &edges, EdgeKind::Undirected)
            .expect("graph")
            .simplified();
        for u in 0..g.node_count() {
            prop_assert!(!g.has_edge(u, u), "self loop at {u}");
            let nb = g.neighbors(u);
            for w in nb.windows(2) {
                prop_assert!(w[0] != w[1], "duplicate edge at {u}");
            }
            // Symmetry of the undirected representation.
            for &v in nb {
                prop_assert!(g.has_edge(v as usize, u));
            }
        }
    }

    #[test]
    fn degree_classes_probabilities_sum_to_one(
        degrees in proptest::collection::vec(0usize..50, 1..200),
    ) {
        prop_assume!(degrees.iter().any(|&d| d > 0));
        let c = DegreeClasses::from_degrees(&degrees).expect("classes");
        let total: f64 = c.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-12);
        // Mean equals first moment; degrees sorted ascending.
        prop_assert!((c.mean_degree() - c.moment(1.0)).abs() < 1e-12);
        prop_assert!(c.degrees().windows(2).all(|w| w[1] > w[0]));
        // Counts match the multiset.
        let nonzero = degrees.iter().filter(|&&d| d > 0).count();
        let counted: usize = (0..c.len()).map(|i| c.count(i)).sum();
        prop_assert_eq!(counted, nonzero);
    }

    #[test]
    fn moments_are_monotone_in_order_for_degrees_above_one(
        degrees in proptest::collection::vec(2usize..40, 2..100),
    ) {
        let c = DegreeClasses::from_degrees(&degrees).expect("classes");
        // With all degrees >= 2, higher moments dominate.
        prop_assert!(c.moment(2.0) >= c.moment(1.0));
        prop_assert!(c.moment(3.0) >= c.moment(2.0));
    }

    #[test]
    fn erdos_renyi_components_partition_nodes(n in 2usize..80, p in 0.0..0.3_f64, seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, p, &mut rng).expect("er");
        let comp = connected_components(&g);
        prop_assert_eq!(comp.len(), n);
        let n_comp = comp.iter().max().map_or(0, |m| m + 1);
        prop_assert!(largest_component_size(&g) <= n);
        prop_assert!(n_comp >= 1 && n_comp <= n);
        // Component ids are dense 0..n_comp.
        for c in 0..n_comp {
            prop_assert!(comp.contains(&c));
        }
    }

    #[test]
    fn barabasi_albert_structure(n in 5usize..120, m in 1usize..4, seed in 0u64..50) {
        prop_assume!(n > m + 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = barabasi_albert(n, m, &mut rng).expect("ba");
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(g.min_degree() >= m);
        prop_assert_eq!(largest_component_size(&g), n, "BA graphs are connected");
        let expect_edges = (m + 1) * m / 2 + m * (n - m - 1);
        prop_assert_eq!(g.edge_count(), expect_edges);
    }

    #[test]
    fn configuration_model_respects_degree_caps(
        seed in 0u64..50,
        n in 10usize..100,
        d in 1usize..6,
    ) {
        // A d-regular-ish request: realized degrees never exceed requests.
        let mut degrees = vec![d; n];
        if (n * d) % 2 == 1 {
            degrees[0] += 1;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let g = configuration_model(&degrees, &mut rng).expect("config model");
        for u in 0..n {
            prop_assert!(g.degree(u) <= degrees[u], "node {u} over-realized");
        }
    }

    #[test]
    fn powerlaw_sequence_within_bounds_and_even(
        seed in 0u64..50,
        gamma in 1.5..3.5_f64,
        k_max in 10usize..200,
    ) {
        let cfg = PowerlawSequenceConfig {
            n: 501, // odd, to exercise the even-sum fixup
            gamma,
            k_min: 1,
            k_max,
            force_even_sum: true,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let d = powerlaw_degree_sequence(&cfg, &mut rng).expect("sequence");
        prop_assert_eq!(d.len(), 501);
        prop_assert!(d.iter().all(|&k| k >= 1 && k <= k_max));
        prop_assert_eq!(d.iter().sum::<usize>() % 2, 0);
    }

    #[test]
    fn class_of_finds_every_degree(
        degrees in proptest::collection::vec(1usize..30, 1..60),
    ) {
        let c = DegreeClasses::from_degrees(&degrees).expect("classes");
        for &d in &degrees {
            let idx = c.class_of(d).expect("present");
            prop_assert_eq!(c.degree(idx), d);
        }
        prop_assert!(c.class_of(10_000).is_none());
    }
}
