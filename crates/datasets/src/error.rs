use std::fmt;

/// Errors produced by dataset generation and parsing.
#[derive(Debug)]
#[non_exhaustive]
pub enum DatasetError {
    /// The generator configuration was inconsistent.
    InvalidConfig(String),
    /// A line of an edge-list file could not be parsed.
    ParseError {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// An underlying graph-construction failure.
    Net(rumor_net::NetError),
    /// An underlying numerical failure (calibration root-finding).
    Numerics(rumor_numerics::NumericsError),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::InvalidConfig(msg) => write!(f, "invalid dataset configuration: {msg}"),
            DatasetError::ParseError { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            DatasetError::Io(e) => write!(f, "io error: {e}"),
            DatasetError::Net(e) => write!(f, "graph error: {e}"),
            DatasetError::Numerics(e) => write!(f, "numerics error: {e}"),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Io(e) => Some(e),
            DatasetError::Net(e) => Some(e),
            DatasetError::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        DatasetError::Io(e)
    }
}

impl From<rumor_net::NetError> for DatasetError {
    fn from(e: rumor_net::NetError) -> Self {
        DatasetError::Net(e)
    }
}

impl From<rumor_numerics::NumericsError> for DatasetError {
    fn from(e: rumor_numerics::NumericsError) -> Self {
        DatasetError::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::DatasetError;

    #[test]
    fn display_nonempty_and_sources_wired() {
        use std::error::Error;
        let e = DatasetError::Io(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_some());
        let p = DatasetError::ParseError {
            line: 3,
            message: "bad token".into(),
        };
        assert!(p.to_string().contains("line 3"));
        assert!(p.source().is_none());
    }

    #[test]
    fn conversions() {
        let _: DatasetError = rumor_net::NetError::EmptyGraph.into();
        let _: DatasetError = rumor_numerics::NumericsError::SingularMatrix.into();
    }
}
