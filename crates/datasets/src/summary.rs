//! Dataset summary statistics.

use rumor_net::degree::DegreeClasses;
use rumor_net::graph::Graph;
use std::fmt;

/// Headline statistics of a dataset, comparable against the published
/// Digg2009 numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Dataset name.
    pub name: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Number of arcs (degree-sequence sum; 2× undirected edge count).
    pub arcs: usize,
    /// Number of distinct degree classes (the paper's `n = 848`).
    pub degree_classes: usize,
    /// Minimum positive degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree `⟨k⟩`.
    pub mean_degree: f64,
}

impl DatasetSummary {
    /// Builds a summary from a realized graph.
    ///
    /// # Errors
    ///
    /// Propagates [`rumor_net::NetError`] if the graph is empty.
    pub fn from_graph(name: impl Into<String>, graph: &Graph) -> Result<Self, rumor_net::NetError> {
        let classes = DegreeClasses::from_graph(graph)?;
        Ok(DatasetSummary {
            name: name.into(),
            nodes: graph.node_count(),
            arcs: graph.degrees().iter().sum(),
            degree_classes: classes.len(),
            min_degree: classes.min_degree(),
            max_degree: classes.max_degree(),
            mean_degree: graph.mean_degree(),
        })
    }
}

impl fmt::Display for DatasetSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dataset: {}", self.name)?;
        writeln!(f, "  nodes:          {}", self.nodes)?;
        writeln!(f, "  arcs:           {}", self.arcs)?;
        writeln!(f, "  degree classes: {}", self.degree_classes)?;
        writeln!(
            f,
            "  degree range:   [{}, {}]",
            self.min_degree, self.max_degree
        )?;
        write!(f, "  mean degree:    {:.3}", self.mean_degree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_net::graph::{EdgeKind, Graph};

    #[test]
    fn from_graph_matches_structure() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], EdgeKind::Undirected).unwrap();
        let s = DatasetSummary::from_graph("path4", &g).unwrap();
        assert_eq!(s.nodes, 4);
        assert_eq!(s.arcs, 6);
        assert_eq!(s.degree_classes, 2);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.max_degree, 2);
        assert!((s.mean_degree - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_errors() {
        let g = Graph::from_edges(3, &[], EdgeKind::Undirected).unwrap();
        assert!(DatasetSummary::from_graph("empty", &g).is_err());
    }

    #[test]
    fn display_contains_all_fields() {
        let g = Graph::from_edges(2, &[(0, 1)], EdgeKind::Undirected).unwrap();
        let s = DatasetSummary::from_graph("pair", &g).unwrap();
        let text = s.to_string();
        for needle in ["pair", "nodes", "arcs", "degree classes", "mean degree"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
