//! Streaming edge-list ingest: O(file size) CSR construction.
//!
//! [`edgelist::read_edge_list`](crate::edgelist::read_edge_list) is fine
//! for test fixtures but allocates per line (`BufRead::lines`) and grows
//! a `Vec<(usize, usize)>` per edge before handing everything to
//! [`Graph::from_edges`] — at Digg scale (1.73 M links) that is three
//! full materializations of the edge set, and at 1M+ nodes it dominates
//! end-to-end time. This module builds the CSR directly:
//!
//! 1. **Pass 1 (degree histogram):** one sequential scan parses edges
//!    from a reused byte buffer (no per-line `String`), interns raw node
//!    ids to dense ids in first-appearance order (identical to the
//!    in-memory path), and counts per-node degrees.
//! 2. **Exact allocation:** offsets (`n + 1`) and targets (`Σ degrees`)
//!    are sized from the histogram — no growth, no reallocation.
//! 3. **Pass 2 (placement):** a second sequential scan drops each arc
//!    into its final CSR slot via a cursor array.
//!
//! Total work is two sequential scans of the file plus one exact-sized
//! allocation — O(file size), independent of edge multiplicity or id
//! sparsity. The result is **byte-identical** to the in-memory path
//! (`tests/streaming_identity.rs` pins `Graph` equality and degree-class
//! equality property-style), because both paths compact ids in
//! first-appearance order and normalize adjacency by sorting.
//!
//! For edge sources that are not files (e.g. deterministic synthetic
//! generators), [`StreamingCsrBuilder`] exposes the same two-phase
//! protocol directly: replay the edge stream once into
//! [`StreamingCsrBuilder::count`], call
//! [`StreamingCsrBuilder::start_placement`], replay it again into
//! [`StreamingCsrBuilder::place`], and [`StreamingCsrBuilder::finish`].

use crate::{DatasetError, Result};
use rumor_net::graph::{EdgeKind, Graph};
use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// Interns arbitrary `u64` node ids to dense `0..n` ids in
/// first-appearance order. Small ids (the overwhelmingly common case:
/// edge lists numbered from 0 or 1) go through a direct-mapped table;
/// larger ids fall back to a hash map.
struct IdInterner {
    /// Direct map for raw ids below [`IdInterner::DIRECT_LIMIT`];
    /// `u32::MAX` marks "unseen". Grows to the largest small id seen
    /// (amortized, per distinct node — never per edge).
    direct: Vec<u32>,
    /// Fallback for sparse ids at or above the direct limit.
    sparse: HashMap<u64, u32>,
    /// How many sparse slots are currently reserved ahead of use; the
    /// map is re-reserved in geometric slabs (seeded from the node
    /// count at first fallback) instead of rehashing per doubling.
    sparse_reserved: usize,
    next: u32,
}

impl IdInterner {
    /// Raw ids below this use the O(1) direct table (64 MiB worst case).
    const DIRECT_LIMIT: u64 = 1 << 24;

    fn new() -> Self {
        IdInterner {
            direct: Vec::new(),
            sparse: HashMap::new(),
            sparse_reserved: 0,
            next: 0,
        }
    }

    fn len(&self) -> usize {
        self.next as usize
    }

    /// Dense id for `raw`, assigning the next free id on first sight.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] past `u32::MAX` nodes
    /// (the CSR stores targets as `u32`).
    fn intern(&mut self, raw: u64) -> Result<u32> {
        let slot = if raw < Self::DIRECT_LIMIT {
            let idx = raw as usize;
            if idx >= self.direct.len() {
                self.direct.resize(idx + 1, u32::MAX);
            }
            if self.direct[idx] != u32::MAX {
                return Ok(self.direct[idx]);
            }
            None
        } else {
            if let Some(&id) = self.sparse.get(&raw) {
                return Ok(id);
            }
            Some(raw)
        };
        if self.next == u32::MAX {
            return Err(DatasetError::InvalidConfig(
                "edge list exceeds u32::MAX distinct nodes".into(),
            ));
        }
        let id = self.next;
        self.next += 1;
        match slot {
            None => self.direct[raw as usize] = id,
            Some(raw) => {
                if self.sparse.len() == self.sparse_reserved {
                    // The degree-histogram pass has already told us how
                    // many nodes exist so far: seed the fallback's
                    // capacity from that count (sparse tails are
                    // typically a fixed fraction of the id space) and
                    // grow it in geometric slabs, so a multi-million-id
                    // tail rehashes O(log n) times instead of at every
                    // HashMap doubling.
                    let slab = self.sparse_reserved.max(self.len() / 8).max(1024);
                    self.sparse.reserve(slab);
                    self.sparse_reserved += slab;
                }
                self.sparse.insert(raw, id);
            }
        }
        Ok(id)
    }

    /// Dense id for a `raw` id that pass 1 must already have seen.
    fn lookup(&self, raw: u64) -> Option<u32> {
        if raw < Self::DIRECT_LIMIT {
            self.direct
                .get(raw as usize)
                .copied()
                .filter(|&id| id != u32::MAX)
        } else {
            self.sparse.get(&raw).copied()
        }
    }
}

/// Throughput accounting for one streaming ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestStats {
    /// Bytes scanned per pass (the file size for path-based ingest).
    pub bytes: u64,
    /// Input edges parsed (each undirected edge counted once).
    pub edges: u64,
    /// Distinct nodes after id compaction.
    pub nodes: u64,
}

/// Two-phase streaming CSR builder: feed every edge once to [`count`],
/// then [`start_placement`], feed the same edges in the same order to
/// [`place`], and [`finish`].
///
/// [`count`]: StreamingCsrBuilder::count
/// [`start_placement`]: StreamingCsrBuilder::start_placement
/// [`place`]: StreamingCsrBuilder::place
/// [`finish`]: StreamingCsrBuilder::finish
///
/// # Example
///
/// ```
/// use rumor_datasets::streaming::StreamingCsrBuilder;
/// use rumor_net::graph::EdgeKind;
///
/// # fn main() -> Result<(), rumor_datasets::DatasetError> {
/// let edges = [(0u64, 1u64), (1, 2), (2, 0)];
/// let mut b = StreamingCsrBuilder::new(EdgeKind::Undirected);
/// for &(u, v) in &edges {
///     b.count(u, v)?;
/// }
/// b.start_placement();
/// for &(u, v) in &edges {
///     b.place(u, v)?;
/// }
/// let (graph, stats) = b.finish()?;
/// assert_eq!(graph.node_count(), 3);
/// assert_eq!(stats.edges, 3);
/// # Ok(())
/// # }
/// ```
pub struct StreamingCsrBuilder {
    kind: EdgeKind,
    interner: IdInterner,
    /// Per-node arc counts (pass 1), then placement cursors (pass 2).
    counts: Vec<u32>,
    offsets: Vec<usize>,
    targets: Vec<u32>,
    edges_pass1: u64,
    edges_pass2: u64,
    placing: bool,
}

impl StreamingCsrBuilder {
    /// A fresh builder in the counting phase.
    pub fn new(kind: EdgeKind) -> Self {
        StreamingCsrBuilder {
            kind,
            interner: IdInterner::new(),
            counts: Vec::new(),
            offsets: Vec::new(),
            targets: Vec::new(),
            edges_pass1: 0,
            edges_pass2: 0,
            placing: false,
        }
    }

    /// Pass-1 observation of one edge: interns both endpoints and bumps
    /// the degree histogram. No per-edge allocation (the per-*node*
    /// tables grow amortized on first sight of each node).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] when called after
    /// [`StreamingCsrBuilder::start_placement`] or past `u32::MAX` nodes.
    pub fn count(&mut self, u_raw: u64, v_raw: u64) -> Result<()> {
        if self.placing {
            return Err(DatasetError::InvalidConfig(
                "count() called after start_placement()".into(),
            ));
        }
        let u = self.interner.intern(u_raw)? as usize;
        let v = self.interner.intern(v_raw)? as usize;
        let needed = self.interner.len();
        if needed > self.counts.len() {
            self.counts.resize(needed, 0);
        }
        self.counts[u] += 1;
        if self.kind == EdgeKind::Undirected {
            self.counts[v] += 1;
        }
        self.edges_pass1 += 1;
        Ok(())
    }

    /// Seals the histogram: allocates offsets and targets exactly once,
    /// exactly sized, and turns `counts` into placement cursors.
    pub fn start_placement(&mut self) {
        if self.placing {
            return;
        }
        self.placing = true;
        let n = self.interner.len();
        self.counts.resize(n, 0);
        self.offsets = Vec::with_capacity(n + 1);
        self.offsets.push(0);
        let mut total = 0usize;
        for (node, &c) in self.counts.iter().enumerate() {
            total += c as usize;
            self.offsets.push(total);
            // Reuse counts as the pass-2 cursor array (start offsets).
            let _ = node;
        }
        self.targets = vec![0u32; total];
        // counts[i] becomes the write cursor for node i.
        for (i, c) in self.counts.iter_mut().enumerate() {
            *c = self.offsets[i] as u32;
        }
    }

    /// Pass-2 placement of one edge into its final CSR slot(s). The edge
    /// stream must be replayed in the same order as pass 1.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if placement was not
    /// started, an id was never counted, or more edges are placed than
    /// were counted (a non-deterministic replay).
    pub fn place(&mut self, u_raw: u64, v_raw: u64) -> Result<()> {
        if !self.placing {
            return Err(DatasetError::InvalidConfig(
                "place() called before start_placement()".into(),
            ));
        }
        if self.edges_pass2 == self.edges_pass1 {
            return Err(DatasetError::InvalidConfig(
                "more edges placed than counted (replay is not deterministic)".into(),
            ));
        }
        let missing = |raw: u64| {
            DatasetError::InvalidConfig(format!(
                "node id {raw} appeared in pass 2 but not in pass 1"
            ))
        };
        let u = self.interner.lookup(u_raw).ok_or_else(|| missing(u_raw))? as usize;
        let v = self.interner.lookup(v_raw).ok_or_else(|| missing(v_raw))?;
        self.targets[self.counts[u] as usize] = v;
        self.counts[u] += 1;
        if self.kind == EdgeKind::Undirected {
            let vu = v as usize;
            self.targets[self.counts[vu] as usize] = u as u32;
            self.counts[vu] += 1;
        }
        self.edges_pass2 += 1;
        Ok(())
    }

    /// Finalizes the CSR into a [`Graph`] (adjacency sorted, identical
    /// to the [`Graph::from_edges`] layout) plus ingest statistics.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if the two passes saw
    /// different edge counts, and propagates CSR validation failures.
    pub fn finish(mut self) -> Result<(Graph, IngestStats)> {
        self.start_placement(); // no-op unless the edge stream was empty
        if self.edges_pass2 != self.edges_pass1 {
            return Err(DatasetError::InvalidConfig(format!(
                "pass 1 counted {} edges but pass 2 placed {}",
                self.edges_pass1, self.edges_pass2
            )));
        }
        let stats = IngestStats {
            bytes: 0,
            edges: self.edges_pass1,
            nodes: self.interner.len() as u64,
        };
        let graph = Graph::from_csr_parts(
            self.offsets,
            self.targets,
            self.kind,
            self.edges_pass1 as usize,
        )?;
        Ok((graph, stats))
    }
}

/// Parses one edge-list line (shared by both passes): `Ok(None)` for
/// comments/blank lines, `Ok(Some((u, v)))` for an edge.
///
/// Accepts the same grammar as the in-memory reader: two ids separated
/// by whitespace and/or commas, `#` comments, and a trailing `\r`.
fn parse_line(line: &[u8], lineno: usize) -> Result<Option<(u64, u64)>> {
    let is_sep =
        |b: u8| b == b' ' || b == b'\t' || b == b',' || b == b'\r' || b == 0x0b || b == 0x0c;
    let mut i = 0;
    let n = line.len();
    while i < n && is_sep(line[i]) {
        i += 1;
    }
    if i == n || line[i] == b'#' {
        return Ok(None);
    }
    let parse_id = |i: &mut usize| -> Result<u64> {
        let start = *i;
        let mut value: u64 = 0;
        while *i < n && !is_sep(line[*i]) {
            let d = line[*i];
            if !d.is_ascii_digit() {
                return Err(DatasetError::ParseError {
                    line: lineno,
                    message: format!(
                        "invalid node id {:?}",
                        String::from_utf8_lossy(trim_token(&line[start..]))
                    ),
                });
            }
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add((d - b'0') as u64))
                .ok_or_else(|| DatasetError::ParseError {
                    line: lineno,
                    message: "node id overflows u64".into(),
                })?;
            *i += 1;
        }
        if *i == start {
            return Err(DatasetError::ParseError {
                line: lineno,
                message: "expected two node ids".into(),
            });
        }
        Ok(value)
    };
    let u = parse_id(&mut i)?;
    while i < n && is_sep(line[i]) {
        i += 1;
    }
    if i == n {
        return Err(DatasetError::ParseError {
            line: lineno,
            message: "expected two node ids".into(),
        });
    }
    let v = parse_id(&mut i)?;
    while i < n && is_sep(line[i]) {
        i += 1;
    }
    if i != n {
        return Err(DatasetError::ParseError {
            line: lineno,
            message: "expected exactly two node ids".into(),
        });
    }
    Ok(Some((u, v)))
}

/// The leading non-separator run of `token`, for error messages.
fn trim_token(token: &[u8]) -> &[u8] {
    let end = token
        .iter()
        .position(|&b| b == b' ' || b == b'\t' || b == b',' || b == b'\r')
        .unwrap_or(token.len());
    &token[..end]
}

/// One sequential scan of `reader`, feeding parsed edges to `sink`.
/// Lines are read into a reused buffer — no per-line `String`.
fn scan<R: BufRead>(mut reader: R, mut sink: impl FnMut(u64, u64) -> Result<()>) -> Result<u64> {
    let mut buf = Vec::with_capacity(256);
    let mut bytes = 0u64;
    let mut lineno = 0usize;
    loop {
        buf.clear();
        let read = reader.read_until(b'\n', &mut buf)?;
        if read == 0 {
            return Ok(bytes);
        }
        bytes += read as u64;
        lineno += 1;
        let line = if buf.last() == Some(&b'\n') {
            &buf[..buf.len() - 1]
        } else {
            &buf[..]
        };
        if let Some((u, v)) = parse_line(line, lineno)? {
            sink(u, v)?;
        }
    }
}

/// Streaming edge-list load from a path: two sequential scans of the
/// file, exact-sized CSR allocation, no per-edge or per-line heap
/// growth. The resulting [`Graph`] is byte-identical to
/// [`crate::edgelist::read_edge_list`] on the same bytes.
///
/// # Errors
///
/// * [`DatasetError::Io`] for open/read failures.
/// * [`DatasetError::ParseError`] for malformed lines (with 1-based line
///   numbers).
/// * [`DatasetError::Net`] if CSR validation fails.
pub fn load_edge_list_path<P: AsRef<Path>>(
    path: P,
    kind: EdgeKind,
) -> Result<(Graph, IngestStats)> {
    let path = path.as_ref();
    let mut builder = StreamingCsrBuilder::new(kind);
    let pass1 = BufReader::with_capacity(1 << 20, std::fs::File::open(path)?);
    let bytes = scan(pass1, |u, v| builder.count(u, v))?;
    builder.start_placement();
    let pass2 = BufReader::with_capacity(1 << 20, std::fs::File::open(path)?);
    scan(pass2, |u, v| builder.place(u, v))?;
    let (graph, mut stats) = builder.finish()?;
    stats.bytes = bytes;
    Ok((graph, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::read_edge_list;

    fn write_temp(contents: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "rumor_streaming_test_{}_{contents_len}.txt",
            std::process::id(),
            contents_len = contents.len()
        ));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn streaming_matches_in_memory_on_basic_file() {
        let data = "# comment\n0 1\n1 2\n\n2 0\n";
        let path = write_temp(data);
        for kind in [EdgeKind::Undirected, EdgeKind::Directed] {
            let (g, stats) = load_edge_list_path(&path, kind).unwrap();
            let reference = read_edge_list(data.as_bytes(), kind).unwrap();
            assert_eq!(g, reference);
            assert_eq!(stats.edges, 3);
            assert_eq!(stats.nodes, 3);
            assert_eq!(stats.bytes, data.len() as u64);
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn streaming_compacts_sparse_and_large_ids() {
        // 40_000_000 is above the interner's direct-map limit.
        let data = "100 900\n900 7\n40000000 100\n";
        let path = write_temp(data);
        let (g, stats) = load_edge_list_path(&path, EdgeKind::Directed).unwrap();
        let reference = read_edge_list(data.as_bytes(), EdgeKind::Directed).unwrap();
        assert_eq!(g, reference);
        assert_eq!(stats.nodes, 4);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn streaming_accepts_commas_and_mixed_whitespace() {
        let data = "0,1\n1\t2\n 2  3 \n";
        let path = write_temp(data);
        let (g, _) = load_edge_list_path(&path, EdgeKind::Undirected).unwrap();
        assert_eq!(
            g,
            read_edge_list(data.as_bytes(), EdgeKind::Undirected).unwrap()
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn streaming_reports_malformed_lines() {
        for (data, bad_line) in [
            ("0 1\nnot numbers\n", 2),
            ("0\n", 1),
            ("0 1 2\n", 1),
            ("0 -1\n", 1),
        ] {
            let path = write_temp(data);
            match load_edge_list_path(&path, EdgeKind::Undirected).unwrap_err() {
                DatasetError::ParseError { line, .. } => assert_eq!(line, bad_line, "{data:?}"),
                other => panic!("unexpected error {other:?} for {data:?}"),
            }
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn empty_file_gives_empty_graph() {
        let path = write_temp("");
        let (g, stats) = load_edge_list_path(&path, EdgeKind::Undirected).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(stats.edges, 0);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn builder_protocol_misuse_is_rejected() {
        let mut b = StreamingCsrBuilder::new(EdgeKind::Directed);
        assert!(b.place(0, 1).is_err(), "place before start_placement");
        b.count(0, 1).unwrap();
        b.start_placement();
        assert!(b.count(1, 2).is_err(), "count after start_placement");
        b.place(0, 1).unwrap();
        assert!(b.place(0, 1).is_err(), "more placed than counted");

        let mut b = StreamingCsrBuilder::new(EdgeKind::Directed);
        b.count(0, 1).unwrap();
        b.start_placement();
        assert!(b.place(5, 1).is_err(), "unseen id in pass 2");

        let mut b = StreamingCsrBuilder::new(EdgeKind::Directed);
        b.count(0, 1).unwrap();
        b.count(1, 2).unwrap();
        b.start_placement();
        b.place(0, 1).unwrap();
        assert!(b.finish().is_err(), "fewer placed than counted");
    }

    #[test]
    fn self_loops_and_duplicates_match_in_memory() {
        let data = "0 0\n0 1\n0 1\n1 0\n";
        let path = write_temp(data);
        for kind in [EdgeKind::Undirected, EdgeKind::Directed] {
            let (g, _) = load_edge_list_path(&path, kind).unwrap();
            assert_eq!(g, read_edge_list(data.as_bytes(), kind).unwrap());
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn crlf_line_endings_are_accepted() {
        let data = "0 1\r\n1 2\r\n";
        let path = write_temp(data);
        let (g, _) = load_edge_list_path(&path, EdgeKind::Undirected).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        let _ = std::fs::remove_file(path);
    }
}
