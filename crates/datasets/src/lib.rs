//! Dataset substrate for the rumor-propagation reproduction workspace.
//!
//! The paper evaluates on the **Digg2009** dataset (71,367 voters,
//! 1,731,658 friendship links, 848 distinct degree classes, degrees in
//! `[1, 995]`, mean degree ≈ 24). The original download link is dead and
//! the data is not redistributable, so this crate provides:
//!
//! * [`digg`] — a deterministic synthetic generator calibrated to the
//!   published statistics. The mean-field model consumes a network only
//!   through its degree histogram, so matching `n`, `k_min`, `k_max`,
//!   `⟨k⟩` and the class count preserves everything the experiments
//!   depend on (see DESIGN.md §2 for the substitution argument).
//! * [`edgelist`] — plain edge-list reading/writing, so the *real*
//!   Digg2009 file can be dropped in without code changes.
//! * [`streaming`] — two-pass streaming ingest building the CSR in
//!   O(file size) with exact-sized allocations; byte-identical result to
//!   [`edgelist`] and fast enough for million-node synthetic graphs.
//! * [`summary`] — dataset statistics used by the experiment harness to
//!   print Table I.

// Deliberate idioms throughout this workspace:
// * `!(x > 0.0)` rejects NaN alongside non-positive values, which the
//   suggested `x <= 0.0` would silently accept;
// * index-based loops mirror the mathematical stencils of the numeric
//   kernels more directly than iterator chains.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod digg;
pub mod edgelist;
pub mod streaming;
pub mod summary;

mod error;

pub use error::DatasetError;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, DatasetError>;
