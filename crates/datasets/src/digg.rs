//! A Digg2009-equivalent synthetic social network.
//!
//! Published statistics of the real dataset (paper, Section V):
//!
//! | statistic          | value      |
//! |--------------------|------------|
//! | voters (nodes)     | 71,367     |
//! | friendship links   | 1,731,658  |
//! | degree classes     | 848        |
//! | minimum degree     | 1          |
//! | maximum degree     | 995        |
//! | mean degree `⟨k⟩`  | ≈ 24       |
//!
//! The generator samples a bounded discrete power-law degree sequence
//! whose exponent is *calibrated by root-finding* so that the analytic
//! mean degree matches the target, then exposes the degree classes the
//! mean-field model needs. An actual simple graph (for the agent-based
//! validator) can be realized on demand with the configuration model.

use crate::summary::DatasetSummary;
use crate::{DatasetError, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rumor_net::degree::DegreeClasses;
use rumor_net::generators::{
    configuration_model, powerlaw_degree_sequence, PowerlawSequenceConfig,
};
use rumor_net::graph::Graph;
use rumor_numerics::roots::{brent, RootConfig};

/// Configuration of the synthetic Digg-like network.
#[derive(Debug, Clone, PartialEq)]
pub struct DiggConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Minimum degree.
    pub k_min: usize,
    /// Maximum degree.
    pub k_max: usize,
    /// Target mean degree the exponent is calibrated against.
    pub target_mean_degree: f64,
    /// RNG seed (the dataset is fully deterministic given the config).
    pub seed: u64,
}

impl Default for DiggConfig {
    /// The full-scale Digg2009-equivalent configuration.
    ///
    /// The seed is chosen so the sampled sequence reproduces the
    /// published **848 distinct degree classes** exactly (alongside the
    /// configured node count and degree span); nearby seeds give
    /// 844–884 classes, so the class count — which sets the ODE system
    /// size everywhere — would otherwise drift from the paper's.
    fn default() -> Self {
        DiggConfig {
            nodes: 71_367,
            k_min: 1,
            k_max: 995,
            target_mean_degree: 24.0,
            seed: 0x2009_D195,
        }
    }
}

impl DiggConfig {
    /// A reduced-scale configuration (~7k nodes, same degree span scaled
    /// down) for fast tests and examples.
    pub fn small() -> Self {
        DiggConfig {
            nodes: 7_000,
            k_min: 1,
            k_max: 300,
            target_mean_degree: 24.0,
            seed: 0x2009_D166,
        }
    }
}

/// The synthesized dataset: a degree sequence plus its class partition.
#[derive(Debug, Clone, PartialEq)]
pub struct DiggDataset {
    config: DiggConfig,
    gamma: f64,
    degrees: Vec<usize>,
    classes: DegreeClasses,
}

impl DiggDataset {
    /// Synthesizes the dataset from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] for impossible parameters
    /// and propagates calibration/sampling failures.
    pub fn synthesize(config: DiggConfig) -> Result<Self> {
        if config.nodes == 0 {
            return Err(DatasetError::InvalidConfig("nodes must be positive".into()));
        }
        if config.k_min == 0 || config.k_max < config.k_min {
            return Err(DatasetError::InvalidConfig(format!(
                "invalid degree bounds [{}, {}]",
                config.k_min, config.k_max
            )));
        }
        let lo = analytic_mean_degree(1.05, config.k_min, config.k_max);
        let hi = analytic_mean_degree(6.0, config.k_min, config.k_max);
        if !(hi..=lo).contains(&config.target_mean_degree) {
            return Err(DatasetError::InvalidConfig(format!(
                "target mean degree {} outside achievable range [{hi:.3}, {lo:.3}]",
                config.target_mean_degree
            )));
        }
        let gamma = calibrate_gamma(config.target_mean_degree, config.k_min, config.k_max)?;
        let seq_cfg = PowerlawSequenceConfig {
            n: config.nodes,
            gamma,
            k_min: config.k_min,
            k_max: config.k_max,
            force_even_sum: true,
        };
        let mut rng = StdRng::seed_from_u64(config.seed);
        let degrees = powerlaw_degree_sequence(&seq_cfg, &mut rng)?;
        let classes = DegreeClasses::from_degrees(&degrees)?;
        Ok(DiggDataset {
            config,
            gamma,
            degrees,
            classes,
        })
    }

    /// The configuration the dataset was generated from.
    pub fn config(&self) -> &DiggConfig {
        &self.config
    }

    /// The calibrated power-law exponent.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The sampled degree sequence (one entry per node).
    pub fn degrees(&self) -> &[usize] {
        &self.degrees
    }

    /// The degree-class partition consumed by the mean-field model.
    pub fn classes(&self) -> &DegreeClasses {
        &self.classes
    }

    /// Realizes the degree sequence as a simple graph with the (erased)
    /// configuration model. Expensive at full scale (~1.7 M arcs); the
    /// agent-based simulator is the only consumer.
    ///
    /// # Errors
    ///
    /// Propagates configuration-model failures.
    pub fn realize_graph(&self) -> Result<Graph> {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x9E37_79B9_7F4A_7C15);
        Ok(configuration_model(&self.degrees, &mut rng)?)
    }

    /// Summary statistics, printable as the harness's Table I companion.
    pub fn summary(&self) -> DatasetSummary {
        let arcs: usize = self.degrees.iter().sum();
        DatasetSummary {
            name: "digg2009-synthetic".into(),
            nodes: self.config.nodes,
            arcs,
            degree_classes: self.classes.len(),
            min_degree: self.classes.min_degree(),
            max_degree: self.classes.max_degree(),
            mean_degree: self.classes.mean_degree(),
        }
    }
}

/// Analytic mean degree of the bounded discrete power law
/// `P(k) ∝ k^{-γ}` on `[k_min, k_max]`.
pub fn analytic_mean_degree(gamma: f64, k_min: usize, k_max: usize) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for k in k_min..=k_max {
        let w = (k as f64).powf(-gamma);
        num += k as f64 * w;
        den += w;
    }
    num / den
}

/// Calibrates the exponent `γ` so the analytic mean degree of the bounded
/// power law matches `target` — the single-scalar solve described in
/// DESIGN.md.
///
/// # Errors
///
/// Returns [`DatasetError::Numerics`] if the root search fails (the mean
/// is strictly decreasing in `γ`, so a bracketed target always succeeds).
pub fn calibrate_gamma(target: f64, k_min: usize, k_max: usize) -> Result<f64> {
    let root = brent(
        |g| analytic_mean_degree(g, k_min, k_max) - target,
        1.05,
        6.0,
        &RootConfig {
            x_tol: 1e-10,
            f_tol: 1e-9,
            max_iter: 200,
        },
    )?;
    Ok(root.x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_mean_monotone_in_gamma() {
        let m1 = analytic_mean_degree(1.5, 1, 995);
        let m2 = analytic_mean_degree(2.0, 1, 995);
        let m3 = analytic_mean_degree(3.0, 1, 995);
        assert!(m1 > m2 && m2 > m3);
    }

    #[test]
    fn calibration_hits_target() {
        let gamma = calibrate_gamma(24.0, 1, 995).unwrap();
        let mean = analytic_mean_degree(gamma, 1, 995);
        assert!((mean - 24.0).abs() < 1e-6, "mean {mean} at gamma {gamma}");
        // For these bounds the exponent lands near 1.5.
        assert!(gamma > 1.3 && gamma < 1.8, "gamma {gamma}");
    }

    #[test]
    fn small_dataset_statistics() {
        let ds = DiggDataset::synthesize(DiggConfig::small()).unwrap();
        let s = ds.summary();
        assert_eq!(s.nodes, 7_000);
        assert!(s.min_degree >= 1);
        assert!(s.max_degree <= 300);
        // Sampled mean within 15% of target at this scale.
        assert!(
            (s.mean_degree - 24.0).abs() < 3.6,
            "mean degree {}",
            s.mean_degree
        );
        assert!(s.degree_classes > 50);
    }

    #[test]
    fn full_scale_matches_published_statistics() {
        let ds = DiggDataset::synthesize(DiggConfig::default()).unwrap();
        let s = ds.summary();
        assert_eq!(s.nodes, 71_367);
        assert_eq!(s.min_degree, 1);
        // Published: 1,731,658 arcs, 848 classes, kmax 995, ⟨k⟩ ≈ 24.
        assert!(s.max_degree <= 995);
        assert!(s.max_degree > 700, "max degree {}", s.max_degree);
        assert!(
            (s.mean_degree - 24.0).abs() < 1.5,
            "mean degree {}",
            s.mean_degree
        );
        assert!(
            (s.arcs as f64 - 1_731_658.0).abs() / 1_731_658.0 < 0.10,
            "arcs {}",
            s.arcs
        );
        assert!(
            (600..=995).contains(&s.degree_classes),
            "degree classes {}",
            s.degree_classes
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = DiggDataset::synthesize(DiggConfig::small()).unwrap();
        let b = DiggDataset::synthesize(DiggConfig::small()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = DiggDataset::synthesize(DiggConfig::small()).unwrap();
        let b = DiggDataset::synthesize(DiggConfig {
            seed: 123,
            ..DiggConfig::small()
        })
        .unwrap();
        assert_ne!(a.degrees(), b.degrees());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(DiggDataset::synthesize(DiggConfig {
            nodes: 0,
            ..DiggConfig::small()
        })
        .is_err());
        assert!(DiggDataset::synthesize(DiggConfig {
            k_min: 0,
            ..DiggConfig::small()
        })
        .is_err());
        assert!(DiggDataset::synthesize(DiggConfig {
            k_min: 10,
            k_max: 5,
            ..DiggConfig::small()
        })
        .is_err());
        // Unachievable mean degree.
        assert!(DiggDataset::synthesize(DiggConfig {
            target_mean_degree: 900.0,
            ..DiggConfig::small()
        })
        .is_err());
    }

    #[test]
    fn realized_graph_has_expected_shape() {
        let ds = DiggDataset::synthesize(DiggConfig {
            nodes: 2000,
            k_max: 100,
            target_mean_degree: 12.0,
            ..DiggConfig::small()
        })
        .unwrap();
        let g = ds.realize_graph().unwrap();
        assert_eq!(g.node_count(), 2000);
        // Erased configuration model: mean degree within 10% of the sequence.
        let seq_mean = ds.summary().mean_degree;
        assert!((g.mean_degree() - seq_mean).abs() / seq_mean < 0.1);
    }

    #[test]
    fn classes_match_degree_sequence() {
        let ds = DiggDataset::synthesize(DiggConfig::small()).unwrap();
        let total: usize = (0..ds.classes().len()).map(|i| ds.classes().count(i)).sum();
        let nonzero = ds.degrees().iter().filter(|&&d| d > 0).count();
        assert_eq!(total, nonzero);
    }
}
