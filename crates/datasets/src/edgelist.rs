//! Plain edge-list parsing and writing.
//!
//! The format is one edge per line, two whitespace- (or comma-)
//! separated node ids, `#`-prefixed comment lines ignored. This matches
//! the distribution format of the real Digg2009 friendship file, so a
//! downloaded copy can be loaded directly:
//!
//! ```text
//! # follower followee
//! 0 1
//! 0 2
//! 17 3
//! ```

use crate::{DatasetError, Result};
use rumor_net::graph::{EdgeKind, Graph};
use std::io::{BufRead, BufReader, Read, Write};

/// Parses an edge list from a reader.
///
/// Node ids may be arbitrary non-negative integers; they are compacted to
/// dense ids `0..n` in first-appearance order. Pass `&mut reader` if you
/// need the reader afterwards.
///
/// # Errors
///
/// * [`DatasetError::ParseError`] for malformed lines.
/// * [`DatasetError::Io`] for read failures.
/// * [`DatasetError::Net`] if graph construction fails.
pub fn read_edge_list<R: Read>(reader: R, kind: EdgeKind) -> Result<Graph> {
    let buf = BufReader::new(reader);
    let mut id_map: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let intern = |raw: u64, map: &mut std::collections::HashMap<u64, usize>| -> usize {
        let next = map.len();
        *map.entry(raw).or_insert(next)
    };
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed
            .split(|c: char| c.is_whitespace() || c == ',')
            .filter(|s| !s.is_empty());
        let parse = |tok: Option<&str>, lineno: usize| -> Result<u64> {
            let tok = tok.ok_or_else(|| DatasetError::ParseError {
                line: lineno + 1,
                message: "expected two node ids".into(),
            })?;
            tok.parse::<u64>().map_err(|e| DatasetError::ParseError {
                line: lineno + 1,
                message: format!("invalid node id {tok:?}: {e}"),
            })
        };
        let u = parse(parts.next(), lineno)?;
        let v = parse(parts.next(), lineno)?;
        if parts.next().is_some() {
            return Err(DatasetError::ParseError {
                line: lineno + 1,
                message: "expected exactly two node ids".into(),
            });
        }
        let ui = intern(u, &mut id_map);
        let vi = intern(v, &mut id_map);
        edges.push((ui, vi));
    }
    Ok(Graph::from_edges(id_map.len(), &edges, kind)?)
}

/// Writes a graph as an edge list (one `u v` line per stored input edge;
/// undirected edges are written once in the `u <= v` orientation).
///
/// # Errors
///
/// Returns [`DatasetError::Io`] on write failures.
pub fn write_edge_list<W: Write>(graph: &Graph, mut writer: W) -> Result<()> {
    writeln!(writer, "# nodes: {}", graph.node_count())?;
    match graph.kind() {
        EdgeKind::Directed => {
            for (u, v) in graph.iter_arcs() {
                writeln!(writer, "{u} {v}")?;
            }
        }
        EdgeKind::Undirected => {
            for (u, v) in graph.iter_arcs() {
                if u <= v {
                    writeln!(writer, "{u} {v}")?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_file() {
        let data = "# comment\n0 1\n1 2\n\n2 0\n";
        let g = read_edge_list(data.as_bytes(), EdgeKind::Undirected).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn compacts_sparse_ids() {
        let data = "100 900\n900 7\n";
        let g = read_edge_list(data.as_bytes(), EdgeKind::Directed).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn accepts_commas_and_mixed_whitespace() {
        let data = "0,1\n1\t2\n 2  3 \n";
        let g = read_edge_list(data.as_bytes(), EdgeKind::Undirected).unwrap();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn malformed_lines_reported_with_line_numbers() {
        let data = "0 1\nnot numbers\n";
        let err = read_edge_list(data.as_bytes(), EdgeKind::Undirected).unwrap_err();
        match err {
            DatasetError::ParseError { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        let data = "0\n";
        assert!(matches!(
            read_edge_list(data.as_bytes(), EdgeKind::Undirected),
            Err(DatasetError::ParseError { line: 1, .. })
        ));
        let data = "0 1 2\n";
        assert!(matches!(
            read_edge_list(data.as_bytes(), EdgeKind::Undirected),
            Err(DatasetError::ParseError { line: 1, .. })
        ));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list("".as_bytes(), EdgeKind::Undirected).unwrap();
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn roundtrip_undirected() {
        let data = "0 1\n1 2\n2 3\n";
        let g = read_edge_list(data.as_bytes(), EdgeKind::Undirected).unwrap();
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let g2 = read_edge_list(out.as_slice(), EdgeKind::Undirected).unwrap();
        assert_eq!(g.node_count(), g2.node_count());
        assert_eq!(g.edge_count(), g2.edge_count());
        for u in 0..g.node_count() {
            assert_eq!(g.neighbors(u), g2.neighbors(u));
        }
    }

    #[test]
    fn roundtrip_directed() {
        let data = "0 1\n2 1\n";
        let g = read_edge_list(data.as_bytes(), EdgeKind::Directed).unwrap();
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let g2 = read_edge_list(out.as_slice(), EdgeKind::Directed).unwrap();
        assert_eq!(g2.edge_count(), 2);
        assert!(g2.has_edge(0, 1));
        assert!(!g2.has_edge(1, 0));
    }
}
