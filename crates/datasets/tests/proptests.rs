//! Property-based tests of dataset synthesis and edge-list I/O.

use proptest::prelude::*;
use rumor_datasets::digg::{analytic_mean_degree, calibrate_gamma, DiggConfig, DiggDataset};
use rumor_datasets::edgelist::{read_edge_list, write_edge_list};
use rumor_datasets::streaming::load_edge_list_path;
use rumor_net::graph::{EdgeKind, Graph};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Renders random edges as edge-list text with varied (but valid)
/// formatting: separator choice, optional comment and blank lines.
fn render_edge_list(edges: &[(u64, u64)], style: u64) -> String {
    let mut text = String::new();
    if style.is_multiple_of(3) {
        text.push_str("# generated fixture\n");
    }
    for (i, &(u, v)) in edges.iter().enumerate() {
        let sep = match (style as usize + i) % 4 {
            0 => " ",
            1 => "\t",
            2 => ",",
            _ => " , ",
        };
        text.push_str(&format!("{u}{sep}{v}\n"));
        if (style as usize + i).is_multiple_of(7) {
            text.push('\n');
        }
    }
    text
}

/// Writes `contents` to a unique temp file, runs `f`, removes the file.
fn with_temp_file<T>(contents: &str, f: impl FnOnce(&std::path::Path) -> T) -> T {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let path = std::env::temp_dir().join(format!(
        "rumor_dataset_prop_{}_{}.txt",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, contents).unwrap();
    let out = f(&path);
    let _ = std::fs::remove_file(&path);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn calibration_hits_any_achievable_mean(target in 2.0..40.0_f64) {
        let (k_min, k_max) = (1, 500);
        let gamma = calibrate_gamma(target, k_min, k_max).unwrap();
        prop_assert!(gamma > 1.0 && gamma < 6.0);
        let mean = analytic_mean_degree(gamma, k_min, k_max);
        prop_assert!((mean - target).abs() < 1e-6, "mean {mean} vs target {target}");
    }

    #[test]
    fn analytic_mean_is_monotone_decreasing_in_gamma(
        g1 in 1.1..3.0_f64,
        delta in 0.05..2.0_f64,
    ) {
        let m1 = analytic_mean_degree(g1, 1, 300);
        let m2 = analytic_mean_degree(g1 + delta, 1, 300);
        prop_assert!(m2 < m1);
    }

    #[test]
    fn synthesized_dataset_respects_bounds(seed in 0u64..500) {
        let ds = DiggDataset::synthesize(DiggConfig {
            nodes: 800,
            k_min: 1,
            k_max: 120,
            target_mean_degree: 12.0,
            seed,
        })
        .unwrap();
        let s = ds.summary();
        prop_assert_eq!(s.nodes, 800);
        prop_assert!(s.min_degree >= 1);
        prop_assert!(s.max_degree <= 120);
        // Sampled mean within 25% of target at this small scale.
        prop_assert!((s.mean_degree - 12.0).abs() < 3.0, "mean {}", s.mean_degree);
        // Degree-sum is even (configuration-model realizability).
        prop_assert_eq!(s.arcs % 2, 0);
    }

    #[test]
    fn edge_list_roundtrip_arbitrary_graphs(
        edges in proptest::collection::vec((0usize..30, 0usize..30), 1..80),
    ) {
        // Drop self-loops (the writer emits each undirected edge once in
        // canonical orientation; a self-loop would be read back once and
        // counted differently).
        let edges: Vec<(usize, usize)> = edges.into_iter().filter(|(u, v)| u != v).collect();
        prop_assume!(!edges.is_empty());
        let g = Graph::from_edges(30, &edges, EdgeKind::Undirected).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice(), EdgeKind::Undirected).unwrap();
        // Node ids are compacted on read, so compare degree multisets.
        let mut d1: Vec<usize> = g.degrees().into_iter().filter(|&d| d > 0).collect();
        let mut d2: Vec<usize> = back.degrees().into_iter().filter(|&d| d > 0).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(g.edge_count(), back.edge_count());
    }

    #[test]
    fn streaming_ingest_is_identical_to_in_memory_reader(
        edges in proptest::collection::vec((0u64..400, 0u64..400), 0..120),
        style in 0u64..24,
        directed in 0u64..2,
    ) {
        let kind = if directed == 1 { EdgeKind::Directed } else { EdgeKind::Undirected };
        let text = render_edge_list(&edges, style);
        let reference = read_edge_list(text.as_bytes(), kind).unwrap();
        let (streamed, stats) = with_temp_file(&text, |p| load_edge_list_path(p, kind)).unwrap();
        // Full structural identity: same offsets, targets, kind, edge
        // count (Graph equality is CSR equality) — and, consequently,
        // identical degree histograms.
        prop_assert_eq!(&streamed, &reference);
        prop_assert_eq!(streamed.degrees(), reference.degrees());
        prop_assert_eq!(stats.edges as usize, edges.len());
        prop_assert_eq!(stats.nodes as usize, reference.node_count());
        prop_assert_eq!(stats.bytes as usize, text.len());
    }

    #[test]
    fn streaming_ingest_compacts_sparse_ids_like_in_memory_reader(
        picks in proptest::collection::vec((0usize..6, 0usize..6), 1..40),
    ) {
        // Ids straddle the interner's direct-map/hash-map boundary; the
        // compaction order (first appearance) must match exactly.
        const SOURCES: [u64; 6] = [0, 3, 17, 40_000_000, 1 << 30, u64::MAX - 1];
        const TARGETS: [u64; 6] = [1, 9, 256, 50_000_000, 1 << 40, u64::MAX];
        let edges: Vec<(u64, u64)> = picks
            .into_iter()
            .map(|(a, b)| (SOURCES[a], TARGETS[b]))
            .collect();
        let text = render_edge_list(&edges, 1);
        let reference = read_edge_list(text.as_bytes(), EdgeKind::Undirected).unwrap();
        let (streamed, _) =
            with_temp_file(&text, |p| load_edge_list_path(p, EdgeKind::Undirected)).unwrap();
        prop_assert_eq!(&streamed, &reference);
        prop_assert_eq!(streamed.degrees(), reference.degrees());
    }

    #[test]
    fn sparse_id_reservation_does_not_change_compaction(
        raw in proptest::collection::vec((0u64..4360, 0u64..4360), 400..800),
    ) {
        // Dense id runs straddling the 2^24 direct-map limit, wide
        // enough that the hash fallback crosses its first reservation
        // slab: the geometric capacity reservation must be invisible —
        // first-appearance compaction order, and therefore the CSR,
        // stays byte-identical to the in-memory reader. Raw draws below
        // 200 stay as small direct-mapped ids; the rest shift to a band
        // of ids around the 2^24 boundary.
        let widen = |x: u64| if x < 200 { x } else { (1u64 << 24) - 64 + (x - 200) };
        let edges: Vec<(u64, u64)> = raw.into_iter().map(|(u, v)| (widen(u), widen(v))).collect();
        let text = render_edge_list(&edges, 2);
        let reference = read_edge_list(text.as_bytes(), EdgeKind::Undirected).unwrap();
        let (streamed, stats) =
            with_temp_file(&text, |p| load_edge_list_path(p, EdgeKind::Undirected)).unwrap();
        prop_assert_eq!(&streamed, &reference);
        prop_assert_eq!(streamed.degrees(), reference.degrees());
        prop_assert_eq!(stats.nodes as usize, reference.node_count());
    }

    #[test]
    fn dataset_is_deterministic(seed in 0u64..100) {
        let cfg = DiggConfig {
            nodes: 300,
            k_min: 1,
            k_max: 60,
            target_mean_degree: 8.0,
            seed,
        };
        let a = DiggDataset::synthesize(cfg.clone()).unwrap();
        let b = DiggDataset::synthesize(cfg).unwrap();
        prop_assert_eq!(a.degrees(), b.degrees());
        prop_assert_eq!(a.gamma(), b.gamma());
    }
}
