//! Minimal flag parsing (no external dependencies).
//!
//! Supports `--key value` pairs and positional arguments. Unknown keys
//! are rejected up front so typos fail loudly instead of silently using
//! defaults.

use std::collections::HashMap;

/// Parsed command-line arguments: positionals, `--key value` options,
/// and valueless `--flag` switches.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// A parse failure, including the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgsError(pub String);

impl std::fmt::Display for ArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgsError {}

impl Args {
    /// Parses raw tokens, validating `--key value` option names against
    /// `allowed` and valueless `--switch` names against `flags`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] for unknown options, missing option values,
    /// or duplicated options.
    pub fn parse<I: IntoIterator<Item = String>>(
        raw: I,
        allowed: &[&str],
        flags: &[&str],
    ) -> Result<Self, ArgsError> {
        let mut out = Args::default();
        let mut iter = raw.into_iter();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if flags.contains(&key) {
                    if !out.flags.iter().any(|f| f == key) {
                        out.flags.push(key.to_string());
                    }
                    continue;
                }
                if !allowed.contains(&key) {
                    return Err(ArgsError(format!(
                        "unknown option --{key} (expected one of: {})",
                        allowed
                            .iter()
                            .map(|a| format!("--{a}"))
                            .chain(flags.iter().map(|f| format!("--{f}")))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )));
                }
                let value = iter
                    .next()
                    .ok_or_else(|| ArgsError(format!("option --{key} needs a value")))?;
                if out.options.insert(key.to_string(), value).is_some() {
                    return Err(ArgsError(format!("option --{key} given twice")));
                }
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// `true` when the valueless switch `--key` was given.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// The positional arguments in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Looks up a string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Parses an option as `f64`, with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] if the value does not parse.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, ArgsError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| ArgsError(format!("--{key} {v:?} is not a number: {e}"))),
        }
    }

    /// Parses an option as `usize`, with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] if the value does not parse.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, ArgsError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| ArgsError(format!("--{key} {v:?} is not an integer: {e}"))),
        }
    }

    /// Parses an option as `u64`, with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] if the value does not parse.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, ArgsError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| ArgsError(format!("--{key} {v:?} is not an integer: {e}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_positionals_and_options() {
        let a = Args::parse(toks(&["run", "--eps1", "0.2", "extra"]), &["eps1"], &[]).unwrap();
        assert_eq!(a.positional(), &["run", "extra"]);
        assert_eq!(a.get("eps1"), Some("0.2"));
        assert_eq!(a.get_f64("eps1", 0.0).unwrap(), 0.2);
        assert_eq!(a.get_f64("missing", 7.0).unwrap(), 7.0);
    }

    #[test]
    fn rejects_unknown_and_duplicate_options() {
        assert!(Args::parse(toks(&["--bogus", "1"]), &["eps1"], &[]).is_err());
        assert!(Args::parse(toks(&["--eps1", "1", "--eps1", "2"]), &["eps1"], &[]).is_err());
        assert!(Args::parse(toks(&["--eps1"]), &["eps1"], &[]).is_err());
    }

    #[test]
    fn flags_are_valueless_and_idempotent() {
        let a = Args::parse(
            toks(&["--strict", "--eps1", "0.2", "--strict"]),
            &["eps1"],
            &["strict"],
        )
        .unwrap();
        assert!(a.has_flag("strict"));
        assert!(!a.has_flag("verbose"));
        assert_eq!(a.get("eps1"), Some("0.2"));
        // A flag never consumes the next token.
        let b = Args::parse(toks(&["--strict", "pos"]), &[], &["strict"]).unwrap();
        assert_eq!(b.positional(), &["pos"]);
    }

    #[test]
    fn numeric_parse_errors_are_reported() {
        let a = Args::parse(toks(&["--n", "abc"]), &["n"], &[]).unwrap();
        assert!(a.get_usize("n", 0).is_err());
        assert!(a.get_f64("n", 0.0).is_err());
        assert!(a.get_u64("n", 0).is_err());
        let b = Args::parse(toks(&["--n", "12"]), &["n"], &[]).unwrap();
        assert_eq!(b.get_usize("n", 0).unwrap(), 12);
        assert_eq!(b.get_u64("n", 0).unwrap(), 12);
    }
}
