//! CLI-level error classification with stable exit codes.
//!
//! Every failure leaving `main` carries one of four exit codes so shell
//! scripts and CI can branch on *why* the tool failed:
//!
//! * `1` — runtime failure (integration blew up, I/O error, quorum lost)
//! * `2` — usage error (unknown option / command, unparsable value)
//! * `3` — configuration rejected up front (invalid parameter ranges)
//! * `4` — degraded result under `--strict` (the run produced a usable
//!   but flagged answer, and the caller asked for that to be fatal)

use crate::args::ArgsError;
use std::fmt;

/// Exit code for runtime failures.
pub const EXIT_RUNTIME: u8 = 1;
/// Exit code for command-line usage errors.
pub const EXIT_USAGE: u8 = 2;
/// Exit code for rejected configurations.
pub const EXIT_CONFIG: u8 = 3;
/// Exit code for degraded results under `--strict`.
pub const EXIT_DEGRADED: u8 = 4;

/// A rendered, classified CLI failure: one line of text plus the exit
/// code `main` should return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Process exit code (one of the `EXIT_*` constants).
    pub exit: u8,
    /// One-line message (full `source()` chain already folded in).
    pub message: String,
}

impl CliError {
    /// A runtime failure (exit 1).
    pub fn runtime(message: impl Into<String>) -> Self {
        CliError {
            exit: EXIT_RUNTIME,
            message: message.into(),
        }
    }

    /// A usage error (exit 2).
    pub fn usage(message: impl Into<String>) -> Self {
        CliError {
            exit: EXIT_USAGE,
            message: message.into(),
        }
    }

    /// A rejected configuration (exit 3).
    pub fn config(message: impl Into<String>) -> Self {
        CliError {
            exit: EXIT_CONFIG,
            message: message.into(),
        }
    }

    /// A degraded result promoted to an error by `--strict` (exit 4).
    pub fn degraded(message: impl Into<String>) -> Self {
        CliError {
            exit: EXIT_DEGRADED,
            message: message.into(),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

/// Folds an error and its `source()` chain into one line. Many Display
/// impls in this workspace already embed their source, so segments that
/// are already present are not repeated.
pub fn render_chain(e: &dyn std::error::Error) -> String {
    let mut message = e.to_string();
    let mut cursor = e.source();
    while let Some(src) = cursor {
        let rendered = src.to_string();
        if !message.contains(&rendered) {
            message.push_str(": ");
            message.push_str(&rendered);
        }
        cursor = src.source();
    }
    message
}

impl From<ArgsError> for CliError {
    fn from(e: ArgsError) -> Self {
        CliError::usage(e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::runtime(render_chain(&e))
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::runtime(message)
    }
}

impl From<rumor_ode::OdeError> for CliError {
    fn from(e: rumor_ode::OdeError) -> Self {
        use rumor_ode::OdeError as E;
        let message = render_chain(&e);
        match e {
            E::InvalidConfig { .. } | E::InvalidStep(_) | E::DimensionMismatch { .. } => {
                CliError::config(message)
            }
            _ => CliError::runtime(message),
        }
    }
}

impl From<rumor_core::CoreError> for CliError {
    fn from(e: rumor_core::CoreError) -> Self {
        use rumor_core::CoreError as E;
        match e {
            E::InvalidParameter { .. } | E::DimensionMismatch { .. } => {
                CliError::config(render_chain(&e))
            }
            E::Ode(inner) => inner.into(),
            _ => CliError::runtime(render_chain(&e)),
        }
    }
}

impl From<rumor_control::ControlError> for CliError {
    fn from(e: rumor_control::ControlError) -> Self {
        use rumor_control::ControlError as E;
        match e {
            E::InvalidConfig(_) => CliError::config(render_chain(&e)),
            E::Core(inner) => inner.into(),
            E::Ode(inner) => inner.into(),
            _ => CliError::runtime(render_chain(&e)),
        }
    }
}

impl From<rumor_sim::SimError> for CliError {
    fn from(e: rumor_sim::SimError) -> Self {
        use rumor_sim::SimError as E;
        match e {
            E::InvalidConfig(_) => CliError::config(render_chain(&e)),
            _ => CliError::runtime(render_chain(&e)),
        }
    }
}

impl From<rumor_serve::ServeError> for CliError {
    fn from(e: rumor_serve::ServeError) -> Self {
        use rumor_serve::ServeError as E;
        match e {
            E::InvalidConfig(_) => CliError::config(render_chain(&e)),
            // Bind and startup I/O failures are runtime conditions: the
            // configuration was fine, the environment refused it.
            E::Bind { .. } | E::Io(_) => CliError::runtime(render_chain(&e)),
        }
    }
}

impl From<rumor_net::NetError> for CliError {
    fn from(e: rumor_net::NetError) -> Self {
        CliError::runtime(render_chain(&e))
    }
}

impl From<rumor_datasets::DatasetError> for CliError {
    fn from(e: rumor_datasets::DatasetError) -> Self {
        use rumor_datasets::DatasetError as E;
        match e {
            E::InvalidConfig(_) => CliError::config(render_chain(&e)),
            E::ParseError { .. } => CliError::config(render_chain(&e)),
            _ => CliError::runtime(render_chain(&e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_source_type() {
        let usage: CliError = ArgsError("unknown option --x".into()).into();
        assert_eq!(usage.exit, EXIT_USAGE);

        let config: CliError = rumor_ode::OdeError::InvalidConfig {
            field: "rtol",
            reason: "must be positive".into(),
        }
        .into();
        assert_eq!(config.exit, EXIT_CONFIG);

        let runtime: CliError = rumor_ode::OdeError::NonFiniteState { t: 1.0 }.into();
        assert_eq!(runtime.exit, EXIT_RUNTIME);

        // Nested ODE errors keep their classification through the layers.
        let nested: CliError = rumor_control::ControlError::Core(rumor_core::CoreError::Ode(
            rumor_ode::OdeError::InvalidStep("h must be positive".into()),
        ))
        .into();
        assert_eq!(nested.exit, EXIT_CONFIG);

        let quorum: CliError = rumor_sim::SimError::QuorumNotMet {
            succeeded: 1,
            required: 3,
            attempted: 5,
        }
        .into();
        assert_eq!(quorum.exit, EXIT_RUNTIME);
        assert!(quorum.message.contains("1/5"));
    }

    #[test]
    fn chain_rendering_skips_embedded_sources() {
        // SimError::Core's Display already embeds the core error text, so
        // the chain renderer must not duplicate it.
        let e = rumor_sim::SimError::Core(rumor_core::CoreError::InvalidParameter {
            name: "alpha",
            message: "must be non-negative".into(),
        });
        let line = render_chain(&e);
        assert_eq!(line.matches("alpha").count(), 1);
    }
}
