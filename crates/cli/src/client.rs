//! Minimal std-only HTTP/1.1 client for the `rumor jobs` subcommand.
//!
//! One request per connection (`Connection: close`), blocking I/O with
//! socket timeouts. This is deliberately the smallest client that can
//! talk to `rumor serve`: the jobs endpoints answer small JSON bodies
//! immediately, so there is nothing to stream or keep alive.

use crate::error::CliError;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed HTTP response: status code plus the full body text.
pub struct HttpResponse {
    /// The status code from the response line.
    pub status: u16,
    /// The response body (the service always answers JSON text).
    pub body: String,
}

/// Issues one request against `addr` and reads the response to EOF.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<HttpResponse, CliError> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| CliError::runtime(format!("cannot connect to {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .and_then(|_| stream.set_write_timeout(Some(Duration::from_secs(30))))
        .map_err(|e| CliError::runtime(format!("cannot configure socket: {e}")))?;
    let mut stream = stream;
    let payload = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|_| stream.write_all(payload.as_bytes()))
        .map_err(|e| CliError::runtime(format!("cannot send request to {addr}: {e}")))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| CliError::runtime(format!("cannot read response from {addr}: {e}")))?;
    parse_response(&raw)
}

fn parse_response(raw: &str) -> Result<HttpResponse, CliError> {
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| CliError::runtime("malformed HTTP response (no header terminator)"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| CliError::runtime(format!("malformed HTTP status line: {status_line:?}")))?;
    // With `Connection: close` the body runs to EOF; honor
    // Content-Length anyway so a keep-alive answer still parses.
    let length = head
        .lines()
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok());
    let body = match length {
        Some(n) if n <= body.len() => &body[..n],
        _ => body,
    };
    Ok(HttpResponse {
        status,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_parse_status_and_body() {
        let r = parse_response(
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}extra",
        )
        .unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "{}");

        let r = parse_response("HTTP/1.1 404 Not Found\r\n\r\nmissing").unwrap();
        assert_eq!(r.status, 404);
        assert_eq!(r.body, "missing");

        assert!(parse_response("garbage").is_err());
        assert!(parse_response("NOPE\r\n\r\n").is_err());
    }
}
