//! `rumor` — command-line interface to the rumor-propagation toolkit.
//!
//! ```text
//! rumor analyze   [--edges FILE | --nodes N] [--eps1 E] [--eps2 E] ...
//! rumor simulate  [--edges FILE | --nodes N] [--tf T] [--out FILE] ...
//! rumor optimize  [--edges FILE | --nodes N] [--tf T] [--c1 C] [--c2 C] ...
//! rumor abm       [--edges FILE | --nodes N] [--runs R] [--tf T] ...
//! rumor serve     [--addr A] [--threads N] [--queue-depth D] [--io-backend B] ...
//! ```
//!
//! Run `rumor help` for the full option list. Networks come from an edge
//! list (`--edges`) or a synthesized Digg-like graph (`--nodes`).

mod args;
mod client;
mod commands;
mod error;

use args::Args;
use error::{CliError, EXIT_USAGE};
use std::process::ExitCode;

const USAGE: &str = "\
rumor — heterogeneous SIR rumor propagation toolkit (ICDCS 2015 reproduction)

USAGE:
    rumor <command> [options]

COMMANDS:
    analyze    network statistics, threshold r0, equilibria, stability verdict
    simulate   integrate the rumor dynamics; optionally write a CSV trajectory
    optimize   watchdog-guarded forward-backward sweep for the cheapest countermeasures
    abm        fault-isolated agent-based ensemble vs the mean-field prediction
    serve      run the HTTP/1.1 JSON service (simulate/threshold/optimize/ensemble)
    jobs       submit and manage durable campaigns on a running serve instance
    selftest   deterministic fault-injection drills for the guarded integrator
    help       print this message

NETWORK SOURCE (all commands):
    --edges FILE     read an undirected edge list (whitespace/comma separated)
    --nodes N        synthesize a Digg-like power-law network with N nodes
                     (default 5000; ignored when --edges is given)
    --kmax K         maximum degree of the synthetic network (default 300)
    --mean-degree D  target mean degree of the synthetic network (default 24)
    --seed S         RNG seed (default 2009)

MODEL PARAMETERS:
    --alpha A        inflow rate (default 0.01)
    --lambda0 L      acceptance scale, lambda(k) = L*k (default 0.02;
                     the rumor acceptance for --model two_rumor)
    --eps1 E         truth-spreading rate (default 0.2)
    --eps2 E         blocking rate (default 0.05)

MODEL SELECTION (simulate and optimize):
    --model M        paper (default) | two_rumor | tie_strength
    two_rumor:       competing rumor/truth-campaign dynamics with
                     truth-seeding and blocking control channels
                     --lambda20 L  truth acceptance scale (default 0.03)
                     --gamma1 G    rumor recovery rate (default 0.05)
                     --gamma2 G    truth retirement rate (default 0.08)
                     --mu F        spreader conversion fraction (default 0.5)
    tie_strength:    paper model with lambda_eff(k) = lambda(k)*k^(-beta)
                     --beta B      tie-strength exponent (default 0.5)

ROBUSTNESS:
    --strict         turn degraded results (quarantined windows, excluded
                     replicas, non-converged sweeps) into errors (exit 4)

PERFORMANCE:
    --threads N      worker threads for ensemble replicas (default: the
                     RUMOR_THREADS env var, else all available cores);
                     results are bit-identical for every thread count
    --inner-threads N
                     intra-replica worker threads for the Theta/RHS,
                     costate and sharded-ABM kernels of a single solve
                     (default: the RUMOR_INNER_THREADS env var, else the
                     --threads/RUMOR_THREADS budget); results are
                     bit-identical for every inner thread count

OBSERVABILITY (all commands):
    --log-format F   trace output: off (default), text, or json; spans
                     and events go to stderr unless --trace-out is given.
                     Tracing never changes numeric results.
    --trace-out FILE write trace records to FILE instead of stderr
                     (implies --log-format json when no format is given)

COMMAND OPTIONS:
    simulate: --tf T (default 150)  --i0 F (default 0.1)  --out FILE
    optimize: --tf T (default 100)  --i0 F (default 0.05) --c1 C (5) --c2 C (10)
              --epsmax E (default 0.7)  --max-iters N (300)  --out FILE
    abm:      --tf T (default 40)   --i0 F (default 0.05) --runs R (default 8)
              --quorum F (default 0.5, min surviving replica fraction)
    serve:    --addr A (default 127.0.0.1:8080, port 0 = ephemeral)
              --queue-depth N (default 64; beyond it requests are shed with 503)
              --cache-entries N (default 256; 0 disables the result cache)
              --deadline-ms MS (default 30000; late requests answer 504)
              --jobs-dir DIR (enable durable campaign jobs persisted in DIR;
                              a restart resumes interrupted campaigns)
              --io-backend B (threads, the default, or epoll: one event
                              loop owns every socket and workers only run
                              compute; Linux only, rejected elsewhere)
              --max-connections N (default 1024; epoll backend sheds
                              connections beyond it with 503 at accept)
              endpoints: GET /healthz /metrics,
                         POST /v1/{simulate,threshold,optimize,ensemble},
                         POST/GET /v1/jobs (with --jobs-dir)
              runs until SIGTERM/SIGINT, then drains in-flight requests
    jobs:     rumor jobs submit  [--spec FILE] [--wait]   submit a campaign
              rumor jobs list                             list known jobs
              rumor jobs status  ID [--wait]              inspect one job
              rumor jobs results ID [--out FILE]          fetch the result set
              rumor jobs cancel  ID                       stop at a point boundary
              rumor jobs resume  ID [--wait]              re-queue with fresh retries
              all actions take --addr A (default 127.0.0.1:8080); --wait polls
              to a terminal state, and --strict makes anything but `done`
              exit 4; --spec FILE is the JSON submission body (default {})
    selftest: --tf T (default 40)   --i0 F (default 0.05)

EXIT CODES:
    0  success        1  runtime failure      2  usage error
    3  invalid config 4  degraded result under --strict
    serve maps onto the same contract: a rejected service configuration
    (e.g. --queue-depth 0) exits 3; a failed bind exits 1; unknown
    options exit 2. HTTP-level failures (400/413/503/504) are per-request
    and never terminate the server.
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = raw.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    };
    let allowed = [
        "edges",
        "nodes",
        "kmax",
        "mean-degree",
        "seed",
        "alpha",
        "lambda0",
        "model",
        "lambda20",
        "gamma1",
        "gamma2",
        "mu",
        "beta",
        "eps1",
        "eps2",
        "tf",
        "i0",
        "out",
        "c1",
        "c2",
        "epsmax",
        "max-iters",
        "runs",
        "quorum",
        "threads",
        "inner-threads",
        "addr",
        "queue-depth",
        "cache-entries",
        "deadline-ms",
        "jobs-dir",
        "io-backend",
        "max-connections",
        "spec",
        "log-format",
        "trace-out",
    ];
    let flags = ["strict", "wait"];
    let parsed = match Args::parse(rest.iter().cloned(), &allowed, &flags) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    // `jobs` takes positional arguments (an action and possibly a job
    // id); every other command takes options only.
    if command != "jobs" {
        if let Some(stray) = parsed.positional().first() {
            eprintln!("error: unexpected argument {stray:?}; run `rumor help`");
            return ExitCode::from(EXIT_USAGE);
        }
    }
    // Observability wiring, before dispatch so every command is traced.
    // `--trace-out` without a format defaults to JSON lines; an explicit
    // `--log-format off` wins and disables tracing entirely.
    let log_format = match parsed.get("log-format") {
        None => None,
        Some(v) => match rumor_obs::LogFormat::parse(v) {
            Some(f) => Some(f),
            None => {
                eprintln!("error: --log-format {v:?} is not one of: off, text, json");
                return ExitCode::from(EXIT_USAGE);
            }
        },
    };
    match (log_format, parsed.get("trace-out")) {
        (None | Some(rumor_obs::LogFormat::Off), None) => {}
        (Some(rumor_obs::LogFormat::Off), Some(_)) => {}
        (fmt, Some(path)) => {
            let fmt = fmt.unwrap_or(rumor_obs::LogFormat::Json);
            if let Err(e) = rumor_obs::init_file(fmt, std::path::Path::new(path)) {
                eprintln!("error: cannot open trace file {path:?}: {e}");
                return ExitCode::from(error::EXIT_RUNTIME);
            }
        }
        (Some(fmt), None) => rumor_obs::init(fmt, None),
    }
    match parsed.get_usize("threads", 0) {
        // 0 = "not given": leave resolution to RUMOR_THREADS / the
        // machine's available parallelism.
        Ok(0) => {}
        Ok(t) => rumor_par::set_thread_override(Some(t)),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    }
    match parsed.get_usize("inner-threads", 0) {
        // 0 = "not given": leave resolution to RUMOR_INNER_THREADS /
        // the outer thread budget.
        Ok(0) => {}
        Ok(t) => rumor_par::set_inner_thread_override(Some(t)),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    }
    let result = match command.as_str() {
        "analyze" => commands::analyze(&parsed),
        "simulate" => commands::simulate(&parsed),
        "optimize" => commands::optimize(&parsed),
        "abm" => commands::abm(&parsed),
        "serve" => commands::serve(&parsed),
        "jobs" => commands::jobs(&parsed),
        "selftest" => commands::selftest(&parsed),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown command {other:?}; run `rumor help`"
        ))),
    };
    // Flush and close any trace sink before the process exits.
    rumor_obs::shutdown();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit)
        }
    }
}
