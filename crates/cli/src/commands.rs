//! The `rumor` subcommands.

use crate::args::Args;
use crate::error::CliError;
use rumor_compartments::model::CompartmentModel;
use rumor_compartments::schedule::ConstantMultiControl;
use rumor_compartments::simulate::{simulate_compartments, CompartmentSimOptions};
use rumor_control::fbsm::FbsmOptions;
use rumor_control::multi::{optimize_compartments_monitored, MultiControlBounds, MultiFbsmOptions};
use rumor_control::watchdog::{optimize_guarded, SweepSource, WatchdogOptions};
use rumor_control::{ControlBounds, CostWeights};
use rumor_core::control::ConstantControl;
use rumor_core::equilibrium::{positive_equilibrium, r0, zero_equilibrium};
use rumor_core::functions::{AcceptanceRate, Infectivity};
use rumor_core::params::ModelParams;
use rumor_core::sensitivity::{critical_countermeasure_scale, r0_sensitivity};
use rumor_core::simulate::{simulate as run_simulation, SimulateOptions};
use rumor_core::stability::theorem2_consistency;
use rumor_core::state::NetworkState;
use rumor_datasets::digg::{DiggConfig, DiggDataset};
use rumor_datasets::edgelist::read_edge_list;
use rumor_datasets::summary::DatasetSummary;
use rumor_net::degree::DegreeClasses;
use rumor_net::graph::{EdgeKind, Graph};
use rumor_sim::abm::AbmConfig;
use rumor_sim::ensemble::{
    max_deviation, mean_field_reference, run_ensemble_isolated, IsolationPolicy, Simulator,
};
use std::io::Write;

type CliResult = Result<(), CliError>;

/// The network a command operates on: its degree partition plus, when an
/// actual graph is available or required, the graph itself.
struct Network {
    classes: DegreeClasses,
    graph: Option<Graph>,
    summary: DatasetSummary,
}

fn load_network(args: &Args, need_graph: bool) -> Result<Network, CliError> {
    if let Some(path) = args.get("edges") {
        let file = std::fs::File::open(path)
            .map_err(|e| CliError::runtime(format!("cannot open edge list {path:?}: {e}")))?;
        let graph = read_edge_list(file, EdgeKind::Undirected)?;
        let classes = DegreeClasses::from_graph(&graph)?;
        let summary = DatasetSummary::from_graph(path.to_string(), &graph)?;
        return Ok(Network {
            classes,
            graph: Some(graph),
            summary,
        });
    }
    let nodes = args.get_usize("nodes", 5_000)?;
    let k_max = args.get_usize("kmax", 300)?;
    let mean = args.get_f64("mean-degree", 24.0)?;
    let seed = args.get_u64("seed", 2_009)?;
    let dataset = DiggDataset::synthesize(DiggConfig {
        nodes,
        k_min: 1,
        k_max,
        target_mean_degree: mean,
        seed,
    })?;
    let graph = if need_graph {
        Some(dataset.realize_graph()?)
    } else {
        None
    };
    Ok(Network {
        classes: dataset.classes().clone(),
        graph,
        summary: dataset.summary(),
    })
}

fn model_params(args: &Args, classes: DegreeClasses) -> Result<ModelParams, CliError> {
    Ok(ModelParams::builder(classes)
        .alpha(args.get_f64("alpha", 0.01)?)
        .acceptance(AcceptanceRate::LinearInDegree {
            lambda0: args.get_f64("lambda0", 0.02)?,
        })
        .infectivity(Infectivity::paper_default())
        .build()?)
}

/// Which propagation model `--model` selects (simulate/optimize only;
/// the threshold theory and the ABM only speak the paper model).
enum CliModelKind {
    Paper,
    TwoRumor {
        lambda20: f64,
        gamma1: f64,
        gamma2: f64,
        mu: f64,
    },
    TieStrength {
        beta: f64,
    },
}

fn model_kind(args: &Args) -> Result<CliModelKind, CliError> {
    match args.get("model").unwrap_or("paper") {
        "paper" => Ok(CliModelKind::Paper),
        "two_rumor" => Ok(CliModelKind::TwoRumor {
            lambda20: args.get_f64("lambda20", 0.03)?,
            gamma1: args.get_f64("gamma1", 0.05)?,
            gamma2: args.get_f64("gamma2", 0.08)?,
            mu: args.get_f64("mu", 0.5)?,
        }),
        "tie_strength" => Ok(CliModelKind::TieStrength {
            beta: args.get_f64("beta", 0.5)?,
        }),
        other => Err(CliError::usage(format!(
            "--model {other:?} is not one of: paper, two_rumor, tie_strength"
        ))),
    }
}

/// Builds the selected compartment model from the shared parameters.
/// Returns `None` for the paper kind (which runs the legacy engines).
fn build_compartment_model(
    kind: &CliModelKind,
    params: &ModelParams,
    c1: f64,
    c2: f64,
) -> Result<Option<CompartmentKindModel>, CliError> {
    Ok(match kind {
        CliModelKind::Paper => None,
        CliModelKind::TwoRumor {
            lambda20,
            gamma1,
            gamma2,
            mu,
        } => Some(CompartmentKindModel::TwoRumor(
            rumor_models::two_rumor::TwoRumorModel::from_params(
                params, *lambda20, *gamma1, *gamma2, *mu, c1, c2,
            )?,
        )),
        CliModelKind::TieStrength { beta } => Some(CompartmentKindModel::TieStrength(
            rumor_models::tie_strength::tie_strength_model(params, *beta, c1, c2)?,
        )),
    })
}

/// The two selectable compartment models, monomorphized per arm so the
/// generic simulate/optimize paths below stay `dyn`-free.
enum CompartmentKindModel {
    TwoRumor(rumor_models::two_rumor::TwoRumorModel),
    TieStrength(rumor_compartments::paper::PaperSir),
}

/// Uniform initial condition on a compartment model: every class starts
/// with `1 − i0` susceptible and `i0` in compartment 1 (the rumor
/// spreaders), mirroring `NetworkState::initial_uniform`.
fn uniform_compartment_initial<M: CompartmentModel>(model: &M, i0: f64) -> Vec<f64> {
    let n = model.n_classes();
    let mut y = vec![0.0; model.state_dim()];
    for j in 0..n {
        y[j] = 1.0 - i0;
        y[n + j] = i0;
    }
    y
}

/// `rumor analyze`: dataset statistics, threshold, equilibria, stability.
pub fn analyze(args: &Args) -> CliResult {
    let net = load_network(args, false)?;
    let params = model_params(args, net.classes)?;
    let (eps1, eps2) = (args.get_f64("eps1", 0.2)?, args.get_f64("eps2", 0.05)?);

    println!("{}", net.summary);
    println!(
        "\nmodel: alpha = {}, lambda(k) = {}k, omega(k) = sqrt(k)/(1+sqrt(k))",
        params.alpha(),
        args.get_f64("lambda0", 0.02)?
    );
    let (threshold, verdict, consistent) = theorem2_consistency(&params, eps1, eps2)?;
    println!("countermeasures: eps1 = {eps1}, eps2 = {eps2}");
    println!("\nthreshold r0 = {threshold:.4}");
    println!(
        "prediction (theorem 5): the rumor will {}",
        if threshold <= 1.0 {
            "become extinct"
        } else {
            "persist endemically"
        }
    );
    println!("jacobian verdict at E0: {verdict:?} (consistent with r0: {consistent})");

    let e0 = zero_equilibrium(&params, eps1, eps2)?;
    println!(
        "\nrumor-free equilibrium E0: S = {:.4}, R = {:.4} per class",
        e0.s()[0],
        e0.r()[0]
    );
    match positive_equilibrium(&params, eps1, eps2) {
        Ok(ep) => println!(
            "endemic equilibrium E+: mean I+ = {:.4} per class",
            ep.total_infected() / params.n_classes() as f64
        ),
        Err(_) => println!("endemic equilibrium E+: does not exist (r0 <= 1)"),
    }

    let sens = r0_sensitivity(&params, eps1, eps2)?;
    println!(
        "
threshold sensitivities:"
    );
    println!("  dr0/d(alpha) = {:+.4}", sens.d_alpha);
    println!("  dr0/d(eps1)  = {:+.4}", sens.d_eps1);
    println!("  dr0/d(eps2)  = {:+.4}", sens.d_eps2);
    let scale = critical_countermeasure_scale(&params, eps1, eps2)?;
    if scale > 1.0 {
        println!(
            "to reach r0 = 1, scale both countermeasures by {scale:.3} (e.g. eps = ({:.4}, {:.4}))",
            eps1 * scale,
            eps2 * scale
        );
    } else {
        println!(
            "already subcritical: countermeasures could shrink to {:.1}% before r0 reaches 1",
            scale * 100.0
        );
    }
    // Where the threshold mass lives across degrees (top 3 classes).
    let mut shares: Vec<(usize, f64)> = sens
        .class_share
        .iter()
        .enumerate()
        .map(|(i, &v)| (params.classes().degree(i), v))
        .collect();
    shares.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("largest per-class threshold shares:");
    for (k, share) in shares.iter().take(3) {
        println!("  degree {k:>5}: {:.2}% of r0", share * 100.0);
    }
    Ok(())
}

/// Simulate path for the compartment-model kinds (`--model two_rumor` /
/// `tie_strength`): the constant `--eps1/--eps2` map onto the model's
/// two control channels in order.
fn simulate_compartment_kind<M: CompartmentModel>(args: &Args, model: &M) -> CliResult {
    let (eps1, eps2) = (args.get_f64("eps1", 0.2)?, args.get_f64("eps2", 0.05)?);
    let tf = args.get_f64("tf", 150.0)?;
    let i0 = args.get_f64("i0", 0.1)?;
    let traj = simulate_compartments(
        model,
        ConstantMultiControl::new(vec![eps1, eps2]),
        &uniform_compartment_initial(model, i0),
        tf,
        &CompartmentSimOptions::default(),
        None,
    )?;
    let names = model.compartment_names();
    println!(
        "simulated {} classes x {} compartments ({}) over (0, {tf}]",
        model.n_classes(),
        model.n_compartments(),
        names.join("/")
    );
    print!("\n{:>10}", "t");
    for name in names {
        print!(" {:>12}", format!("mean {name}"));
    }
    println!();
    let n = model.n_classes() as f64;
    let means: Vec<Vec<f64>> = (0..model.n_compartments())
        .map(|c| traj.total_series(c).iter().map(|x| x / n).collect())
        .collect();
    for idx in (0..traj.len()).step_by((traj.len() / 10).max(1)) {
        print!("{:>10.2}", traj.times()[idx]);
        for series in &means {
            print!(" {:>12.6}", series[idx]);
        }
        println!();
    }
    if let Some(path) = args.get("out") {
        let mut f = std::fs::File::create(path)?;
        let header: Vec<String> = names.iter().map(|name| format!("mean_{name}")).collect();
        writeln!(f, "t,{}", header.join(","))?;
        for (idx, t) in traj.times().iter().enumerate() {
            let row: Vec<String> = means.iter().map(|s| s[idx].to_string()).collect();
            writeln!(f, "{t},{}", row.join(","))?;
        }
        println!("\ntrajectory written to {path}");
    }
    Ok(())
}

/// `rumor simulate`: integrate the dynamics, print milestones, optional
/// CSV. `--model` selects the engine: the paper model runs the legacy
/// path below, the other kinds run their compartment models.
pub fn simulate(args: &Args) -> CliResult {
    let net = load_network(args, false)?;
    let params = model_params(args, net.classes)?;
    // Cost weights only enter the FBSM objective; the paper defaults
    // keep model construction valid here.
    match build_compartment_model(&model_kind(args)?, &params, 5.0, 10.0)? {
        None => {}
        Some(CompartmentKindModel::TwoRumor(m)) => return simulate_compartment_kind(args, &m),
        Some(CompartmentKindModel::TieStrength(m)) => return simulate_compartment_kind(args, &m),
    }
    let (eps1, eps2) = (args.get_f64("eps1", 0.2)?, args.get_f64("eps2", 0.05)?);
    let tf = args.get_f64("tf", 150.0)?;
    let i0 = args.get_f64("i0", 0.1)?;

    let initial = NetworkState::initial_uniform(params.n_classes(), i0)?;
    let traj = run_simulation(
        &params,
        ConstantControl::new(eps1, eps2),
        &initial,
        tf,
        &SimulateOptions::default(),
    )?;
    let threshold = r0(&params, eps1, eps2)?;
    println!(
        "r0 = {threshold:.4}; simulated {} classes over (0, {tf}]",
        params.n_classes()
    );
    println!(
        "\n{:>10} {:>12} {:>12} {:>12}",
        "t", "mean S", "mean I", "mean R"
    );
    let n = params.n_classes() as f64;
    for idx in (0..traj.len()).step_by((traj.len() / 10).max(1)) {
        let st = &traj.states()[idx];
        println!(
            "{:>10.2} {:>12.6} {:>12.6} {:>12.6}",
            traj.times()[idx],
            st.total_susceptible() / n,
            st.total_infected() / n,
            st.total_recovered() / n
        );
    }
    if let Some(path) = args.get("out") {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "t,mean_s,mean_i,mean_r")?;
        for (t, st) in traj.times().iter().zip(traj.states()) {
            writeln!(
                f,
                "{t},{},{},{}",
                st.total_susceptible() / n,
                st.total_infected() / n,
                st.total_recovered() / n
            )?;
        }
        println!("\ntrajectory written to {path}");
    }
    Ok(())
}

/// Optimize path for the compartment-model kinds: the multi-control
/// forward–backward sweep, with `--epsmax` bounding every channel.
fn optimize_compartment_kind<M: CompartmentModel>(args: &Args, model: &M) -> CliResult {
    let tf = args.get_f64("tf", 100.0)?;
    let i0 = args.get_f64("i0", 0.05)?;
    let epsmax = args.get_f64("epsmax", 0.7)?;
    let bounds = MultiControlBounds::new(vec![epsmax; model.n_controls()])?;
    println!(
        "multi-control sweep: {} classes, channels ({}) over (0, {tf}], bounds {epsmax}...",
        model.n_classes(),
        model.control_names().join(", ")
    );
    let result = optimize_compartments_monitored(
        model,
        &uniform_compartment_initial(model, i0),
        tf,
        &bounds,
        &MultiFbsmOptions {
            n_nodes: 101,
            max_iterations: args.get_usize("max-iters", 300)?,
            tolerance: 1e-4,
            relaxation: 0.3,
            ..Default::default()
        },
    )?;
    if !result.converged && args.has_flag("strict") {
        return Err(CliError::degraded(format!(
            "multi-control sweep did not converge in {} iterations under --strict",
            result.iterations
        )));
    }
    println!(
        "finished after {} iterations (converged: {}); J = {:.4}, running cost = {:.4}",
        result.iterations,
        result.converged,
        result.cost.total(),
        result.cost.running()
    );
    println!(
        "terminal objective: {:.6}",
        model.terminal_objective(result.trajectory.last_state())
    );
    let names = model.control_names();
    print!("\n{:>8}", "t");
    for name in names {
        print!(" {:>10}", name);
    }
    println!();
    let grid = result.control.grid();
    for idx in (0..grid.len()).step_by((grid.len() / 10).max(1)) {
        print!("{:>8.1}", grid[idx]);
        for c in 0..model.n_controls() {
            print!(" {:>10.4}", result.control.values(c)[idx]);
        }
        println!();
    }
    if let Some(path) = args.get("out") {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "t,{}", names.join(","))?;
        for (idx, t) in grid.iter().enumerate() {
            let row: Vec<String> = (0..model.n_controls())
                .map(|c| result.control.values(c)[idx].to_string())
                .collect();
            writeln!(f, "{t},{}", row.join(","))?;
        }
        println!("\nschedule written to {path}");
    }
    Ok(())
}

/// `rumor optimize`: the cheapest countermeasure schedule, a schedule
/// table, optional CSV. The paper model runs the watchdog-guarded
/// forward–backward sweep; `--model two_rumor`/`tie_strength` run the
/// multi-control sweep. With `--strict`, a degraded result (best-so-far
/// checkpoint, heuristic fallback, or a non-converged multi sweep)
/// becomes a fatal error.
pub fn optimize(args: &Args) -> CliResult {
    let net = load_network(args, false)?;
    let params = model_params(args, net.classes)?;
    let (c1, c2) = (args.get_f64("c1", 5.0)?, args.get_f64("c2", 10.0)?);
    match build_compartment_model(&model_kind(args)?, &params, c1, c2)? {
        None => {}
        Some(CompartmentKindModel::TwoRumor(m)) => return optimize_compartment_kind(args, &m),
        Some(CompartmentKindModel::TieStrength(m)) => return optimize_compartment_kind(args, &m),
    }
    let tf = args.get_f64("tf", 100.0)?;
    let i0 = args.get_f64("i0", 0.05)?;
    let weights = CostWeights::new(c1, c2)?;
    let epsmax = args.get_f64("epsmax", 0.7)?;
    let bounds = ControlBounds::new(epsmax, epsmax)?;
    let initial = NetworkState::initial_uniform(params.n_classes(), i0)?;

    println!(
        "sweeping {} classes over (0, {tf}] with c1 = {}, c2 = {}, bounds {epsmax}...",
        params.n_classes(),
        weights.c1,
        weights.c2
    );
    let guarded = optimize_guarded(
        &params,
        &initial,
        tf,
        &bounds,
        &weights,
        &WatchdogOptions {
            fbsm: FbsmOptions {
                n_nodes: 101,
                max_iterations: args.get_usize("max-iters", 300)?,
                tolerance: 1e-4,
                relaxation: 0.3,
                ..Default::default()
            },
            ..Default::default()
        },
    )?;
    for ev in &guarded.restarts {
        println!(
            "watchdog: attempt {} (relaxation {:.4}{}) diverged [{}]: {}",
            ev.attempt,
            ev.relaxation,
            if ev.guarded_ode { ", guarded ode" } else { "" },
            ev.divergence,
            ev.detail
        );
    }
    println!("watchdog: {}", guarded.summary());
    if guarded.degraded && args.has_flag("strict") {
        return Err(CliError::degraded(format!(
            "optimize produced a degraded result under --strict: {}",
            guarded.summary()
        )));
    }
    let result = guarded.result;
    println!(
        "finished after {} iterations (converged: {}{}); J = {:.4}, running cost = {:.4}",
        result.iterations,
        result.converged,
        match guarded.source {
            SweepSource::Fbsm => "",
            SweepSource::HeuristicFallback => ", heuristic fallback",
        },
        result.cost.total(),
        result.cost.running()
    );
    println!(
        "terminal infection: {:.6}",
        result.trajectory.last_state().total_infected()
    );
    println!("\n{:>8} {:>10} {:>10}", "t", "eps1", "eps2");
    let grid = result.control.grid();
    for idx in (0..grid.len()).step_by((grid.len() / 10).max(1)) {
        println!(
            "{:>8.1} {:>10.4} {:>10.4}",
            grid[idx],
            result.control.eps1_values()[idx],
            result.control.eps2_values()[idx]
        );
    }
    if let Some(path) = args.get("out") {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "t,eps1,eps2")?;
        for (idx, t) in grid.iter().enumerate() {
            writeln!(
                f,
                "{t},{},{}",
                result.control.eps1_values()[idx],
                result.control.eps2_values()[idx]
            )?;
        }
        println!("\nschedule written to {path}");
    }
    Ok(())
}

/// `rumor abm`: fault-isolated stochastic ensemble vs the mean field.
/// Failed replicas are excluded and reported; `--quorum` sets the
/// minimum surviving fraction and `--strict` makes any exclusion fatal.
pub fn abm(args: &Args) -> CliResult {
    let net = load_network(args, true)?;
    let graph = net.graph.expect("load_network(need_graph = true)");
    // The microscopic simulators key rates off the realized graph's
    // degrees, so rebuild the partition from the graph itself.
    let classes = DegreeClasses::from_graph(&graph)?;
    let params = model_params(args, classes)?;
    let cfg = AbmConfig {
        alpha: params.alpha(),
        dt: 0.1,
        tf: args.get_f64("tf", 40.0)?,
        eps1: args.get_f64("eps1", 0.2)?,
        eps2: args.get_f64("eps2", 0.05)?,
        initial_infected: args.get_f64("i0", 0.05)?,
        record_every: 10,
    };
    let runs = args.get_usize("runs", 8)?;
    let seed = args.get_u64("seed", 2_009)?;
    let policy = IsolationPolicy {
        quorum: args.get_f64("quorum", 0.5)?,
    };
    println!(
        "running {runs} synchronous ABM realizations on {} nodes...",
        graph.node_count()
    );
    let isolated = run_ensemble_isolated(
        &graph,
        &params,
        &cfg,
        Simulator::Synchronous,
        runs,
        seed,
        &policy,
    )?;
    for failure in &isolated.failures {
        println!(
            "isolation: replica {} (seed {}) excluded: {}",
            failure.replica, failure.seed, failure.reason
        );
    }
    println!("isolation: {}", isolated.summary());
    if isolated.degraded() && args.has_flag("strict") {
        return Err(CliError::degraded(format!(
            "abm ensemble degraded under --strict: {}",
            isolated.summary()
        )));
    }
    let ens = isolated.result;
    let mf = mean_field_reference(&params, &cfg, &ens.times)?;
    println!(
        "\n{:>8} {:>12} {:>12} {:>12}",
        "t", "abm mean I", "abm std", "ode I"
    );
    for idx in (0..ens.times.len()).step_by((ens.times.len() / 10).max(1)) {
        println!(
            "{:>8.1} {:>12.6} {:>12.6} {:>12.6}",
            ens.times[idx], ens.i_mean[idx], ens.i_std[idx], mf[idx]
        );
    }
    println!(
        "\nmax |ABM - ODE| deviation: {:.4}",
        max_deviation(&ens, &mf)?
    );
    Ok(())
}

/// `rumor serve`: run the HTTP JSON service until SIGTERM/SIGINT, then
/// drain in-flight requests and exit. Exit codes follow the strict
/// contract: a rejected configuration is exit 3, a failed bind (or any
/// other startup I/O failure) is exit 1, usage errors are exit 2.
pub fn serve(args: &Args) -> CliResult {
    let io_backend = match args.get("io-backend") {
        None => rumor_serve::IoBackend::default(),
        Some(token) => rumor_serve::IoBackend::parse(token).ok_or_else(|| {
            CliError::usage(format!(
                "--io-backend {token:?} is not one of: threads, epoll"
            ))
        })?,
    };
    let config = rumor_serve::ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:8080").to_string(),
        // 0 = "not given" (matching the global --threads convention):
        // resolve via RUMOR_THREADS / available cores.
        threads: match args.get_usize("threads", 0)? {
            0 => None,
            t => Some(t),
        },
        queue_depth: args.get_usize("queue-depth", 64)?,
        cache_entries: args.get_usize("cache-entries", 256)?,
        deadline_ms: args.get_u64("deadline-ms", 30_000)?,
        jobs_dir: args.get("jobs-dir").map(str::to_string),
        io_backend,
        max_connections: args.get_usize("max-connections", 1024)?,
        ..rumor_serve::ServeConfig::default()
    };
    let server = rumor_serve::serve(&config)?;
    println!(
        "rumor-serve listening on http://{} ({} backend, {} worker(s), queue depth {}, cache {} entries, deadline {} ms)",
        server.local_addr(),
        match config.io_backend {
            rumor_serve::IoBackend::Threads => "threads",
            rumor_serve::IoBackend::Epoll => "epoll",
        },
        server.workers(),
        config.queue_depth,
        config.cache_entries,
        config.deadline_ms
    );
    println!("endpoints: GET /healthz /metrics; POST /v1/{{simulate,threshold,optimize,ensemble}}");
    match &config.jobs_dir {
        Some(dir) => println!("durable jobs enabled under {dir:?}: POST/GET /v1/jobs"),
        None => println!("durable jobs disabled (enable with --jobs-dir DIR)"),
    }
    println!("press Ctrl-C (or send SIGTERM) for a graceful drain-and-exit");
    server.run_until_terminated();
    println!("rumor-serve: drained and stopped");
    Ok(())
}

/// Issues one jobs-API request and checks the HTTP status. Returns the
/// raw body (needed verbatim by `results`) plus its parsed form.
fn jobs_call(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(String, rumor_serve::wire::Value), CliError> {
    use rumor_serve::wire::{parse, Value};
    let resp = crate::client::request(addr, method, path, body)?;
    let value = parse(&resp.body).unwrap_or(Value::Null);
    if resp.status != 200 {
        let detail = value
            .get("error")
            .and_then(Value::as_str)
            .unwrap_or_else(|| resp.body.trim())
            .to_string();
        let message = format!("{method} {path}: server answered {}: {detail}", resp.status);
        // 400 means the submission or transition was rejected up front;
        // everything else (404, 500, 503) is a runtime condition.
        return Err(if resp.status == 400 {
            CliError::config(message)
        } else {
            CliError::runtime(message)
        });
    }
    Ok((resp.body, value))
}

/// One human-readable line for a job status object.
fn job_status_line(v: &rumor_serve::wire::Value) -> String {
    use rumor_serve::wire::Value;
    let text = |k: &str| v.get(k).and_then(Value::as_str).unwrap_or("?").to_string();
    let num = |k: &str| v.get(k).and_then(Value::as_f64).unwrap_or(0.0) as u64;
    let quarantined = v
        .get("quarantined")
        .and_then(Value::as_arr)
        .map_or(0, |a| a.len());
    let mut line = format!(
        "{} [{}]: {}, {}/{} points, {} quarantined, {} retries",
        text("id"),
        text("kind"),
        text("state"),
        num("completed"),
        num("total"),
        quarantined,
        num("retries"),
    );
    if let Some(err) = v.get("last_error").and_then(Value::as_str) {
        line.push_str(&format!(" (last error: {err})"));
    }
    line
}

/// Polls a job until it reaches a terminal state and prints the final
/// status line. Under `--strict`, anything but `done` is a degraded
/// result (exit 4).
fn jobs_wait(addr: &str, id: &str, strict: bool) -> CliResult {
    use rumor_serve::wire::Value;
    loop {
        let (_, v) = jobs_call(addr, "GET", &format!("/v1/jobs/{id}"), None)?;
        let state = v
            .get("state")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        match state.as_str() {
            "done" | "partial" | "failed" | "cancelled" => {
                println!("{}", job_status_line(&v));
                if strict && state != "done" {
                    return Err(CliError::degraded(format!(
                        "job {id} finished {state} under --strict"
                    )));
                }
                return Ok(());
            }
            _ => std::thread::sleep(std::time::Duration::from_millis(200)),
        }
    }
}

/// `rumor jobs`: client for the durable campaign endpoints of a running
/// `rumor serve --jobs-dir DIR` instance.
///
/// ```text
/// rumor jobs submit  [--spec FILE] [--wait]   # POST /v1/jobs
/// rumor jobs list                             # GET  /v1/jobs
/// rumor jobs status  ID [--wait]              # GET  /v1/jobs/{id}
/// rumor jobs results ID [--out FILE]          # GET  /v1/jobs/{id}/results
/// rumor jobs cancel  ID                       # POST /v1/jobs/{id}/cancel
/// rumor jobs resume  ID [--wait]              # POST /v1/jobs/{id}/resume
/// ```
pub fn jobs(args: &Args) -> CliResult {
    use rumor_serve::wire::Value;
    let addr = args.get("addr").unwrap_or("127.0.0.1:8080").to_string();
    let positional = args.positional();
    let action = positional.first().map(String::as_str).unwrap_or("");
    let expected_args: usize = match action {
        "submit" | "list" => 1,
        "status" | "results" | "cancel" | "resume" => 2,
        "" => {
            return Err(CliError::usage(
                "jobs needs an action: submit, list, status, results, cancel, resume",
            ))
        }
        other => {
            return Err(CliError::usage(format!(
            "unknown jobs action {other:?}; expected submit, list, status, results, cancel, resume"
        )))
        }
    };
    if positional.len() != expected_args {
        return Err(CliError::usage(format!(
            "jobs {action} takes {} argument(s), got {}; run `rumor help`",
            expected_args - 1,
            positional.len() - 1
        )));
    }
    let job_id = positional.get(1).map(String::as_str).unwrap_or("");
    match action {
        "submit" => {
            let body = match args.get("spec") {
                Some(path) => std::fs::read_to_string(path).map_err(|e| {
                    CliError::runtime(format!("cannot read spec file {path:?}: {e}"))
                })?,
                None => "{}".to_string(),
            };
            let (_, v) = jobs_call(&addr, "POST", "/v1/jobs", Some(&body))?;
            let id = v
                .get("id")
                .and_then(Value::as_str)
                .ok_or_else(|| CliError::runtime("malformed submit response (no id)"))?
                .to_string();
            println!(
                "submitted {id}: {} over {} points",
                v.get("kind").and_then(Value::as_str).unwrap_or("?"),
                v.get("points").and_then(Value::as_f64).unwrap_or(0.0) as u64
            );
            if args.has_flag("wait") {
                jobs_wait(&addr, &id, args.has_flag("strict"))
            } else {
                println!("poll with: rumor jobs status {id} --addr {addr}");
                Ok(())
            }
        }
        "list" => {
            let (_, v) = jobs_call(&addr, "GET", "/v1/jobs", None)?;
            let jobs = v.get("jobs").and_then(Value::as_arr).map_or(&[][..], |a| a);
            if jobs.is_empty() {
                println!("no jobs");
            }
            for job in jobs {
                println!("{}", job_status_line(job));
            }
            Ok(())
        }
        "status" => {
            if args.has_flag("wait") {
                jobs_wait(&addr, job_id, args.has_flag("strict"))
            } else {
                let (_, v) = jobs_call(&addr, "GET", &format!("/v1/jobs/{job_id}"), None)?;
                println!("{}", job_status_line(&v));
                let state = v.get("state").and_then(Value::as_str).unwrap_or("");
                if args.has_flag("strict") && matches!(state, "partial" | "failed" | "cancelled") {
                    return Err(CliError::degraded(format!(
                        "job {job_id} is {state} under --strict"
                    )));
                }
                Ok(())
            }
        }
        "results" => {
            let (raw, v) = jobs_call(&addr, "GET", &format!("/v1/jobs/{job_id}/results"), None)?;
            match args.get("out") {
                Some(path) => {
                    // The raw body goes out verbatim: for a finished
                    // campaign it is byte-identical across interrupted
                    // + recovered and uninterrupted runs.
                    std::fs::write(path, raw.as_bytes()).map_err(|e| {
                        CliError::runtime(format!("cannot write results to {path:?}: {e}"))
                    })?;
                    println!(
                        "{} result(s) ({}) written to {path}",
                        v.get("results")
                            .and_then(Value::as_arr)
                            .map_or(0, |a| a.len()),
                        v.get("state").and_then(Value::as_str).unwrap_or("?")
                    );
                }
                None => println!("{raw}"),
            }
            Ok(())
        }
        "cancel" => {
            let (_, v) = jobs_call(&addr, "POST", &format!("/v1/jobs/{job_id}/cancel"), None)?;
            println!(
                "{job_id}: {}",
                v.get("state").and_then(Value::as_str).unwrap_or("?")
            );
            Ok(())
        }
        "resume" => {
            let (_, v) = jobs_call(&addr, "POST", &format!("/v1/jobs/{job_id}/resume"), None)?;
            println!(
                "{job_id}: {}",
                v.get("state").and_then(Value::as_str).unwrap_or("?")
            );
            if args.has_flag("wait") {
                jobs_wait(&addr, job_id, args.has_flag("strict"))
            } else {
                Ok(())
            }
        }
        _ => unreachable!("action validated above"),
    }
}

/// `rumor selftest`: deterministic fault-injection drills for the
/// guarded integrator. Each scenario corrupts the rumor dynamics'
/// right-hand side on a fixed schedule and checks that the fallback
/// chain still delivers a complete trajectory. With `--strict`, any
/// quarantined (extrapolated) window is fatal.
pub fn selftest(args: &Args) -> CliResult {
    use rumor_core::model::RumorModel;
    use rumor_ode::fault::{FaultSchedule, FaultyRhs};
    use rumor_ode::recovery::Guarded;

    let net = load_network(args, false)?;
    let params = model_params(args, net.classes)?;
    let (eps1, eps2) = (args.get_f64("eps1", 0.2)?, args.get_f64("eps2", 0.05)?);
    let tf = args.get_f64("tf", 40.0)?;
    let i0 = args.get_f64("i0", 0.05)?;
    let initial = NetworkState::initial_uniform(params.n_classes(), i0)?;
    let sys = RumorModel::new(&params, ConstantControl::new(eps1, eps2));
    let y0 = initial.to_flat();

    let scenarios: [(&str, FaultSchedule); 3] = [
        (
            "nan-window",
            FaultSchedule::new().nan_at(0.3 * tf, 0.02 * tf),
        ),
        (
            "stiffness-spike",
            FaultSchedule::new().stiffness_spike(0.5 * tf, 0.02 * tf, 200.0),
        ),
        (
            "perturbation-burst",
            FaultSchedule::new().perturbation_burst(0.7 * tf, 0.05 * tf, 0.5, 8.0),
        ),
    ];

    println!(
        "guarded-integrator selftest: {} classes over (0, {tf}], {} scenarios",
        params.n_classes(),
        scenarios.len()
    );
    let mut quarantined = 0usize;
    for (name, schedule) in scenarios {
        let faulty = FaultyRhs::new(&sys, schedule);
        let run = Guarded::new().run(&faulty, 0.0, &y0, tf)?;
        println!(
            "  {name:<20} injections: {:>4}  {}",
            faulty.injections(),
            run.report.summary()
        );
        if !run.report.completed {
            return Err(CliError::runtime(format!(
                "selftest scenario {name} did not complete: {}",
                run.report.summary()
            )));
        }
        quarantined += run.report.quarantined.len();
    }
    if quarantined > 0 && args.has_flag("strict") {
        return Err(CliError::degraded(format!(
            "selftest quarantined {quarantined} window(s) under --strict"
        )));
    }
    println!("selftest passed: all scenarios completed");
    Ok(())
}
