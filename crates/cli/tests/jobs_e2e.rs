//! End-to-end crash-recovery drills for durable campaign jobs, driven
//! entirely through the `rumor` binary: a `serve --jobs-dir` instance
//! is SIGKILLed mid-campaign, restarted on the same directory, and must
//! resume from its durable checkpoint and finish with a result set
//! byte-identical to an uninterrupted control run.
//!
//! The results body deliberately carries no job id or timing, which is
//! what makes the byte-for-byte comparison meaningful.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn rumor(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rumor"))
        .args(args)
        .output()
        .expect("spawn rumor binary")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn temp_dir(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    let dir = std::env::temp_dir().join(format!(
        "rumor_jobs_e2e_{tag}_{}_{nanos}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A `rumor serve --jobs-dir` child whose listening address has been
/// scraped from its startup banner. Killed on drop so a failed test
/// cannot leak servers.
struct ServeChild {
    child: Child,
    addr: String,
}

impl ServeChild {
    fn start(jobs_dir: &Path) -> ServeChild {
        let mut child = Command::new(env!("CARGO_BIN_EXE_rumor"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--jobs-dir",
                jobs_dir.to_str().unwrap(),
                "--threads",
                "2",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn rumor serve");
        let out = child.stdout.take().unwrap();
        let mut reader = BufReader::new(out);
        let mut addr = None;
        for _ in 0..20 {
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                break;
            }
            if let Some(rest) = line.split("listening on http://").nth(1) {
                addr = Some(rest.split_whitespace().next().unwrap().to_string());
                break;
            }
        }
        // Keep draining the pipe so the server can never block on it.
        std::thread::spawn(move || {
            let _ = std::io::copy(&mut reader, &mut std::io::sink());
        });
        ServeChild {
            child,
            addr: addr.expect("serve did not print its listening banner"),
        }
    }

    /// SIGKILL — no drain, no shutdown hooks, exactly the crash the
    /// durability layer is specified against.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ServeChild {
    fn drop(&mut self) {
        self.kill();
    }
}

/// The completed-point count scraped from `rumor jobs status` output
/// ("job-000001 [threshold_sweep]: running, 137/1000 points, ...").
fn completed_points(addr: &str, id: &str) -> Option<(u64, String)> {
    let out = rumor(&["jobs", "status", id, "--addr", addr]);
    if out.status.code() != Some(0) {
        return None;
    }
    let text = stdout(&out);
    let state = text
        .split(": ")
        .nth(1)?
        .split(',')
        .next()?
        .trim()
        .to_string();
    let done = text.split(", ").nth(1)?.split('/').next()?.parse().ok()?;
    Some((done, state))
}

fn submit(addr: &str, spec: &Path) -> String {
    let out = rumor(&[
        "jobs",
        "submit",
        "--addr",
        addr,
        "--spec",
        spec.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let id = text
        .split("submitted ")
        .nth(1)
        .and_then(|rest| rest.split(':').next())
        .expect("submit output carries the job id");
    id.to_string()
}

fn wait_done(addr: &str, id: &str, timeout: Duration) -> String {
    let start = Instant::now();
    loop {
        if let Some((_, state)) = completed_points(addr, id) {
            if ["done", "partial", "failed", "cancelled"].contains(&state.as_str()) {
                return state;
            }
        }
        assert!(
            start.elapsed() < timeout,
            "job {id} did not reach a terminal state within {timeout:?}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

fn results_body(addr: &str, id: &str) -> Vec<u8> {
    let out = rumor(&["jobs", "results", id, "--addr", addr]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    out.stdout
}

/// Acceptance drill: SIGKILL mid-campaign, restart, byte-identical
/// results. The campaign is a 1000-point threshold sweep throttled just
/// enough that the kill reliably lands in the middle.
#[test]
fn sigkill_mid_campaign_resumes_and_matches_uninterrupted_run() {
    let spec = temp_dir("spec").join("campaign.json");
    std::fs::write(
        &spec,
        r#"{"kind": "threshold_sweep", "points": 1000, "throttle_ms": 2,
            "sweep": {"from": 0.01, "to": 0.05},
            "base": {"network": {"nodes": 300, "k_max": 25, "mean_degree": 4}}}"#,
    )
    .unwrap();

    // Control: the same campaign run start-to-finish, never interrupted.
    let control_dir = temp_dir("control");
    let control = ServeChild::start(&control_dir);
    let control_id = submit(&control.addr, &spec);
    assert_eq!(
        wait_done(&control.addr, &control_id, Duration::from_secs(120)),
        "done"
    );
    let expected = results_body(&control.addr, &control_id);
    drop(control);

    // Interrupted: kill -9 once the campaign is demonstrably mid-flight.
    let crash_dir = temp_dir("crash");
    let mut victim = ServeChild::start(&crash_dir);
    let id = submit(&victim.addr, &spec);
    let start = Instant::now();
    loop {
        if let Some((done, state)) = completed_points(&victim.addr, &id) {
            assert_ne!(state, "done", "campaign finished before the kill landed");
            if done >= 50 {
                break;
            }
        }
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "campaign made no observable progress before the kill"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    victim.kill();

    // Restart on the same directory: recovery re-queues the interrupted
    // job and it runs to completion with no client intervention.
    let revived = ServeChild::start(&crash_dir);
    assert_eq!(
        wait_done(&revived.addr, &id, Duration::from_secs(120)),
        "done"
    );
    let recovered = results_body(&revived.addr, &id);
    assert_eq!(
        recovered, expected,
        "recovered campaign must be byte-identical to the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(control_dir);
    let _ = std::fs::remove_dir_all(crash_dir);
}

/// Persistent faults exhaust their retry budget, quarantine, and leave
/// the job `partial` with an explicit manifest — visible both through
/// the CLI status line and the results body, and fatal under --strict.
#[test]
fn persistent_faults_degrade_to_partial_with_quarantine_manifest() {
    let dir = temp_dir("faults");
    let spec = dir.join("campaign.json");
    std::fs::write(
        &spec,
        r#"{"kind": "threshold_sweep", "points": 8,
            "inject": {"transient": [1], "persistent": [3, 6]},
            "base": {"network": {"nodes": 300, "k_max": 25, "mean_degree": 4}}}"#,
    )
    .unwrap();
    let server = ServeChild::start(&dir);

    // --wait --strict: the partial outcome is reported and then fatal.
    let out = rumor(&[
        "jobs",
        "submit",
        "--addr",
        &server.addr,
        "--spec",
        spec.to_str().unwrap(),
        "--wait",
        "--strict",
    ]);
    assert_eq!(out.status.code(), Some(4), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("partial"), "stdout: {}", stdout(&out));
    assert!(
        stdout(&out).contains("2 quarantined"),
        "stdout: {}",
        stdout(&out)
    );

    let body = String::from_utf8(results_body(&server.addr, "job-000001")).unwrap();
    assert!(body.contains(r#""state":"partial""#), "body: {body}");
    assert!(body.contains(r#""quarantined":[3,6]"#), "body: {body}");
    // The transient point retried into the result set; the quarantined
    // points are absent from it.
    assert!(body.contains(r#"{"point":1,"#), "body: {body}");
    assert!(!body.contains(r#"{"point":3,"#), "body: {body}");

    let _ = std::fs::remove_dir_all(dir);
}
