//! End-to-end tests of the `rumor` binary: exit-code taxonomy, the
//! `--strict` promotion of degraded results, and the fault-injection
//! selftest.

use std::process::{Command, Output};

fn rumor(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rumor"))
        .args(args)
        .output()
        .expect("spawn rumor binary")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn help_exits_zero() {
    let out = rumor(&["help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("EXIT CODES"));
}

#[test]
fn usage_errors_exit_two() {
    let out = rumor(&["simulate", "--no-such-option", "1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown option"));

    let out = rumor(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown command"));

    let out = rumor(&[]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn invalid_config_exits_three() {
    let out = rumor(&["optimize", "--nodes", "200", "--epsmax", "-1"]);
    assert_eq!(out.status.code(), Some(3));
    assert!(stderr(&out).contains("control bounds"));
}

#[test]
fn selftest_reports_recovery_and_respects_strict() {
    // The NaN scenario must engage the fallback chain, yet the run
    // completes and exits 0 without --strict.
    let base = ["selftest", "--nodes", "200", "--tf", "20"];
    let out = rumor(&base);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("fallback engagement"), "stdout: {text}");
    assert!(text.contains("selftest passed"));

    // The quarantined NaN window becomes fatal under --strict: exit 4.
    let mut strict = base.to_vec();
    strict.push("--strict");
    let out = rumor(&strict);
    assert_eq!(out.status.code(), Some(4), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("quarantined"));
}

#[test]
fn strict_turns_degraded_sweep_into_exit_four() {
    // Starve the sweep of iterations so it cannot converge; the watchdog
    // degrades to its best checkpoint, which --strict makes fatal.
    let args = [
        "optimize",
        "--nodes",
        "200",
        "--tf",
        "20",
        "--max-iters",
        "2",
        "--strict",
    ];
    let out = rumor(&args);
    assert_eq!(out.status.code(), Some(4), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("degraded"));
    assert!(stdout(&out).contains("watchdog"));

    // Without --strict the same degraded run is an ordinary success.
    let out = rumor(&args[..args.len() - 1]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("DEGRADED"));
}

#[test]
fn serve_rejects_bad_configuration_with_exit_three() {
    let out = rumor(&["serve", "--queue-depth", "0"]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("queue_depth"));

    let out = rumor(&["serve", "--addr", ""]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("addr"));
}

#[test]
fn serve_reports_bind_failure_with_exit_one() {
    // An unbindable address is a runtime failure, not a config error:
    // the configuration was well-formed, the environment refused it.
    let out = rumor(&["serve", "--addr", "256.256.256.256:0"]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("256.256.256.256"));
}

#[test]
fn serve_rejects_unknown_options_with_exit_two() {
    let out = rumor(&["serve", "--listen", "127.0.0.1:0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown option"));
}

#[test]
fn bad_log_format_exits_two() {
    let out = rumor(&["simulate", "--nodes", "200", "--log-format", "yaml"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("--log-format"));
}

#[test]
fn trace_out_writes_json_lines_without_touching_stdout() {
    let path = std::env::temp_dir().join(format!("rumor_cli_trace_{}.jsonl", std::process::id()));
    let out = rumor(&[
        "simulate",
        "--nodes",
        "300",
        "--tf",
        "5",
        "--trace-out",
        path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    // The human-facing report is unchanged by tracing...
    assert!(stdout(&out).contains("mean I"), "stdout: {}", stdout(&out));
    // ...and the spans landed in the file (JSON is the --trace-out
    // default when no --log-format is given), not on stderr.
    let text = std::fs::read_to_string(&path).expect("trace file exists");
    let _ = std::fs::remove_file(&path);
    assert!(!text.is_empty(), "trace file is empty");
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
    }
    assert!(text.contains("\"name\":\"ode."), "no ODE spans: {text}");
    assert!(!stderr(&out).contains("\"type\":\"span\""));
}

#[test]
fn log_format_text_goes_to_stderr() {
    let out = rumor(&[
        "simulate",
        "--nodes",
        "300",
        "--tf",
        "5",
        "--log-format",
        "text",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("[span] ode."),
        "stderr: {}",
        stderr(&out)
    );
    // Trace records never pollute stdout (which carries the report).
    assert!(!stdout(&out).contains("[span]"));
}
