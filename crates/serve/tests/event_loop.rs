//! End-to-end tests of the epoll backend over real sockets.
//!
//! The mirror image of `http_service.rs`, but with
//! `io_backend: epoll`: the same admission-control statuses (`503`
//! shed, `413` body cap, `408` slowloris, `504` deadline), byte-exact
//! cache identity **across backends**, plus what only the event loop
//! offers — keep-alive connections, fragmented request delivery, the
//! chunked job-results stream, and slot reclamation when a streaming
//! client is killed mid-chunk.

#![cfg(target_os = "linux")]

use rumor_serve::{serve, IoBackend, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A parsed raw response.
struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn epoll_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        io_backend: IoBackend::Epoll,
        threads: Some(2),
        ..ServeConfig::default()
    }
}

fn start(config: ServeConfig) -> Server {
    serve(&config).expect("bind ephemeral server")
}

fn small_sim_body() -> &'static str {
    r#"{"network": {"nodes": 300, "k_max": 25, "mean_degree": 4}, "tf": 10, "n_out": 41}"#
}

fn connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
}

/// Writes one request on an open connection. `close` picks the
/// `Connection:` header.
fn send_request(stream: &mut TcpStream, method: &str, path: &str, body: &str, close: bool) {
    let connection = if close { "close" } else { "keep-alive" };
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: {connection}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).expect("send request");
}

/// Reads exactly one `Content-Length`-framed response off an open
/// (possibly keep-alive) connection.
fn read_response(stream: &mut TcpStream) -> Response {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "connection closed mid-head: {buf:?}");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end]).expect("utf8 head");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers: Vec<(String, String)> = lines
        .map(|line| {
            let (k, v) = line.split_once(':').expect("header line");
            (k.trim().to_string(), v.trim().to_string())
        })
        .collect();
    let content_length: usize = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| v.parse().expect("numeric content-length"))
        .expect("content-length header");
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "connection closed mid-body");
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Response {
        status,
        headers,
        body,
    }
}

/// One-shot request on a fresh connection (`Connection: close`).
fn request(server: &Server, method: &str, path: &str, body: &str) -> Response {
    let mut stream = connect(server);
    send_request(&mut stream, method, path, body, true);
    read_response(&mut stream)
}

/// Decodes a chunked transfer body into its chunk payloads.
fn decode_chunks(mut raw: &[u8]) -> Vec<Vec<u8>> {
    let mut chunks = Vec::new();
    loop {
        let line_end = raw
            .windows(2)
            .position(|w| w == b"\r\n")
            .expect("chunk size line");
        let size = usize::from_str_radix(
            std::str::from_utf8(&raw[..line_end]).expect("utf8 chunk size"),
            16,
        )
        .expect("hex chunk size");
        raw = &raw[line_end + 2..];
        if size == 0 {
            return chunks;
        }
        chunks.push(raw[..size].to_vec());
        assert_eq!(&raw[size..size + 2], b"\r\n", "chunk terminator");
        raw = &raw[size + 2..];
    }
}

/// A unique, freshly created jobs directory for one test.
fn temp_jobs_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rumor-serve-epoll-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("create jobs dir");
    dir
}

fn submit_job(server: &Server, body: &str) -> String {
    let submitted = request(server, "POST", "/v1/jobs", body);
    assert_eq!(submitted.status, 200, "body: {}", submitted.body_text());
    submitted
        .body_text()
        .split("\"id\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("job id in response")
        .to_string()
}

#[test]
fn compute_and_cache_are_byte_identical_across_backends() {
    let threads_server = start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: Some(2),
        ..ServeConfig::default()
    });
    let epoll_server = start(epoll_config());

    let from_threads = request(&threads_server, "POST", "/v1/simulate", small_sim_body());
    assert_eq!(from_threads.status, 200, "{}", from_threads.body_text());
    let cold = request(&epoll_server, "POST", "/v1/simulate", small_sim_body());
    assert_eq!(cold.status, 200, "{}", cold.body_text());
    assert_eq!(cold.header("X-Cache"), Some("miss"));
    // Identical bytes from either connection layer.
    assert_eq!(cold.body, from_threads.body);

    let warm = request(&epoll_server, "POST", "/v1/simulate", small_sim_body());
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("X-Cache"), Some("hit"));
    assert_eq!(warm.body, cold.body);

    threads_server.shutdown_and_join();
    epoll_server.shutdown_and_join();
}

#[test]
fn keep_alive_connection_serves_sequential_requests() {
    let server = start(epoll_config());
    let mut stream = connect(&server);
    for _ in 0..3 {
        send_request(&mut stream, "GET", "/healthz", "", false);
        let response = read_response(&mut stream);
        assert_eq!(response.status, 200);
        assert_eq!(response.header("Connection"), Some("keep-alive"));
        assert_eq!(response.body_text(), r#"{"status":"ok"}"#);
    }
    // The whole sequence used one connection: one admission.
    let metrics = request(&server, "GET", "/metrics", "").body_text();
    assert!(
        metrics.contains("rumor_serve_requests_total{endpoint=\"healthz\"} 3"),
        "{metrics}"
    );
    server.shutdown_and_join();
}

#[test]
fn fragmented_request_bytes_reassemble() {
    let server = start(epoll_config());
    let mut stream = connect(&server);
    // Header split mid-line, blank line split between CR and LF, body
    // split mid-byte: the incremental parser must reassemble all of it.
    let body = small_sim_body();
    let head = format!(
        "POST /v1/simulate HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r",
        body.len()
    );
    let (head_a, head_b) = head.split_at(17);
    let (body_a, body_b) = body.split_at(body.len() / 2);
    for fragment in [head_a, head_b, "\n", body_a, body_b] {
        stream
            .write_all(fragment.as_bytes())
            .expect("send fragment");
        std::thread::sleep(Duration::from_millis(30));
    }
    let response = read_response(&mut stream);
    assert_eq!(response.status, 200, "{}", response.body_text());
    server.shutdown_and_join();
}

#[test]
fn connection_cap_sheds_with_503() {
    let server = start(ServeConfig {
        max_connections: 2,
        ..epoll_config()
    });
    // Two keep-alive connections occupy the whole cap...
    let mut held_a = connect(&server);
    send_request(&mut held_a, "GET", "/healthz", "", false);
    assert_eq!(read_response(&mut held_a).status, 200);
    let mut held_b = connect(&server);
    send_request(&mut held_b, "GET", "/healthz", "", false);
    assert_eq!(read_response(&mut held_b).status, 200);
    // ...so the third is shed at accept with the standard 503.
    let mut shed = connect(&server);
    let response = read_response(&mut shed);
    assert_eq!(response.status, 503);
    assert_eq!(response.header("Retry-After"), Some("1"));
    assert!(response.body_text().contains("at capacity"));
    drop(shed);

    // Releasing a held slot readmits new connections.
    drop(held_a);
    let released = Instant::now();
    loop {
        let mut retry = connect(&server);
        send_request(&mut retry, "GET", "/healthz", "", true);
        if read_response(&mut retry).status == 200 {
            break;
        }
        assert!(
            released.elapsed() < Duration::from_secs(5),
            "slot was not reclaimed"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    server.shutdown_and_join();
}

#[test]
fn slowloris_partial_request_answers_408() {
    let server = start(ServeConfig {
        io_timeout_ms: 200,
        ..epoll_config()
    });
    let mut stream = connect(&server);
    stream.write_all(b"GET /hea").expect("send partial");
    let response = read_response(&mut stream);
    assert_eq!(response.status, 408);
    assert!(response.body_text().contains("timed out"));
    // An *idle* keep-alive connection is exempt from the sweep: park
    // one well past the I/O timeout, then use it.
    let mut parked = connect(&server);
    send_request(&mut parked, "GET", "/healthz", "", false);
    assert_eq!(read_response(&mut parked).status, 200);
    std::thread::sleep(Duration::from_millis(600));
    send_request(&mut parked, "GET", "/healthz", "", false);
    assert_eq!(read_response(&mut parked).status, 200);
    server.shutdown_and_join();
}

#[test]
fn oversized_body_rejected_with_413_from_the_head() {
    let server = start(ServeConfig {
        max_body_bytes: 1024,
        ..epoll_config()
    });
    let mut stream = connect(&server);
    // Declared 64 KiB body, none of it sent: the head alone decides.
    stream
        .write_all(b"POST /v1/simulate HTTP/1.1\r\nHost: test\r\nContent-Length: 65536\r\n\r\n")
        .expect("send head");
    let response = read_response(&mut stream);
    assert_eq!(response.status, 413);
    assert!(response.body_text().contains("exceeds the 1024-byte cap"));
    server.shutdown_and_join();
}

#[test]
fn deadline_covers_request_read_time_with_504() {
    let server = start(ServeConfig {
        deadline_ms: 100,
        ..epoll_config()
    });
    let mut stream = connect(&server);
    let body = small_sim_body();
    let head = format!(
        "POST /v1/simulate HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("send head");
    // Stall past the deadline before delivering the body; the deadline
    // clock started at the first request byte.
    std::thread::sleep(Duration::from_millis(300));
    stream.write_all(body.as_bytes()).expect("send body");
    let response = read_response(&mut stream);
    assert_eq!(response.status, 504, "{}", response.body_text());
    assert!(response.body_text().contains("deadline exceeded"));
    server.shutdown_and_join();
}

#[test]
fn job_stream_delivers_points_then_the_results_summary() {
    let dir = temp_jobs_dir("stream");
    let server = start(ServeConfig {
        jobs_dir: Some(dir.to_string_lossy().into_owned()),
        ..epoll_config()
    });
    let id = submit_job(
        &server,
        r#"{"kind": "threshold_sweep", "points": 3, "throttle_ms": 50,
            "sweep": {"from": 0.02, "to": 0.03},
            "base": {"network": {"nodes": 300, "k_max": 25, "mean_degree": 4}}}"#,
    );

    // Open the stream while the job is still running.
    let mut stream = connect(&server);
    send_request(
        &mut stream,
        "GET",
        &format!("/v1/jobs/{id}/stream"),
        "",
        false,
    );
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read whole stream");
    let text = String::from_utf8_lossy(&raw);
    assert!(
        text.starts_with("HTTP/1.1 200 OK\r\n"),
        "stream head: {text}"
    );
    assert!(text.contains("Transfer-Encoding: chunked\r\n"), "{text}");

    let body_start = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("stream head end")
        + 4;
    let chunks = decode_chunks(&raw[body_start..]);
    // Three point chunks plus the terminal summary chunk.
    assert_eq!(chunks.len(), 4, "{text}");
    for (i, chunk) in chunks[..3].iter().enumerate() {
        let line = String::from_utf8_lossy(chunk);
        assert!(line.ends_with('\n'), "chunk is a line: {line:?}");
        assert!(line.contains(&format!("\"point\":{i}")), "{line}");
    }
    let summary = String::from_utf8_lossy(&chunks[3]);
    assert!(summary.contains("\"state\":\"done\""), "{summary}");
    assert!(summary.contains("\"completed\":3"), "{summary}");
    assert!(summary.contains("\"manifest\":[]"), "{summary}");

    // Every streamed line also appears verbatim in the refetched
    // results body: a stream consumer and a later poller agree.
    let results = request(&server, "GET", &format!("/v1/jobs/{id}/results"), "");
    assert_eq!(results.status, 200);
    let results_body = results.body_text();
    for chunk in &chunks[..3] {
        let row = String::from_utf8_lossy(chunk);
        assert!(results_body.contains(row.trim_end()), "{results_body}");
    }
    assert!(
        results_body.starts_with(summary.trim_end().trim_end_matches('}')),
        "terminal summary is a prefix of the results body:\n{summary}\n{results_body}"
    );

    // An unknown job answers a plain 404, not a dead stream.
    assert_eq!(
        request(&server, "GET", "/v1/jobs/job-999999/stream", "").status,
        404
    );

    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn partial_job_stream_summary_carries_the_quarantine_manifest() {
    let dir = temp_jobs_dir("stream-partial");
    let server = start(ServeConfig {
        jobs_dir: Some(dir.to_string_lossy().into_owned()),
        ..epoll_config()
    });
    // Point 1 is poison: the campaign finishes partial with a manifest.
    let id = submit_job(
        &server,
        r#"{"kind": "threshold_sweep", "points": 3,
            "sweep": {"from": 0.02, "to": 0.03},
            "inject": {"persistent": [1]},
            "base": {"network": {"nodes": 300, "k_max": 25, "mean_degree": 4}}}"#,
    );
    let mut stream = connect(&server);
    send_request(
        &mut stream,
        "GET",
        &format!("/v1/jobs/{id}/stream"),
        "",
        false,
    );
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read whole stream");
    let body_start = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("stream head end")
        + 4;
    let chunks = decode_chunks(&raw[body_start..]);
    let summary = String::from_utf8_lossy(chunks.last().expect("summary chunk"));
    assert!(summary.contains("\"state\":\"partial\""), "{summary}");
    assert!(summary.contains("\"quarantined\":[1]"), "{summary}");
    assert!(summary.contains("\"index\":1"), "{summary}");
    assert!(summary.contains("\"attempts\":"), "{summary}");
    // The refetched results body carries the identical manifest.
    let results_body = request(&server, "GET", &format!("/v1/jobs/{id}/results"), "").body_text();
    let manifest = summary
        .split("\"manifest\":")
        .nth(1)
        .and_then(|rest| rest.split(",\"missing\"").next())
        .expect("manifest in summary");
    assert!(results_body.contains(manifest), "{results_body}");
    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_stream_client_frees_its_slot() {
    let dir = temp_jobs_dir("stream-kill");
    let server = start(ServeConfig {
        jobs_dir: Some(dir.to_string_lossy().into_owned()),
        max_connections: 2,
        ..epoll_config()
    });
    // A slow campaign keeps the stream alive for several seconds.
    let id = submit_job(
        &server,
        r#"{"kind": "threshold_sweep", "points": 40, "throttle_ms": 100,
            "base": {"network": {"nodes": 300, "k_max": 25, "mean_degree": 4}}}"#,
    );
    let mut stream = connect(&server);
    send_request(
        &mut stream,
        "GET",
        &format!("/v1/jobs/{id}/stream"),
        "",
        false,
    );
    // Read the head plus a first chunk, then vanish mid-stream.
    let mut first = [0u8; 256];
    let n = stream.read(&mut first).expect("read stream head");
    assert!(n > 0);
    drop(stream);

    // The loop notices on its next chunk write and reclaims the slot:
    // with the cap at 2, new one-shot requests must keep succeeding.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let health = request(&server, "GET", "/healthz", "");
        if health.status == 200 {
            let metrics = request(&server, "GET", "/metrics", "").body_text();
            // Only the /metrics connection itself is registered.
            if metrics.contains("rumor_serve_epoll_connections 1") {
                break;
            }
        }
        assert!(Instant::now() < deadline, "stream slot was never reclaimed");
        std::thread::sleep(Duration::from_millis(50));
    }
    // Stop the campaign so shutdown does not wait out 40 throttled points.
    assert_eq!(
        request(&server, "POST", &format!("/v1/jobs/{id}/cancel"), "").status,
        200
    );
    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_with_parked_keep_alive_connections_does_not_hang() {
    let server = start(epoll_config());
    let mut parked = connect(&server);
    send_request(&mut parked, "GET", "/healthz", "", false);
    assert_eq!(read_response(&mut parked).status, 200);
    // The connection stays open and idle; drain must close it rather
    // than wait for it.
    server.shutdown_and_join();
}
