//! Property tests of the JSON wire layer and the canonical request
//! forms: `parse ∘ serialize = id` on arbitrary values, and
//! `from_value ∘ canonical = id` on the typed request structs (the
//! invariant the result cache's exactness rests on).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rumor_serve::api::{EnsembleRequest, OptimizeRequest, SimulateRequest, ThresholdRequest};
use rumor_serve::wire::{parse, serialize, Value};

/// Generates an arbitrary JSON value with bounded depth and width. The
/// vendored proptest has no recursive strategy combinators, so the
/// recursion is hand-rolled from a seeded RNG (deterministic per case).
fn arbitrary_value(rng: &mut StdRng, depth: usize) -> Value {
    let pick = if depth == 0 {
        rng.gen_range(0usize..4) // leaves only
    } else {
        rng.gen_range(0usize..6)
    };
    match pick {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_range(0u32..2) == 0),
        2 => Value::Num(arbitrary_number(rng)),
        3 => Value::Str(arbitrary_string(rng)),
        4 => {
            let n = rng.gen_range(0usize..5);
            Value::Arr((0..n).map(|_| arbitrary_value(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0usize..5);
            let mut members: Vec<(String, Value)> = Vec::with_capacity(n);
            for i in 0..n {
                // Suffix with the index so keys never collide (the
                // parser rejects duplicate keys by design).
                let key = format!("{}_{i}", arbitrary_string(rng));
                let value = arbitrary_value(rng, depth - 1);
                members.push((key, value));
            }
            Value::Obj(members)
        }
    }
}

fn arbitrary_number(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0u32..5) {
        0 => rng.gen_range(0u64..2_000_000) as f64 - 1_000_000.0,
        1 => rng.gen_range(-1.0..1.0),
        2 => rng.gen_range(-1e12..1e12),
        3 => rng.gen_range(0.0..1.0) * 1e-200,
        _ => rng.gen_range(-1.0..1.0) * 1e200,
    }
}

fn arbitrary_string(rng: &mut StdRng) -> String {
    let n = rng.gen_range(0usize..12);
    (0..n)
        .map(|_| match rng.gen_range(0u32..6) {
            0 => char::from(rng.gen_range(b'a'..=b'z')),
            1 => char::from(rng.gen_range(b'A'..=b'Z')),
            2 => '"',
            3 => '\\',
            4 => char::from_u32(rng.gen_range(1u32..0x20)).unwrap(),
            _ => ['é', '漢', '😀', '\u{7f}', ' '][rng.gen_range(0usize..5)],
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_serialize_round_trips_arbitrary_values(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let value = arbitrary_value(&mut rng, 4);
        let json = serialize(&value);
        let reparsed = parse(&json);
        prop_assert_eq!(reparsed.as_ref(), Ok(&value), "json: {}", json);
        // Serialization is a pure function: a second pass is identical.
        prop_assert_eq!(serialize(&value), json);
    }

    #[test]
    fn simulate_request_canonical_form_round_trips(
        eps1 in 0.0..1.0_f64,
        eps2 in 0.0..1.0_f64,
        tf in 0.5..500.0_f64,
        i0 in 0.001..0.9_f64,
        nodes in 10usize..5_000,
    ) {
        let body = format!(
            r#"{{"eps1": {eps1}, "eps2": {eps2}, "tf": {tf}, "i0": {i0},
                "network": {{"nodes": {nodes}, "k_max": {}, "mean_degree": 2}}}}"#,
            (nodes / 2).max(2)
        );
        let req = SimulateRequest::from_value(&parse(&body).unwrap()).unwrap();
        let round = SimulateRequest::from_value(&req.canonical()).unwrap();
        prop_assert_eq!(&req, &round);
        // And the canonical bytes are stable across the round trip.
        prop_assert_eq!(serialize(&req.canonical()), serialize(&round.canonical()));
    }

    #[test]
    fn threshold_request_canonical_form_round_trips(
        eps1 in 0.0..1.0_f64,
        eps2 in 0.0..1.0_f64,
        alpha in 0.0..0.5_f64,
        lambda0 in 0.001..1.0_f64,
    ) {
        let body = format!(
            r#"{{"eps1": {eps1}, "eps2": {eps2}, "model": {{"alpha": {alpha}, "lambda0": {lambda0}}}}}"#
        );
        let req = ThresholdRequest::from_value(&parse(&body).unwrap()).unwrap();
        let round = ThresholdRequest::from_value(&req.canonical()).unwrap();
        prop_assert_eq!(&req, &round);
    }

    #[test]
    fn optimize_request_canonical_form_round_trips(
        tf in 1.0..200.0_f64,
        c1 in 0.1..100.0_f64,
        c2 in 0.1..100.0_f64,
        eps_max in 0.05..1.0_f64,
        max_iters in 1usize..2_000,
    ) {
        let body = format!(
            r#"{{"tf": {tf}, "c1": {c1}, "c2": {c2}, "eps_max": {eps_max}, "max_iters": {max_iters}}}"#
        );
        let req = OptimizeRequest::from_value(&parse(&body).unwrap()).unwrap();
        let round = OptimizeRequest::from_value(&req.canonical()).unwrap();
        prop_assert_eq!(&req, &round);
    }

    #[test]
    fn ensemble_request_canonical_form_round_trips(
        tf in 0.5..100.0_f64,
        dt in 0.01..1.0_f64,
        runs in 1usize..128,
        quorum in 0.05..1.0_f64,
    ) {
        let body = format!(
            r#"{{"tf": {tf}, "dt": {dt}, "runs": {runs}, "quorum": {quorum},
                "network": {{"nodes": 500, "k_max": 40, "mean_degree": 4}}}}"#
        );
        let req = EnsembleRequest::from_value(&parse(&body).unwrap()).unwrap();
        let round = EnsembleRequest::from_value(&req.canonical()).unwrap();
        prop_assert_eq!(&req, &round);
    }
}
