//! End-to-end tests of the HTTP service over real sockets.
//!
//! A server is bound on an ephemeral port and driven with a raw
//! `std::net::TcpStream` client — no HTTP library on either side — so
//! these tests exercise the exact byte-level protocol a curl user sees:
//! liveness, the compute endpoints, exact cache hits, the body cap, the
//! bounded-queue `503` under saturation, deadlines, and graceful
//! drain-on-shutdown.

use rumor_serve::{serve, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed raw response.
struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn start(config: ServeConfig) -> Server {
    serve(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..config
    })
    .expect("bind ephemeral server")
}

fn small_sim_body() -> &'static str {
    r#"{"network": {"nodes": 300, "k_max": 25, "mean_degree": 4}, "tf": 10, "n_out": 41}"#
}

/// Sends raw request bytes and reads the whole response (the server
/// closes the connection after each exchange).
fn exchange(server: &Server, raw: &[u8]) -> Response {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(raw).expect("send request");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read response");
    parse_response(&buf)
}

fn request(server: &Server, method: &str, path: &str, body: &str) -> Response {
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    exchange(server, raw.as_bytes())
}

fn parse_response(buf: &[u8]) -> Response {
    let head_end = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete header block");
    let head = std::str::from_utf8(&buf[..head_end]).expect("utf8 head");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .map(|line| {
            let (k, v) = line.split_once(':').expect("header line");
            (k.trim().to_string(), v.trim().to_string())
        })
        .collect();
    Response {
        status,
        headers,
        body: buf[head_end + 4..].to_vec(),
    }
}

#[test]
fn healthz_and_metrics_respond() {
    let server = start(ServeConfig::default());
    let health = request(&server, "GET", "/healthz", "");
    assert_eq!(health.status, 200);
    assert_eq!(health.body_text(), r#"{"status":"ok"}"#);

    let metrics = request(&server, "GET", "/metrics", "");
    assert_eq!(metrics.status, 200);
    assert!(metrics.body_text().contains("rumor_serve_admitted_total"));
    server.shutdown_and_join();
}

#[test]
fn simulate_computes_and_repeats_from_cache_byte_identically() {
    let server = start(ServeConfig::default());
    let cold = request(&server, "POST", "/v1/simulate", small_sim_body());
    assert_eq!(cold.status, 200, "body: {}", cold.body_text());
    assert_eq!(cold.header("X-Cache"), Some("miss"));
    let text = cold.body_text();
    assert!(text.contains("\"times\""), "body: {text}");
    assert!(text.contains("\"r0\""), "body: {text}");

    // Same request, different field order and whitespace: the canonical
    // key must match and the cached body must be byte-identical.
    let reordered =
        r#"{ "n_out": 41, "tf": 10, "network": {"mean_degree": 4, "nodes": 300, "k_max": 25} }"#;
    let hit = request(&server, "POST", "/v1/simulate", reordered);
    assert_eq!(hit.status, 200);
    assert_eq!(hit.header("X-Cache"), Some("hit"));
    assert_eq!(hit.body, cold.body, "cache hit must be byte-identical");

    let metrics = request(&server, "GET", "/metrics", "").body_text();
    assert!(
        metrics.contains("rumor_serve_cache_hits_total 1"),
        "metrics: {metrics}"
    );
    assert!(metrics.contains("rumor_serve_cache_misses_total 1"));
    server.shutdown_and_join();
}

#[test]
fn threshold_optimize_and_ensemble_answer() {
    let server = start(ServeConfig::default());
    let net = r#"{"network": {"nodes": 300, "k_max": 25, "mean_degree": 4}"#;

    let threshold = request(&server, "POST", "/v1/threshold", &format!("{net}}}"));
    assert_eq!(threshold.status, 200, "body: {}", threshold.body_text());
    let text = threshold.body_text();
    assert!(text.contains("\"r0\""));
    assert!(text.contains("\"consistent_with_r0\":true"), "body: {text}");

    let optimize = request(
        &server,
        "POST",
        "/v1/optimize",
        &format!("{net}, \"tf\": 20, \"max_iters\": 40}}"),
    );
    assert_eq!(optimize.status, 200, "body: {}", optimize.body_text());
    let text = optimize.body_text();
    assert!(text.contains("\"schedule\""), "body: {text}");
    assert!(text.contains("\"cost\""), "body: {text}");

    let ensemble = request(
        &server,
        "POST",
        "/v1/ensemble",
        r#"{"network": {"nodes": 200, "k_max": 20, "mean_degree": 4}, "tf": 3, "runs": 2}"#,
    );
    assert_eq!(ensemble.status, 200, "body: {}", ensemble.body_text());
    let text = ensemble.body_text();
    assert!(text.contains("\"i_mean\""), "body: {text}");
    assert!(text.contains("\"max_deviation_vs_ode\""), "body: {text}");
    server.shutdown_and_join();
}

#[test]
fn two_rumor_and_tie_strength_kinds_answer_and_cache() {
    let server = start(ServeConfig::default());

    // Two-rumor simulate: compartment series under the model's own
    // names, served through the same canonical-form cache.
    let two_body = r#"{"network": {"nodes": 300, "k_max": 25, "mean_degree": 4},
        "model": {"kind": "two_rumor", "gamma1": 0.1}, "tf": 10, "n_out": 41}"#;
    let cold = request(&server, "POST", "/v1/simulate", two_body);
    assert_eq!(cold.status, 200, "body: {}", cold.body_text());
    assert_eq!(cold.header("X-Cache"), Some("miss"));
    let text = cold.body_text();
    assert!(text.contains("\"kind\":\"two_rumor\""), "body: {text}");
    assert!(text.contains("\"mean_i1\""), "body: {text}");
    assert!(text.contains("\"mean_i2\""), "body: {text}");

    // Same request, reordered fields: byte-identical cache hit.
    let reordered = r#"{"n_out": 41, "tf": 10,
        "model": {"gamma1": 0.1, "kind": "two_rumor"},
        "network": {"mean_degree": 4, "k_max": 25, "nodes": 300}}"#;
    let hit = request(&server, "POST", "/v1/simulate", reordered);
    assert_eq!(hit.status, 200);
    assert_eq!(hit.header("X-Cache"), Some("hit"));
    assert_eq!(hit.body, cold.body, "cache hit must be byte-identical");

    // Tie-strength simulate keeps the paper's S/I/R shape.
    let tied = request(
        &server,
        "POST",
        "/v1/simulate",
        r#"{"network": {"nodes": 300, "k_max": 25, "mean_degree": 4},
            "model": {"kind": "tie_strength", "beta": 0.5}, "tf": 10, "n_out": 41}"#,
    );
    assert_eq!(tied.status, 200, "body: {}", tied.body_text());
    let text = tied.body_text();
    assert!(text.contains("\"kind\":\"tie_strength\""), "body: {text}");
    assert!(text.contains("\"mean_i\""), "body: {text}");

    // Two-rumor optimize: the multi-control sweep's schedule carries
    // the model's channel names.
    let optimized = request(
        &server,
        "POST",
        "/v1/optimize",
        r#"{"network": {"nodes": 300, "k_max": 25, "mean_degree": 4},
            "model": {"kind": "two_rumor"},
            "tf": 15, "eps_max": 0.2, "max_iters": 60}"#,
    );
    assert_eq!(optimized.status, 200, "body: {}", optimized.body_text());
    let text = optimized.body_text();
    assert!(text.contains("\"source\":\"multi_fbsm\""), "body: {text}");
    assert!(text.contains("\"truth\""), "body: {text}");
    assert!(text.contains("\"blocking\""), "body: {text}");

    // The threshold theory and the ABM only speak the paper model.
    let refused = request(
        &server,
        "POST",
        "/v1/threshold",
        r#"{"model": {"kind": "two_rumor"},
            "network": {"nodes": 300, "k_max": 25, "mean_degree": 4}}"#,
    );
    assert_eq!(refused.status, 400, "body: {}", refused.body_text());
    assert!(refused.body_text().contains("paper"));
    server.shutdown_and_join();
}

#[test]
fn malformed_and_unknown_requests_get_4xx() {
    let server = start(ServeConfig::default());
    assert_eq!(
        request(&server, "POST", "/v1/simulate", "{not json").status,
        400
    );
    assert_eq!(
        request(&server, "POST", "/v1/simulate", r#"{"tf": -5}"#).status,
        400
    );
    assert_eq!(
        request(&server, "POST", "/v1/simulate", r#"{"bogus_field": 1}"#).status,
        400
    );
    assert_eq!(request(&server, "GET", "/nope", "").status, 404);
    assert_eq!(request(&server, "POST", "/healthz", "").status, 405);
    assert_eq!(request(&server, "GET", "/v1/simulate", "").status, 405);
    let garbage = exchange(&server, b"NOT A REQUEST\r\n\r\n");
    assert_eq!(garbage.status, 400);
    server.shutdown_and_join();
}

#[test]
fn oversized_body_is_rejected_with_413_before_upload() {
    let server = start(ServeConfig {
        max_body_bytes: 4 * 1024,
        ..ServeConfig::default()
    });
    // Declare 2 MiB but send none of it: the server must refuse from
    // the header alone.
    let raw = "POST /v1/simulate HTTP/1.1\r\nHost: test\r\nContent-Length: 2097152\r\n\r\n";
    let response = exchange(&server, raw.as_bytes());
    assert_eq!(response.status, 413);
    assert!(response.body_text().contains("exceeds"));

    let metrics = request(&server, "GET", "/metrics", "").body_text();
    assert!(metrics.contains("rumor_serve_rejected_total{reason=\"body_too_large\"} 1"));
    server.shutdown_and_join();
}

#[test]
fn saturated_queue_sheds_load_with_503_and_recovers() {
    // One worker, queue depth one: a held connection occupies the
    // worker, a second fills the queue, a third must be shed.
    let server = start(ServeConfig {
        threads: Some(1),
        queue_depth: 1,
        io_timeout_ms: 1_500,
        ..ServeConfig::default()
    });

    // Occupy the worker: declare a body and never send it. The worker
    // blocks in read until its io timeout expires.
    let mut held_a = TcpStream::connect(server.local_addr()).unwrap();
    held_a
        .write_all(b"POST /v1/simulate HTTP/1.1\r\nHost: t\r\nContent-Length: 10\r\n\r\n")
        .unwrap();
    std::thread::sleep(Duration::from_millis(300));

    // Fill the queue with a second held connection.
    let mut held_b = TcpStream::connect(server.local_addr()).unwrap();
    held_b
        .write_all(b"POST /v1/simulate HTTP/1.1\r\nHost: t\r\nContent-Length: 10\r\n\r\n")
        .unwrap();
    std::thread::sleep(Duration::from_millis(300));

    // The third connection finds the queue full and is shed.
    let shed = request(&server, "GET", "/healthz", "");
    assert_eq!(shed.status, 503, "body: {}", shed.body_text());
    assert_eq!(shed.header("Retry-After"), Some("1"));

    // Both held requests expire with 408 and the service recovers.
    let mut buf = Vec::new();
    held_a
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    held_a.read_to_end(&mut buf).unwrap();
    assert!(
        parse_response(&buf).status == 408,
        "held connection should time out with 408"
    );
    drop(held_a);
    drop(held_b);
    std::thread::sleep(Duration::from_millis(500));
    let ok = request(&server, "GET", "/healthz", "");
    assert_eq!(ok.status, 200, "service must recover after saturation");

    let metrics = request(&server, "GET", "/metrics", "").body_text();
    assert!(
        metrics.contains("rumor_serve_rejected_total{reason=\"queue_full\"} 1"),
        "metrics: {metrics}"
    );
    server.shutdown_and_join();
}

#[test]
fn expired_deadline_answers_504() {
    let server = start(ServeConfig {
        threads: Some(1),
        deadline_ms: 200,
        io_timeout_ms: 1_000,
        ..ServeConfig::default()
    });
    // Occupy the single worker long enough for the next request to age
    // past its 200 ms deadline while queued.
    let mut held = TcpStream::connect(server.local_addr()).unwrap();
    held.write_all(b"POST /v1/simulate HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\n\r\n")
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));

    let late = request(&server, "GET", "/healthz", "");
    assert_eq!(late.status, 504, "body: {}", late.body_text());
    drop(held);

    let metrics = request(&server, "GET", "/metrics", "").body_text();
    assert!(metrics.contains("rumor_serve_deadline_exceeded_total"));
    server.shutdown_and_join();
}

#[test]
fn graceful_shutdown_drains_and_stops_accepting() {
    let server = start(ServeConfig::default());
    let addr = server.local_addr();
    assert_eq!(request(&server, "GET", "/healthz", "").status, 200);
    server.shutdown_and_join();
    // The listener is gone: connections now fail outright (or are
    // reset before a response arrives).
    let refused = match TcpStream::connect(addr) {
        Err(_) => true,
        Ok(mut stream) => {
            let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
            let mut buf = Vec::new();
            stream
                .set_read_timeout(Some(Duration::from_secs(2)))
                .unwrap();
            match stream.read_to_end(&mut buf) {
                Ok(0) => true,
                Ok(_) => false,
                Err(_) => true,
            }
        }
    };
    assert!(refused, "server must stop answering after shutdown");
}

#[test]
fn worker_count_resolution_is_shared_with_rumor_par() {
    // The service resolves its pool through the same public function
    // the CLI and ensemble layer use — no private re-implementation.
    let server = start(ServeConfig {
        threads: Some(3),
        ..ServeConfig::default()
    });
    assert_eq!(server.workers(), rumor_par::resolve_threads(Some(3)));
    assert_eq!(server.workers(), 3);
    server.shutdown_and_join();
}

/// A unique, freshly created jobs directory for one test.
fn temp_jobs_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rumor-serve-jobs-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("create jobs dir");
    dir
}

/// Polls a job's status endpoint until it reaches a finished state.
fn wait_for_finish(server: &Server, id: &str, timeout: Duration) -> String {
    let started = std::time::Instant::now();
    loop {
        let status = request(server, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status.status, 200, "body: {}", status.body_text());
        let text = status.body_text();
        for state in ["\"done\"", "\"partial\"", "\"failed\"", "\"cancelled\""] {
            if text.contains(&format!("\"state\":{state}")) {
                return text;
            }
        }
        assert!(
            started.elapsed() < timeout,
            "job {id} did not finish in {timeout:?}: {text}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn jobs_endpoints_answer_503_when_disabled() {
    let server = start(ServeConfig::default());
    let refused = request(&server, "POST", "/v1/jobs", "{}");
    assert_eq!(refused.status, 503, "body: {}", refused.body_text());
    assert!(refused.body_text().contains("not enabled"));
    assert_eq!(request(&server, "GET", "/v1/jobs", "").status, 503);
    // Method/path hygiene is independent of the manager.
    assert_eq!(request(&server, "DELETE", "/v1/jobs", "").status, 405);
    server.shutdown_and_join();
}

#[test]
fn job_campaign_runs_retries_and_quarantines_over_http() {
    let dir = temp_jobs_dir("campaign");
    let server = start(ServeConfig {
        jobs_dir: Some(dir.to_string_lossy().into_owned()),
        ..ServeConfig::default()
    });

    // Point 1 fails once (retry succeeds); point 3 is poison and must
    // quarantine, leaving the campaign `partial` with a manifest.
    let submitted = request(
        &server,
        "POST",
        "/v1/jobs",
        r#"{"kind": "threshold_sweep", "points": 5,
            "sweep": {"from": 0.02, "to": 0.03},
            "inject": {"transient": [1], "persistent": [3]},
            "base": {"network": {"nodes": 300, "k_max": 25, "mean_degree": 4}}}"#,
    );
    assert_eq!(submitted.status, 200, "body: {}", submitted.body_text());
    let text = submitted.body_text();
    assert!(text.contains("\"state\":\"queued\""), "body: {text}");
    let id = text
        .split("\"id\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("job id in response")
        .to_string();

    let finished = wait_for_finish(&server, &id, Duration::from_secs(60));
    assert!(finished.contains("\"state\":\"partial\""), "{finished}");
    assert!(finished.contains("\"quarantined\":[3]"), "{finished}");
    assert!(finished.contains("\"completed\":4"), "{finished}");

    let results = request(&server, "GET", &format!("/v1/jobs/{id}/results"), "");
    assert_eq!(results.status, 200);
    let body = results.body_text();
    assert!(body.contains("\"quarantined\":[3]"), "{body}");
    assert!(body.contains("\"lambda0\":0.02"), "{body}");
    assert!(body.contains("\"r0\""), "{body}");
    // Four durable point results, none for the quarantined index.
    assert_eq!(body.matches("\"point\":").count(), 4, "{body}");
    assert!(!body.contains("\"point\":3"), "{body}");

    // The job list and the metrics page both see the campaign.
    let listed = request(&server, "GET", "/v1/jobs", "").body_text();
    assert!(listed.contains(&id), "{listed}");
    let metrics = request(&server, "GET", "/metrics", "").body_text();
    assert!(
        metrics.contains("rumor_jobs_submitted_total 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("rumor_jobs_finished_total{state=\"partial\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("rumor_jobs_points_quarantined_total 1"),
        "{metrics}"
    );

    // Unknown jobs and illegal transitions map to clean statuses.
    assert_eq!(
        request(&server, "GET", "/v1/jobs/job-999999", "").status,
        404
    );
    assert_eq!(
        request(&server, "POST", &format!("/v1/jobs/{id}/bogus"), "").status,
        404
    );

    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn two_rumor_optimize_campaign_round_trips_through_the_jobs_journal() {
    let dir = temp_jobs_dir("two-rumor");
    let server = start(ServeConfig {
        jobs_dir: Some(dir.to_string_lossy().into_owned()),
        ..ServeConfig::default()
    });

    // A two-point multi-control campaign: point 1 warm-starts from
    // point 0's RCP2 checkpoint through the durable journal.
    let submitted = request(
        &server,
        "POST",
        "/v1/jobs",
        r#"{"kind": "optimize_sweep", "points": 2,
            "sweep": {"from": 0.02, "to": 0.022},
            "base": {"tf": 15, "max_iters": 60, "eps_max": 0.2,
                     "model": {"kind": "two_rumor"},
                     "network": {"nodes": 300, "k_max": 25, "mean_degree": 4}}}"#,
    );
    assert_eq!(submitted.status, 200, "body: {}", submitted.body_text());
    let text = submitted.body_text();
    let id = text
        .split("\"id\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("job id")
        .to_string();

    let finished = wait_for_finish(&server, &id, Duration::from_secs(120));
    assert!(finished.contains("\"state\":\"done\""), "{finished}");
    assert!(finished.contains("\"completed\":2"), "{finished}");

    let results = request(&server, "GET", &format!("/v1/jobs/{id}/results"), "");
    assert_eq!(results.status, 200);
    let body = results.body_text();
    assert_eq!(body.matches("\"point\":").count(), 2, "{body}");
    assert!(body.contains("\"kind\":\"two_rumor\""), "{body}");
    assert!(body.contains("\"truth\""), "{body}");
    assert!(body.contains("\"blocking\""), "{body}");

    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancelled_job_resumes_and_completes_without_rerunning_points() {
    let dir = temp_jobs_dir("resume");
    let server = start(ServeConfig {
        jobs_dir: Some(dir.to_string_lossy().into_owned()),
        ..ServeConfig::default()
    });

    // Throttled so cancel lands mid-campaign.
    let submitted = request(
        &server,
        "POST",
        "/v1/jobs",
        r#"{"kind": "threshold_sweep", "points": 40, "throttle_ms": 25,
            "base": {"network": {"nodes": 300, "k_max": 25, "mean_degree": 4}}}"#,
    );
    assert_eq!(submitted.status, 200, "body: {}", submitted.body_text());
    let text = submitted.body_text();
    let id = text
        .split("\"id\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("job id")
        .to_string();

    std::thread::sleep(Duration::from_millis(200));
    let cancel = request(&server, "POST", &format!("/v1/jobs/{id}/cancel"), "");
    assert_eq!(cancel.status, 200, "body: {}", cancel.body_text());
    let finished = wait_for_finish(&server, &id, Duration::from_secs(30));
    assert!(finished.contains("\"state\":\"cancelled\""), "{finished}");

    let resume = request(&server, "POST", &format!("/v1/jobs/{id}/resume"), "");
    assert_eq!(resume.status, 200, "body: {}", resume.body_text());
    let finished = wait_for_finish(&server, &id, Duration::from_secs(60));
    assert!(finished.contains("\"state\":\"done\""), "{finished}");
    assert!(finished.contains("\"completed\":40"), "{finished}");

    // Resuming a done job is an illegal transition -> 400.
    assert_eq!(
        request(&server, "POST", &format!("/v1/jobs/{id}/resume"), "").status,
        400
    );

    let results = request(&server, "GET", &format!("/v1/jobs/{id}/results"), "");
    let body = results.body_text();
    assert_eq!(body.matches("\"point\":").count(), 40, "{body}");

    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}
