//! Canonical-request-keyed LRU result cache.
//!
//! Every compute engine behind the service is deterministic (fixed
//! seeds, fixed integrator configuration, bit-identical parallel
//! collection), so two requests with the same [canonical
//! key](crate::api::canonical_key) produce the same response **bytes**
//! — a cache hit is exact, not approximate.
//!
//! Recency is tracked with a monotone stamp per entry; eviction scans
//! for the minimum stamp. That makes `insert` O(capacity) in the worst
//! case, which is deliberate: capacities are small (hundreds), the
//! stamp scan is branch-predictable, and the alternative — an intrusive
//! doubly-linked list — is exactly the kind of pointer soup a std-only
//! crate should not hand-roll for a cold path.

use std::collections::HashMap;
use std::sync::Arc;

/// A bounded least-recently-used map from canonical request keys to
/// response bodies.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<String, Entry>,
    evictions: u64,
}

#[derive(Debug)]
struct Entry {
    stamp: u64,
    body: Arc<[u8]>,
}

impl LruCache {
    /// A cache holding at most `capacity` responses. Zero disables
    /// caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            tick: 0,
            entries: HashMap::with_capacity(capacity.min(1024)),
            evictions: 0,
        }
    }

    /// Looks up a response body, refreshing its recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<Arc<[u8]>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|entry| {
            entry.stamp = tick;
            Arc::clone(&entry.body)
        })
    }

    /// Inserts a response body, evicting the least-recently-used entry
    /// when at capacity. Returns `true` if an eviction happened.
    pub fn insert(&mut self, key: String, body: Arc<[u8]>) -> bool {
        if self.capacity == 0 {
            return false;
        }
        self.tick += 1;
        let stamp = self.tick;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.stamp = stamp;
            entry.body = body;
            return false;
        }
        let mut evicted = false;
        if self.entries.len() >= self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
                self.evictions += 1;
                evicted = true;
            }
        }
        self.entries.insert(key, Entry { stamp, body });
        evicted
    }

    /// Number of cached responses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total evictions since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<[u8]> {
        Arc::from(s.as_bytes().to_vec().into_boxed_slice())
    }

    #[test]
    fn hit_returns_inserted_body() {
        let mut cache = LruCache::new(4);
        assert!(cache.get("a").is_none());
        cache.insert("a".into(), body("alpha"));
        assert_eq!(cache.get("a").unwrap().as_ref(), b"alpha");
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = LruCache::new(2);
        cache.insert("a".into(), body("1"));
        cache.insert("b".into(), body("2"));
        // Touch "a" so "b" is the LRU entry.
        assert!(cache.get("a").is_some());
        assert!(cache.insert("c".into(), body("3")));
        assert!(cache.get("b").is_none(), "LRU entry should be evicted");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_updates_without_eviction() {
        let mut cache = LruCache::new(2);
        cache.insert("a".into(), body("1"));
        assert!(!cache.insert("a".into(), body("2")));
        assert_eq!(cache.get("a").unwrap().as_ref(), b"2");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = LruCache::new(0);
        assert!(!cache.insert("a".into(), body("1")));
        assert!(cache.get("a").is_none());
        assert!(cache.is_empty());
    }
}
