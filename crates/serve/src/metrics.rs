//! Service counters and latency histograms, rendered as plain text for
//! `GET /metrics`.
//!
//! Since PR 5 the primitives come from `rumor-obs`: every series is
//! registered in a shared [`Registry`] whose renderer owns the
//! histogram-bucket formatting (cumulative per-bound counts, `+Inf`,
//! `_sum`) — the page is byte-for-byte identical to the hand-rolled
//! formatter it replaced, which the `exposition_is_stable_byte_for_byte`
//! test pins. Everything is lock-free atomics on the record path; the
//! registry is only walked at render time.

use rumor_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

/// Upper bounds (milliseconds) of the latency histogram buckets; a
/// final implicit `+Inf` bucket catches the rest.
pub const LATENCY_BUCKETS_MS: [u64; 7] = [1, 5, 25, 100, 500, 2_500, 10_000];

/// The endpoints with per-endpoint series, in render order.
pub const ENDPOINTS: [&str; 7] = [
    "healthz",
    "metrics",
    "simulate",
    "threshold",
    "optimize",
    "ensemble",
    "jobs",
];

/// Index into [`ENDPOINTS`] for a request target, if it is known. The
/// jobs family (`/v1/jobs`, `/v1/jobs/{id}`, …) shares one series.
pub fn endpoint_index(method: &str, target: &str) -> Option<usize> {
    match (method, target) {
        ("GET", "/healthz") => Some(0),
        ("GET", "/metrics") => Some(1),
        ("POST", "/v1/simulate") => Some(2),
        ("POST", "/v1/threshold") => Some(3),
        ("POST", "/v1/optimize") => Some(4),
        ("POST", "/v1/ensemble") => Some(5),
        ("GET" | "POST", t) if t == "/v1/jobs" || t.starts_with("/v1/jobs/") => Some(6),
        _ => None,
    }
}

struct EndpointSeries {
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    latency: Arc<Histogram>,
}

/// All service metrics. Cheap to share behind an `Arc`; each server
/// instance owns its own registry (tests run several per process).
pub struct Metrics {
    registry: Registry,
    /// Connections admitted into the queue.
    pub admitted: Arc<Counter>,
    /// Connections shed with `503` because the queue was full.
    pub rejected_queue_full: Arc<Counter>,
    /// Requests rejected with `413` (body cap).
    pub rejected_body_too_large: Arc<Counter>,
    /// Requests rejected with `400`/`501` (malformed / unsupported).
    pub rejected_malformed: Arc<Counter>,
    /// Connections shed with `503` at the epoll connection cap.
    pub rejected_max_connections: Arc<Counter>,
    /// Requests that exceeded their wall-clock deadline (`504`).
    pub deadline_exceeded: Arc<Counter>,
    /// Requests that timed out mid-read (`408`).
    pub read_timeouts: Arc<Counter>,
    /// Currently executing requests.
    pub in_flight: Arc<Gauge>,
    /// Result-cache hits.
    pub cache_hits: Arc<Counter>,
    /// Result-cache misses.
    pub cache_misses: Arc<Counter>,
    /// Result-cache evictions.
    pub cache_evictions: Arc<Counter>,
    /// `epoll_wait` returns on the event loop (idle or not).
    pub epoll_wakeups: Arc<Counter>,
    /// Connections currently registered with the event loop.
    pub epoll_connections: Arc<Gauge>,
    /// Compute tasks queued for the worker pool (epoll backend).
    pub ready_queue_depth: Arc<Gauge>,
    /// Data chunks written on `/v1/jobs/{id}/stream` responses.
    pub stream_chunks: Arc<Counter>,
    per_endpoint: [EndpointSeries; ENDPOINTS.len()],
    /// Durable-job series (shared with the [`rumor_jobs::JobManager`]),
    /// rendered at the end of the page.
    pub jobs: Arc<rumor_jobs::JobsMetrics>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// A zeroed metrics block. Registration order here *is* the render
    /// order of the `/metrics` page — do not reorder.
    pub fn new() -> Self {
        let mut registry = Registry::new();
        let admitted = registry.counter("rumor_serve_admitted_total");
        let rejected_queue_full =
            registry.counter("rumor_serve_rejected_total{reason=\"queue_full\"}");
        let rejected_body_too_large =
            registry.counter("rumor_serve_rejected_total{reason=\"body_too_large\"}");
        let rejected_malformed =
            registry.counter("rumor_serve_rejected_total{reason=\"malformed\"}");
        let rejected_max_connections =
            registry.counter("rumor_serve_rejected_total{reason=\"max_connections\"}");
        let deadline_exceeded = registry.counter("rumor_serve_deadline_exceeded_total");
        let read_timeouts = registry.counter("rumor_serve_read_timeouts_total");
        let in_flight = registry.gauge("rumor_serve_in_flight");
        let cache_hits = registry.counter("rumor_serve_cache_hits_total");
        let cache_misses = registry.counter("rumor_serve_cache_misses_total");
        let cache_evictions = registry.counter("rumor_serve_cache_evictions_total");
        let epoll_wakeups = registry.counter("rumor_serve_epoll_wakeups_total");
        let epoll_connections = registry.gauge("rumor_serve_epoll_connections");
        let ready_queue_depth = registry.gauge("rumor_serve_ready_queue_depth");
        let stream_chunks = registry.counter("rumor_serve_stream_chunks_total");
        let per_endpoint = ENDPOINTS.map(|name| EndpointSeries {
            requests: registry
                .counter(format!("rumor_serve_requests_total{{endpoint=\"{name}\"}}")),
            errors: registry.counter(format!("rumor_serve_errors_total{{endpoint=\"{name}\"}}")),
            latency: registry.histogram(
                "rumor_serve_request_duration_ms",
                format!("endpoint=\"{name}\""),
                &LATENCY_BUCKETS_MS,
            ),
        });
        let jobs = rumor_jobs::JobsMetrics::register(&mut registry);
        Metrics {
            registry,
            admitted,
            rejected_queue_full,
            rejected_body_too_large,
            rejected_malformed,
            rejected_max_connections,
            deadline_exceeded,
            read_timeouts,
            in_flight,
            cache_hits,
            cache_misses,
            cache_evictions,
            epoll_wakeups,
            epoll_connections,
            ready_queue_depth,
            stream_chunks,
            per_endpoint,
            jobs,
        }
    }

    /// Records one finished request against an endpoint series.
    pub fn record(&self, endpoint: usize, status: u16, elapsed_ms: u64) {
        let series = &self.per_endpoint[endpoint];
        series.requests.inc();
        if status >= 400 {
            series.errors.inc();
        }
        series.latency.observe(elapsed_ms);
    }

    /// Renders the plain-text metrics page from the shared registry.
    pub fn render(&self) -> String {
        self.registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_routing_table() {
        assert_eq!(endpoint_index("GET", "/healthz"), Some(0));
        assert_eq!(endpoint_index("POST", "/v1/simulate"), Some(2));
        assert_eq!(endpoint_index("POST", "/healthz"), None);
        assert_eq!(endpoint_index("GET", "/v1/simulate"), None);
        assert_eq!(endpoint_index("GET", "/nope"), None);
        assert_eq!(endpoint_index("POST", "/v1/jobs"), Some(6));
        assert_eq!(endpoint_index("GET", "/v1/jobs/job-000001"), Some(6));
        assert_eq!(
            endpoint_index("GET", "/v1/jobs/job-000001/results"),
            Some(6)
        );
        assert_eq!(endpoint_index("DELETE", "/v1/jobs"), None);
        assert_eq!(endpoint_index("GET", "/v1/jobsx"), None);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_render() {
        let m = Metrics::new();
        m.record(2, 200, 3); // le=5
        m.record(2, 200, 90); // le=100
        m.record(2, 500, 99_999); // +Inf
        let text = m.render();
        assert!(text
            .contains("rumor_serve_request_duration_ms_bucket{endpoint=\"simulate\",le=\"5\"} 1"));
        assert!(text.contains(
            "rumor_serve_request_duration_ms_bucket{endpoint=\"simulate\",le=\"10000\"} 2"
        ));
        assert!(text.contains(
            "rumor_serve_request_duration_ms_bucket{endpoint=\"simulate\",le=\"+Inf\"} 3"
        ));
        assert!(text.contains("rumor_serve_requests_total{endpoint=\"simulate\"} 3"));
        assert!(text.contains("rumor_serve_errors_total{endpoint=\"simulate\"} 1"));
    }

    #[test]
    fn exposition_is_stable_byte_for_byte() {
        // Drive a deterministic set of recordings through the registry
        // and through the legacy formatter (fed the same tallies), and
        // require identical output — the contract that dashboards and
        // scrapers survive the rumor-obs migration unchanged.
        let m = Metrics::new();
        m.admitted.add(7);
        m.rejected_queue_full.inc();
        m.deadline_exceeded.add(2);
        m.in_flight.set(3);
        m.cache_hits.add(5);
        m.cache_misses.add(4);
        m.stream_chunks.add(6);
        // (endpoint, status, elapsed_ms); covers first/middle/+Inf buckets.
        let recordings: &[(usize, u16, u64)] = &[
            (0, 200, 0),
            (2, 200, 3),
            (2, 200, 90),
            (2, 500, 99_999),
            (4, 400, 17),
            (5, 200, 2_400),
        ];
        for &(idx, status, ms) in recordings {
            m.record(idx, status, ms);
        }

        // Legacy formatter, fed per-bucket tallies recomputed exactly as
        // the old AtomicU64 array accumulated them.
        let mut expected = String::new();
        let line = |out: &mut String, name: &str, v: u64| {
            out.push_str(name);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        };
        line(&mut expected, "rumor_serve_admitted_total", 7);
        line(
            &mut expected,
            "rumor_serve_rejected_total{reason=\"queue_full\"}",
            1,
        );
        line(
            &mut expected,
            "rumor_serve_rejected_total{reason=\"body_too_large\"}",
            0,
        );
        line(
            &mut expected,
            "rumor_serve_rejected_total{reason=\"malformed\"}",
            0,
        );
        line(
            &mut expected,
            "rumor_serve_rejected_total{reason=\"max_connections\"}",
            0,
        );
        line(&mut expected, "rumor_serve_deadline_exceeded_total", 2);
        line(&mut expected, "rumor_serve_read_timeouts_total", 0);
        line(&mut expected, "rumor_serve_in_flight", 3);
        line(&mut expected, "rumor_serve_cache_hits_total", 5);
        line(&mut expected, "rumor_serve_cache_misses_total", 4);
        line(&mut expected, "rumor_serve_cache_evictions_total", 0);
        line(&mut expected, "rumor_serve_epoll_wakeups_total", 0);
        line(&mut expected, "rumor_serve_epoll_connections", 0);
        line(&mut expected, "rumor_serve_ready_queue_depth", 0);
        line(&mut expected, "rumor_serve_stream_chunks_total", 6);
        for (idx, name) in ENDPOINTS.iter().enumerate() {
            let hits: Vec<(u16, u64)> = recordings
                .iter()
                .filter(|r| r.0 == idx)
                .map(|&(_, s, ms)| (s, ms))
                .collect();
            line(
                &mut expected,
                &format!("rumor_serve_requests_total{{endpoint=\"{name}\"}}"),
                hits.len() as u64,
            );
            line(
                &mut expected,
                &format!("rumor_serve_errors_total{{endpoint=\"{name}\"}}"),
                hits.iter().filter(|(s, _)| *s >= 400).count() as u64,
            );
            let mut per_bucket = vec![0u64; LATENCY_BUCKETS_MS.len() + 1];
            let mut sum = 0u64;
            for &(_, ms) in &hits {
                let b = LATENCY_BUCKETS_MS
                    .iter()
                    .position(|&bound| ms <= bound)
                    .unwrap_or(LATENCY_BUCKETS_MS.len());
                per_bucket[b] += 1;
                sum += ms;
            }
            let mut cumulative = 0u64;
            for (b, &bound) in LATENCY_BUCKETS_MS.iter().enumerate() {
                cumulative += per_bucket[b];
                line(
                    &mut expected,
                    &format!(
                        "rumor_serve_request_duration_ms_bucket{{endpoint=\"{name}\",le=\"{bound}\"}}"
                    ),
                    cumulative,
                );
            }
            cumulative += per_bucket[LATENCY_BUCKETS_MS.len()];
            line(
                &mut expected,
                &format!(
                    "rumor_serve_request_duration_ms_bucket{{endpoint=\"{name}\",le=\"+Inf\"}}"
                ),
                cumulative,
            );
            line(
                &mut expected,
                &format!("rumor_serve_request_duration_ms_sum{{endpoint=\"{name}\"}}"),
                sum,
            );
        }
        // The durable-job series render last, in registration order.
        line(&mut expected, "rumor_jobs_submitted_total", 0);
        line(&mut expected, "rumor_jobs_recovered_total", 0);
        for state in ["done", "partial", "failed", "cancelled"] {
            line(
                &mut expected,
                &format!("rumor_jobs_finished_total{{state=\"{state}\"}}"),
                0,
            );
        }
        line(&mut expected, "rumor_jobs_points_completed_total", 0);
        line(&mut expected, "rumor_jobs_points_retried_total", 0);
        line(&mut expected, "rumor_jobs_points_quarantined_total", 0);
        line(&mut expected, "rumor_jobs_running", 0);
        assert_eq!(m.render(), expected);
        // Rendering twice is also stable (no internal mutation).
        assert_eq!(m.render(), m.render());
    }
}
