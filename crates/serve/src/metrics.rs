//! Service counters and latency histograms, rendered as plain text for
//! `GET /metrics`.
//!
//! Everything is lock-free atomics: workers record on the request path
//! without contending on the cache mutex, and the render pass reads a
//! consistent-enough snapshot (counters are monotone; exactness across
//! counters is not required of a metrics endpoint). The output format
//! is Prometheus-flavoured text — counters plus cumulative
//! per-endpoint latency buckets — without claiming full exposition-
//! format compliance.

use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (milliseconds) of the latency histogram buckets; a
/// final implicit `+Inf` bucket catches the rest.
pub const LATENCY_BUCKETS_MS: [u64; 7] = [1, 5, 25, 100, 500, 2_500, 10_000];

/// The endpoints with per-endpoint series, in render order.
pub const ENDPOINTS: [&str; 6] = [
    "healthz",
    "metrics",
    "simulate",
    "threshold",
    "optimize",
    "ensemble",
];

/// Index into [`ENDPOINTS`] for a request target, if it is known.
pub fn endpoint_index(method: &str, target: &str) -> Option<usize> {
    match (method, target) {
        ("GET", "/healthz") => Some(0),
        ("GET", "/metrics") => Some(1),
        ("POST", "/v1/simulate") => Some(2),
        ("POST", "/v1/threshold") => Some(3),
        ("POST", "/v1/optimize") => Some(4),
        ("POST", "/v1/ensemble") => Some(5),
        _ => None,
    }
}

#[derive(Debug, Default)]
struct EndpointSeries {
    requests: AtomicU64,
    errors: AtomicU64,
    /// Cumulative counts per LATENCY_BUCKETS_MS bound, plus +Inf.
    buckets: [AtomicU64; LATENCY_BUCKETS_MS.len() + 1],
    total_ms: AtomicU64,
}

/// All service metrics. Cheap to share behind an `Arc`.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections admitted into the queue.
    pub admitted: AtomicU64,
    /// Connections shed with `503` because the queue was full.
    pub rejected_queue_full: AtomicU64,
    /// Requests rejected with `413` (body cap).
    pub rejected_body_too_large: AtomicU64,
    /// Requests rejected with `400`/`501` (malformed / unsupported).
    pub rejected_malformed: AtomicU64,
    /// Requests that exceeded their wall-clock deadline (`504`).
    pub deadline_exceeded: AtomicU64,
    /// Requests that timed out mid-read (`408`).
    pub read_timeouts: AtomicU64,
    /// Currently executing requests.
    pub in_flight: AtomicU64,
    /// Result-cache hits.
    pub cache_hits: AtomicU64,
    /// Result-cache misses.
    pub cache_misses: AtomicU64,
    /// Result-cache evictions.
    pub cache_evictions: AtomicU64,
    per_endpoint: [EndpointSeries; ENDPOINTS.len()],
}

impl Metrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one finished request against an endpoint series.
    pub fn record(&self, endpoint: usize, status: u16, elapsed_ms: u64) {
        let series = &self.per_endpoint[endpoint];
        series.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            series.errors.fetch_add(1, Ordering::Relaxed);
        }
        let bucket = LATENCY_BUCKETS_MS
            .iter()
            .position(|&bound| elapsed_ms <= bound)
            .unwrap_or(LATENCY_BUCKETS_MS.len());
        series.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        series.total_ms.fetch_add(elapsed_ms, Ordering::Relaxed);
    }

    /// Renders the plain-text metrics page.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        let counter = |out: &mut String, name: &str, value: u64| {
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        };
        counter(
            &mut out,
            "rumor_serve_admitted_total",
            self.admitted.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rumor_serve_rejected_total{reason=\"queue_full\"}",
            self.rejected_queue_full.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rumor_serve_rejected_total{reason=\"body_too_large\"}",
            self.rejected_body_too_large.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rumor_serve_rejected_total{reason=\"malformed\"}",
            self.rejected_malformed.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rumor_serve_deadline_exceeded_total",
            self.deadline_exceeded.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rumor_serve_read_timeouts_total",
            self.read_timeouts.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rumor_serve_in_flight",
            self.in_flight.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rumor_serve_cache_hits_total",
            self.cache_hits.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rumor_serve_cache_misses_total",
            self.cache_misses.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "rumor_serve_cache_evictions_total",
            self.cache_evictions.load(Ordering::Relaxed),
        );
        for (idx, name) in ENDPOINTS.iter().enumerate() {
            let series = &self.per_endpoint[idx];
            counter(
                &mut out,
                &format!("rumor_serve_requests_total{{endpoint=\"{name}\"}}"),
                series.requests.load(Ordering::Relaxed),
            );
            counter(
                &mut out,
                &format!("rumor_serve_errors_total{{endpoint=\"{name}\"}}"),
                series.errors.load(Ordering::Relaxed),
            );
            let mut cumulative = 0u64;
            for (b, &bound) in LATENCY_BUCKETS_MS.iter().enumerate() {
                cumulative += series.buckets[b].load(Ordering::Relaxed);
                counter(
                    &mut out,
                    &format!(
                        "rumor_serve_request_duration_ms_bucket{{endpoint=\"{name}\",le=\"{bound}\"}}"
                    ),
                    cumulative,
                );
            }
            cumulative += series.buckets[LATENCY_BUCKETS_MS.len()].load(Ordering::Relaxed);
            counter(
                &mut out,
                &format!(
                    "rumor_serve_request_duration_ms_bucket{{endpoint=\"{name}\",le=\"+Inf\"}}"
                ),
                cumulative,
            );
            counter(
                &mut out,
                &format!("rumor_serve_request_duration_ms_sum{{endpoint=\"{name}\"}}"),
                series.total_ms.load(Ordering::Relaxed),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_routing_table() {
        assert_eq!(endpoint_index("GET", "/healthz"), Some(0));
        assert_eq!(endpoint_index("POST", "/v1/simulate"), Some(2));
        assert_eq!(endpoint_index("POST", "/healthz"), None);
        assert_eq!(endpoint_index("GET", "/v1/simulate"), None);
        assert_eq!(endpoint_index("GET", "/nope"), None);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_render() {
        let m = Metrics::new();
        m.record(2, 200, 3); // le=5
        m.record(2, 200, 90); // le=100
        m.record(2, 500, 99_999); // +Inf
        let text = m.render();
        assert!(text
            .contains("rumor_serve_request_duration_ms_bucket{endpoint=\"simulate\",le=\"5\"} 1"));
        assert!(text.contains(
            "rumor_serve_request_duration_ms_bucket{endpoint=\"simulate\",le=\"10000\"} 2"
        ));
        assert!(text.contains(
            "rumor_serve_request_duration_ms_bucket{endpoint=\"simulate\",le=\"+Inf\"} 3"
        ));
        assert!(text.contains("rumor_serve_requests_total{endpoint=\"simulate\"} 3"));
        assert!(text.contains("rumor_serve_errors_total{endpoint=\"simulate\"} 1"));
    }
}
