//! Minimal JSON wire format — parse and serialize, no dependencies.
//!
//! The offline build has no serde, so the service speaks JSON through
//! this hand-rolled module: a strict RFC 8259 recursive-descent parser
//! (depth-limited, rejecting leading zeros, lone surrogates, raw control
//! characters, and trailing garbage) and a deterministic serializer.
//!
//! Two properties the rest of the service leans on:
//!
//! * **Round trip**: `parse(&serialize(v)) == Ok(v)` for every [`Value`]
//!   whose numbers are finite. Numbers serialize through Rust's
//!   shortest-round-trip `f64` formatting, so no precision is lost.
//! * **Determinism**: serialization depends only on the value — object
//!   members keep their stored order — so re-serializing a canonical
//!   request struct always yields the same bytes. The result cache keys
//!   off exactly that.

use std::fmt;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 64;

/// A JSON value.
///
/// Objects are ordered member lists rather than maps: member order is
/// preserved on parse and honoured on serialize, which keeps output
/// deterministic without pulling in a map type. Duplicate keys are
/// rejected at parse time.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as an ordered member list.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn obj(members: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds a number array from an `f64` slice.
    pub fn num_arr(xs: &[f64]) -> Value {
        Value::Arr(xs.iter().map(|&x| Value::Num(x)).collect())
    }
}

/// A parse failure: byte offset plus a one-line reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for WireError {}

/// Parses one JSON document. Trailing whitespace is allowed; anything
/// else after the top-level value is an error.
///
/// # Errors
///
/// Returns [`WireError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Value, WireError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

/// Serializes a value to compact JSON. Non-finite numbers (which JSON
/// cannot represent) serialize as `null`.
pub fn serialize(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value);
    out
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(x) if x.is_finite() => {
            // Rust's Display for f64 is the shortest representation that
            // parses back to the same bits — exactly what the cache's
            // byte-determinism needs.
            let mut buf = String::new();
            fmt::write(&mut buf, format_args!("{x}")).expect("fmt to String");
            out.push_str(&buf);
        }
        Value::Num(_) => out.push_str("null"),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(members) => {
            out.push('{');
            for (i, (key, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> WireError {
        WireError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), WireError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, WireError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, WireError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character {:?}", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, WireError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, WireError> {
        self.expect(b'{')?;
        let mut members: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key_offset = self.pos;
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(WireError {
                    offset: key_offset,
                    message: format!("duplicate object key {key:?}"),
                });
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes up to the next quote,
            // backslash, or control character. The input is a &str, so
            // any multi-byte UTF-8 sequence here is already valid.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("input is utf8"));
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), WireError> {
        let Some(b) = self.peek() else {
            return Err(self.err("unterminated escape"));
        };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if self.peek() != Some(b'\\') {
                        return Err(self.err("lone high surrogate"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.err("lone high surrogate"));
                    }
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("lone low surrogate"));
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?);
            }
            other => return Err(self.err(format!("invalid escape \\{}", other as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, WireError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, WireError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: '0' alone or a non-zero digit run (strict JSON
        // forbids leading zeros).
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("malformed number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        let parsed: f64 = text.parse().map_err(|_| self.err("unparsable number"))?;
        if !parsed.is_finite() {
            return Err(self.err("number out of f64 range"));
        }
        Ok(Value::Num(parsed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
        assert_eq!(
            parse("[1, 2]").unwrap(),
            Value::Arr(vec![Value::Num(1.0), Value::Num(2.0)])
        );
        let obj = parse(r#"{"a": 1, "b": [true, null]}"#).unwrap();
        assert_eq!(obj.get("a"), Some(&Value::Num(1.0)));
        assert_eq!(
            obj.get("b"),
            Some(&Value::Arr(vec![Value::Bool(true), Value::Null]))
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "tru",
            "01",
            "1.",
            "1e",
            "+1",
            "[1,]",
            "{\"a\":}",
            "\"abc",
            "{\"a\":1,}",
            "[1] x",
            "\"\\q\"",
            "\"\\ud800\"",
            "nullnull",
            "{'a':1}",
            "{\"a\":1,\"a\":2}",
            "\"\u{01}\"",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn surrogate_pairs_round_trip() {
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Value::Str("😀".into()));
        assert_eq!(parse(&serialize(&v)).unwrap(), v);
    }

    #[test]
    fn serialization_round_trips() {
        let v = Value::obj([
            ("pi", Value::Num(std::f64::consts::PI)),
            ("tiny", Value::Num(5e-324)),
            ("neg", Value::Num(-0.0)),
            ("text", Value::Str("line\n\"quote\"\\\u{1}".into())),
            ("list", Value::Arr(vec![Value::Null, Value::Bool(false)])),
            ("empty", Value::Obj(vec![])),
        ]);
        let json = serialize(&v);
        assert_eq!(parse(&json).unwrap(), v);
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(serialize(&Value::Num(f64::NAN)), "null");
        assert_eq!(serialize(&Value::Num(f64::INFINITY)), "null");
    }

    #[test]
    fn serialization_is_deterministic() {
        let v = Value::obj([("b", Value::Num(2.0)), ("a", Value::Num(1.0))]);
        assert_eq!(serialize(&v), serialize(&v));
        // Member order is preserved, not sorted.
        assert_eq!(serialize(&v), r#"{"b":2,"a":1}"#);
    }
}
