//! The server proper: listener, bounded accept queue, fixed worker
//! pool, admission control, request routing, and graceful shutdown.
//!
//! # Admission control
//!
//! Connections flow `accept → bounded queue → worker`. The queue is a
//! `sync_channel` of depth `queue_depth`; when it is full the acceptor
//! **sheds load immediately** with `503 Service Unavailable` +
//! `Retry-After` instead of queuing unboundedly — under overload the
//! service degrades to fast rejections, never to an ever-growing
//! backlog or a panic. Each admitted connection carries its accept
//! timestamp; workers enforce the per-request wall-clock deadline
//! against it at three checkpoints (post-dequeue, post-parse,
//! post-compute) and answer `504 Gateway Timeout` once it has passed —
//! a request cannot burn a worker forever on a response nobody is
//! waiting for.
//!
//! # Shutdown
//!
//! The listener runs non-blocking with a short poll so it can observe
//! the shutdown flag without a wake-up connection. On shutdown the
//! acceptor stops accepting, drops the queue sender, and every worker
//! drains what was already admitted before exiting — in-flight work is
//! finished, new work is refused (the OS backlog gets connection
//! resets once the listener closes).

use crate::api::{
    canonical_key, EnsembleRequest, OptimizeRequest, SimulateRequest, ThresholdRequest,
};
use crate::cache::LruCache;
use crate::handlers::{self, HandlerError};
use crate::http::{self, ReadError, Request};
use crate::jobs_api::JobSubmitRequest;
use crate::jobs_exec::CampaignRunner;
use crate::metrics::{endpoint_index, Metrics};
use crate::wire::{self, Value};
use crate::ServeError;
use rumor_jobs::{JobManager, JobManagerConfig, JobStatus, JobsError};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the acceptor polls for new connections / shutdown. This
/// bounds idle-connection accept latency (and shutdown latency), so it
/// is kept small; one wakeup per millisecond is negligible load.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// Which connection layer drives the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoBackend {
    /// Thread-per-connection: each admitted connection occupies a
    /// worker for its whole lifetime. The original backend; still the
    /// default.
    #[default]
    Threads,
    /// One epoll event loop owns every socket; workers only run
    /// compute. Idle keep-alive pollers cost an epoll slot, not a
    /// thread. Linux only.
    Epoll,
}

impl IoBackend {
    /// Parses the CLI token (`threads` | `epoll`).
    pub fn parse(s: &str) -> Option<IoBackend> {
        match s {
            "threads" => Some(IoBackend::Threads),
            "epoll" => Some(IoBackend::Epoll),
            _ => None,
        }
    }
}

/// Configuration of [`serve`]. `Default` matches the CLI defaults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port `0` for ephemeral).
    pub addr: String,
    /// Worker threads; `None` resolves via [`rumor_par::resolve_threads`]
    /// (`--threads` → `RUMOR_THREADS` → available cores).
    pub threads: Option<usize>,
    /// Accept-queue depth; beyond it connections are shed with `503`.
    pub queue_depth: usize,
    /// LRU result-cache entries (`0` disables caching).
    pub cache_entries: usize,
    /// Request-body cap in bytes (`413` beyond it).
    pub max_body_bytes: usize,
    /// Per-request wall-clock deadline in milliseconds (`504` beyond it).
    pub deadline_ms: u64,
    /// Socket read/write timeout in milliseconds (`408` on expiry).
    pub io_timeout_ms: u64,
    /// Durable-jobs directory; `None` disables the `/v1/jobs` family
    /// (those endpoints answer `503`). Opening the directory replays
    /// its journals and resumes interrupted campaigns.
    pub jobs_dir: Option<String>,
    /// Connection layer; see [`IoBackend`].
    pub io_backend: IoBackend,
    /// Concurrent-connection cap for the epoll backend; beyond it new
    /// connections are shed with `503` at accept time. The threads
    /// backend bounds connections through `queue_depth` instead.
    pub max_connections: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".to_string(),
            threads: None,
            queue_depth: 64,
            cache_entries: 256,
            max_body_bytes: 1024 * 1024,
            deadline_ms: 30_000,
            io_timeout_ms: 5_000,
            jobs_dir: None,
            io_backend: IoBackend::Threads,
            max_connections: 1024,
        }
    }
}

impl ServeConfig {
    /// Validates every field up front (bind errors surface later, from
    /// [`serve`] itself).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.addr.is_empty() {
            return Err(ServeError::InvalidConfig("addr: must not be empty".into()));
        }
        if self.queue_depth == 0 {
            return Err(ServeError::InvalidConfig(
                "queue_depth: must be at least 1".into(),
            ));
        }
        if let Some(0) = self.threads {
            return Err(ServeError::InvalidConfig(
                "threads: must be at least 1 when given".into(),
            ));
        }
        if self.max_body_bytes < 64 {
            return Err(ServeError::InvalidConfig(
                "max_body_bytes: must be at least 64".into(),
            ));
        }
        if self.deadline_ms == 0 {
            return Err(ServeError::InvalidConfig(
                "deadline_ms: must be at least 1".into(),
            ));
        }
        if self.io_timeout_ms == 0 {
            return Err(ServeError::InvalidConfig(
                "io_timeout_ms: must be at least 1".into(),
            ));
        }
        if let Some(dir) = &self.jobs_dir {
            if dir.is_empty() {
                return Err(ServeError::InvalidConfig(
                    "jobs_dir: must not be empty when given".into(),
                ));
            }
        }
        if self.max_connections == 0 {
            return Err(ServeError::InvalidConfig(
                "max_connections: must be at least 1".into(),
            ));
        }
        if self.io_backend == IoBackend::Epoll && !cfg!(target_os = "linux") {
            return Err(ServeError::InvalidConfig(
                "io_backend: epoll is only available on Linux".into(),
            ));
        }
        Ok(())
    }
}

/// One admitted connection, stamped at accept time so deadlines cover
/// queueing as well as execution.
struct Job {
    stream: TcpStream,
    accepted: Instant,
    /// Per-request trace ID, assigned at accept and echoed back to the
    /// client as `X-Trace-Id` — the join key between a client-observed
    /// response and the server-side trace spans.
    trace_id: u64,
}

/// Everything the connection layers need to route and execute
/// requests; shared between the threads and epoll backends so both
/// speak the identical dialect.
pub(crate) struct Shared {
    pub metrics: Arc<Metrics>,
    pub cache: Arc<Mutex<LruCache>>,
    pub config: ServeConfig,
    pub workers: usize,
    pub jobs: Option<Arc<JobManager>>,
}

/// A running server. Dropping it does **not** stop the threads; call
/// [`Server::shutdown_and_join`] (or hold a [`ServerHandle`] and
/// `join`) for an orderly exit.
pub struct Server {
    local_addr: SocketAddr,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    workers: usize,
    threads: Vec<JoinHandle<()>>,
    jobs: Option<Arc<JobManager>>,
}

/// A cloneable handle that can request shutdown from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Requests an orderly shutdown: stop accepting, drain, exit.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

impl Server {
    /// The bound address (resolves port `0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live metrics block.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// A handle for requesting shutdown from elsewhere.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shutdown: Arc::clone(&self.shutdown),
        }
    }

    /// The durable job manager, when `jobs_dir` was configured.
    pub fn jobs(&self) -> Option<Arc<JobManager>> {
        self.jobs.clone()
    }

    /// Requests shutdown and joins every thread (acceptor + workers),
    /// then parks the job worker: a running campaign transitions back
    /// to `queued` on disk so the next start resumes it.
    pub fn shutdown_and_join(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        if let Some(jobs) = self.jobs.take() {
            jobs.shutdown();
        }
    }

    /// Blocks until SIGTERM/SIGINT (or a programmatic
    /// [`crate::signal::request_termination`]) arrives, then shuts down
    /// gracefully: the listener closes, admitted requests drain, and
    /// every thread is joined before this returns.
    pub fn run_until_terminated(self) {
        crate::signal::install_termination_handlers();
        while !crate::signal::termination_requested() && !self.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.shutdown_and_join();
    }
}

/// Binds the address and starts the acceptor and worker threads.
///
/// # Errors
///
/// * [`ServeError::InvalidConfig`] for a rejected configuration.
/// * [`ServeError::Bind`] when the address cannot be bound.
pub fn serve(config: &ServeConfig) -> Result<Server, ServeError> {
    config.validate()?;
    let workers = rumor_par::resolve_threads(config.threads);
    let listener = TcpListener::bind(&config.addr).map_err(|source| ServeError::Bind {
        addr: config.addr.clone(),
        source,
    })?;
    listener.set_nonblocking(true).map_err(ServeError::Io)?;
    let local_addr = listener.local_addr().map_err(ServeError::Io)?;

    let metrics = Arc::new(Metrics::new());
    let jobs = match &config.jobs_dir {
        Some(dir) => Some(
            JobManager::open(
                JobManagerConfig::new(dir),
                Arc::new(CampaignRunner { workers }),
                Arc::clone(&metrics.jobs),
            )
            .map_err(jobs_open_error)?,
        ),
        None => None,
    };
    let cache = Arc::new(Mutex::new(LruCache::new(config.cache_entries)));
    let shutdown = Arc::new(AtomicBool::new(false));
    let shared = Arc::new(Shared {
        metrics: Arc::clone(&metrics),
        cache,
        config: config.clone(),
        workers,
        jobs: jobs.clone(),
    });

    let threads = match config.io_backend {
        IoBackend::Threads => spawn_threads_backend(listener, &shared, &shutdown, workers)?,
        #[cfg(target_os = "linux")]
        IoBackend::Epoll => crate::event_loop::spawn(listener, &shared, &shutdown)?,
        #[cfg(not(target_os = "linux"))]
        IoBackend::Epoll => unreachable!("validate() rejects epoll off Linux"),
    };

    Ok(Server {
        local_addr,
        metrics,
        shutdown,
        workers,
        threads,
        jobs,
    })
}

/// The original thread-per-connection layer: a polling acceptor feeds
/// a bounded queue drained by blocking workers.
fn spawn_threads_backend(
    listener: TcpListener,
    shared: &Arc<Shared>,
    shutdown: &Arc<AtomicBool>,
    workers: usize,
) -> Result<Vec<JoinHandle<()>>, ServeError> {
    let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(shared.config.queue_depth);
    let rx = Arc::new(Mutex::new(rx));
    let mut threads = Vec::with_capacity(workers + 1);
    for worker_id in 0..workers {
        let rx = Arc::clone(&rx);
        let shared = Arc::clone(shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("rumor-serve-worker-{worker_id}"))
                .spawn(move || worker_loop(&rx, &shared))
                .map_err(ServeError::Io)?,
        );
    }
    {
        let shutdown = Arc::clone(shutdown);
        let metrics = Arc::clone(&shared.metrics);
        let io_timeout = Duration::from_millis(shared.config.io_timeout_ms);
        threads.push(
            std::thread::Builder::new()
                .name("rumor-serve-acceptor".to_string())
                .spawn(move || accept_loop(&listener, &tx, &shutdown, &metrics, io_timeout))
                .map_err(ServeError::Io)?,
        );
    }
    Ok(threads)
}

/// Maps a job-store failure at startup onto the service error space.
fn jobs_open_error(e: JobsError) -> ServeError {
    match e {
        JobsError::InvalidConfig(m) => ServeError::InvalidConfig(format!("jobs: {m}")),
        JobsError::Io { context, source } => ServeError::Io(std::io::Error::new(
            source.kind(),
            format!("jobs: {context}: {source}"),
        )),
        other => ServeError::InvalidConfig(format!("jobs: {other}")),
    }
}

fn accept_loop(
    listener: &TcpListener,
    tx: &SyncSender<Job>,
    shutdown: &AtomicBool,
    metrics: &Metrics,
    io_timeout: Duration,
) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let job = Job {
                    stream,
                    accepted: Instant::now(),
                    trace_id: rumor_obs::next_trace_id(),
                };
                match tx.try_send(job) {
                    Ok(()) => {
                        metrics.admitted.inc();
                    }
                    Err(TrySendError::Full(job)) => {
                        metrics.rejected_queue_full.inc();
                        shed(job.stream, job.trace_id, io_timeout);
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                // Transient accept failure (e.g. EMFILE); back off briefly.
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
    // Dropping `tx` (when this fn returns) closes the queue: workers
    // drain the remaining jobs and exit on Disconnected.
}

/// Best-effort `503` on an over-admission connection. Never blocks the
/// acceptor for long: the write timeout is capped small.
fn shed(mut stream: TcpStream, trace_id: u64, io_timeout: Duration) {
    let cap = io_timeout.min(Duration::from_millis(250));
    let _ = stream.set_write_timeout(Some(cap));
    let body = br#"{"error":"server is at capacity, retry shortly"}"#;
    let trace = trace_id.to_string();
    let _ = http::write_response(
        &mut stream,
        503,
        http::reason(503),
        "application/json",
        &[("Retry-After", "1"), ("X-Trace-Id", &trace)],
        body,
    );
    rumor_obs::event("serve.shed", &[("trace", trace_id.into())]);
    drain_then_close(stream, cap);
}

/// Closes a connection whose request was never (fully) read without
/// aborting it: dropping a socket with unread bytes in the receive
/// buffer makes the kernel answer RST and discard the response we just
/// buffered. Half-close our side so the client sees EOF after the
/// response, then drain its remaining bytes (briefly) so the final
/// close is clean. Best-effort throughout: a client that keeps sending
/// past the window gets the RST it asked for.
fn drain_then_close(mut stream: TcpStream, max_wait: Duration) {
    use std::io::Read;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(max_wait));
    let mut sink = [0u8; 4096];
    for _ in 0..64 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, shared: &Shared) {
    loop {
        // Hold the receiver lock only for the dequeue itself.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else {
            return; // Queue closed and drained: orderly exit.
        };
        shared.metrics.in_flight.inc();
        handle_connection(job, shared);
        shared.metrics.in_flight.dec();
    }
}

/// Everything needed to answer one connection.
fn handle_connection(job: Job, shared: &Shared) {
    let metrics = &shared.metrics;
    let config = &shared.config;
    let Job {
        mut stream,
        accepted,
        trace_id,
    } = job;
    let mut sp = rumor_obs::span("serve.request");
    sp.field("trace", trace_id);
    let io_timeout = Duration::from_millis(config.io_timeout_ms);
    let deadline = Duration::from_millis(config.deadline_ms);
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let _ = stream.set_nodelay(true);

    // Checkpoint 1: the job may have aged out while queued. The request
    // bytes were never read, so close via `drain_then_close` (a plain
    // drop would RST and destroy the 504 in flight).
    if accepted.elapsed() >= deadline {
        metrics.deadline_exceeded.inc();
        sp.field("status", 504u64);
        respond_error(&mut stream, trace_id, 504, "deadline exceeded while queued");
        drain_then_close(stream, io_timeout.min(Duration::from_millis(250)));
        return;
    }

    let request = match http::read_request(&mut stream, config.max_body_bytes) {
        Ok(request) => request,
        Err(e) => {
            // Every error leaves unread bytes possible (413 refuses a
            // declared body, 400 stops mid-parse), so each reply ends
            // with the draining close.
            match e {
                ReadError::BodyTooLarge { declared, limit } => {
                    metrics.rejected_body_too_large.inc();
                    sp.field("status", 413u64);
                    respond_error(
                        &mut stream,
                        trace_id,
                        413,
                        &format!("body of {declared} bytes exceeds the {limit}-byte cap"),
                    );
                }
                ReadError::Malformed(m) => {
                    metrics.rejected_malformed.inc();
                    sp.field("status", 400u64);
                    respond_error(&mut stream, trace_id, 400, &m);
                }
                ReadError::Unsupported(m) => {
                    metrics.rejected_malformed.inc();
                    sp.field("status", 501u64);
                    respond_error(&mut stream, trace_id, 501, &m);
                }
                ReadError::TimedOut => {
                    metrics.read_timeouts.inc();
                    sp.field("status", 408u64);
                    respond_error(&mut stream, trace_id, 408, "timed out reading the request");
                }
                ReadError::Io(_) => {} // Peer is gone; nothing to say.
            }
            drain_then_close(stream, io_timeout.min(Duration::from_millis(250)));
            return;
        }
    };

    let started = Instant::now();
    let endpoint = endpoint_index(&request.method, &request.target);
    let status = match route_request(&request, shared) {
        Routed::Done(outcome) => {
            respond_outcome(&mut stream, trace_id, &outcome);
            outcome.status
        }
        Routed::Compute => {
            let outcome = run_compute(&request, shared, accepted, trace_id);
            respond_outcome(&mut stream, trace_id, &outcome);
            outcome.status
        }
        Routed::Stream { job_id } => stream_job_blocking(&mut stream, &job_id, shared),
    };
    if sp.active() {
        sp.field(
            "endpoint",
            endpoint.map_or("other", |idx| crate::metrics::ENDPOINTS[idx]),
        );
        sp.field("status", u64::from(status));
    }
    if let Some(idx) = endpoint {
        metrics.record(idx, status, started.elapsed().as_millis() as u64);
    }
}

/// Where a parsed request goes next. Shared by both backends: the
/// threads backend executes `Compute` inline on its worker thread, the
/// epoll event loop dispatches it to the compute pool; `Stream`
/// switches the connection to chunked streaming.
pub(crate) enum Routed {
    /// Fully answered; frame and write the outcome.
    Done(Outcome),
    /// An expensive compute endpoint: run [`run_compute`].
    Compute,
    /// Stream job `job_id`'s points as chunks until it finishes.
    Stream {
        /// The (known-valid) job to stream.
        job_id: String,
    },
}

/// A fully-determined response, backend-agnostic: the threads backend
/// frames it `Connection: close`, the epoll backend keep-alive; the
/// status line, headers, and body bytes are identical either way.
pub(crate) struct Outcome {
    pub status: u16,
    pub content_type: &'static str,
    /// Extra headers (e.g. `X-Cache`, `Retry-After`), emitted before
    /// `X-Trace-Id`.
    pub extra: Vec<(&'static str, String)>,
    pub body: Vec<u8>,
}

impl Outcome {
    pub(crate) fn json(status: u16, value: &Value) -> Outcome {
        Outcome {
            status,
            content_type: "application/json",
            extra: Vec::new(),
            body: wire::serialize(value).into_bytes(),
        }
    }

    pub(crate) fn error(status: u16, message: &str) -> Outcome {
        Outcome::json(
            status,
            &Value::obj([("error", Value::Str(message.to_string()))]),
        )
    }

    /// The capacity-shed response: `503` + `Retry-After`, same bytes
    /// from the acceptor queue (threads) and the connection cap
    /// (epoll).
    pub(crate) fn overloaded() -> Outcome {
        Outcome {
            status: 503,
            content_type: "application/json",
            extra: vec![("Retry-After", "1".to_string())],
            body: br#"{"error":"server is at capacity, retry shortly"}"#.to_vec(),
        }
    }
}

/// Routes one parsed request. Pure with respect to the connection:
/// everything socket-shaped stays with the caller, so both backends
/// share exactly this dialect.
pub(crate) fn route_request(request: &Request, shared: &Shared) -> Routed {
    if endpoint_index(&request.method, &request.target).is_none() {
        let target = request.target.as_str();
        let known_path = matches!(
            target,
            "/healthz"
                | "/metrics"
                | "/v1/simulate"
                | "/v1/threshold"
                | "/v1/optimize"
                | "/v1/ensemble"
        ) || target == "/v1/jobs"
            || target.starts_with("/v1/jobs/");
        let (status, message) = if known_path {
            (405, "method not allowed for this endpoint")
        } else {
            (404, "no such endpoint")
        };
        return Routed::Done(Outcome::error(status, message));
    }

    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/healthz") => Routed::Done(Outcome::json(
            200,
            &Value::obj([("status", Value::Str("ok".into()))]),
        )),
        ("GET", "/metrics") => Routed::Done(Outcome {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            extra: Vec::new(),
            body: shared.metrics.render().into_bytes(),
        }),
        (method, target) if target == "/v1/jobs" || target.starts_with("/v1/jobs/") => {
            jobs_request(request, method, target, shared)
        }
        _ => Routed::Compute,
    }
}

/// The stateful `/v1/jobs` family. Responses are never cached — they
/// describe mutable job state, not a pure function of the request.
fn jobs_request(request: &Request, method: &str, target: &str, shared: &Shared) -> Routed {
    let Some(manager) = &shared.jobs else {
        return Routed::Done(Outcome::error(
            503,
            "durable jobs are not enabled (start the server with a jobs directory)",
        ));
    };

    // `/v1/jobs` | `/v1/jobs/{id}` | `/v1/jobs/{id}/{action}`.
    let rest = target.strip_prefix("/v1/jobs").unwrap_or_default();
    let mut parts = rest.trim_start_matches('/').splitn(2, '/');
    let id = parts.next().unwrap_or_default();
    let action = parts.next().unwrap_or_default();

    if method == "GET" && !id.is_empty() && action == "stream" {
        // Existence is checked here so an unknown job answers a plain
        // 404 instead of opening a stream that instantly dies.
        return match manager.status(id) {
            Some(_) => Routed::Stream {
                job_id: id.to_string(),
            },
            None => Routed::Done(Outcome::error(404, &format!("unknown job {id:?}"))),
        };
    }

    let outcome: Result<(u16, Value), (u16, String)> = match (method, id, action) {
        ("POST", "", "") => jobs_submit(request, manager),
        ("GET", "", "") => Ok((
            200,
            Value::obj([(
                "jobs",
                Value::Arr(manager.list().iter().map(status_value).collect()),
            )]),
        )),
        ("GET", id, "") => match manager.status(id) {
            Some(status) => Ok((200, status_value(&status))),
            None => Err((404, format!("unknown job {id:?}"))),
        },
        ("GET", id, "results") => jobs_results(manager, id),
        ("POST", id, "cancel") => match manager.cancel(id) {
            Ok(state) => Ok((
                200,
                Value::obj([
                    ("id", Value::Str(id.to_string())),
                    ("state", Value::Str(state.as_str().to_string())),
                ]),
            )),
            Err(e) => Err(jobs_error_status(e)),
        },
        ("POST", id, "resume") => match manager.resume(id) {
            Ok(()) => Ok((
                200,
                Value::obj([
                    ("id", Value::Str(id.to_string())),
                    ("state", Value::Str("queued".to_string())),
                ]),
            )),
            Err(e) => Err(jobs_error_status(e)),
        },
        ("GET" | "POST", _, _) => Err((404, "no such jobs endpoint".to_string())),
        _ => Err((405, "method not allowed for this endpoint".to_string())),
    };
    Routed::Done(match outcome {
        Ok((status, value)) => Outcome::json(status, &value),
        Err((status, message)) => Outcome::error(status, &message),
    })
}

fn jobs_submit(
    request: &Request,
    manager: &Arc<JobManager>,
) -> Result<(u16, Value), (u16, String)> {
    let body_text = std::str::from_utf8(&request.body)
        .map_err(|_| (400, "body is not valid UTF-8".to_string()))?;
    let parsed = if body_text.trim().is_empty() {
        Value::Obj(Vec::new())
    } else {
        wire::parse(body_text).map_err(|e| (400, e.to_string()))?
    };
    let submission = JobSubmitRequest::from_value(&parsed).map_err(|e| (400, e.to_string()))?;
    let id = manager
        .submit(submission.to_spec())
        .map_err(jobs_error_status)?;
    Ok((
        200,
        Value::obj([
            ("id", Value::Str(id)),
            ("state", Value::Str("queued".to_string())),
            ("kind", Value::Str(submission.kind.as_str().to_string())),
            ("points", Value::Num(submission.points as f64)),
        ]),
    ))
}

/// One durable result row as it appears in both the `results` body and
/// the stream: parsed payload, or a placeholder for opaque bytes.
fn row_value(index: u64, payload: &[u8]) -> Value {
    std::str::from_utf8(payload)
        .ok()
        .and_then(|text| wire::parse(text).ok())
        .unwrap_or_else(|| Value::obj([("point", Value::Num(index as f64)), ("raw", Value::Null)]))
}

/// The quarantine manifest: which points are missing, after how many
/// attempts, and why. The per-entry key is `index` (not `point`) so
/// result bodies keep exactly one `"point"` occurrence per row.
fn manifest_value(status: &JobStatus) -> Value {
    Value::Arr(
        status
            .manifest
            .iter()
            .map(|entry| {
                Value::obj([
                    ("index", Value::Num(entry.point as f64)),
                    ("attempts", Value::Num(f64::from(entry.attempts))),
                    ("error", Value::Str(entry.error.clone())),
                ])
            })
            .collect(),
    )
}

/// The terminal summary shared verbatim between the `results` body and
/// the final stream chunk, so streaming consumers and later refetchers
/// see identical terminal payloads (manifest included).
fn summary_fields(status: &JobStatus) -> Vec<(&'static str, Value)> {
    vec![
        ("state", Value::Str(status.state.as_str().to_string())),
        ("total", Value::Num(status.total as f64)),
        ("completed", Value::Num(status.completed as f64)),
        (
            "quarantined",
            Value::Arr(
                status
                    .quarantined
                    .iter()
                    .map(|&i| Value::Num(i as f64))
                    .collect(),
            ),
        ),
        ("manifest", manifest_value(status)),
        ("missing", Value::Num(status.missing() as f64)),
    ]
}

/// Assembles the durable result set. The body deliberately excludes the
/// job ID and timing so two campaigns over the same spec — one
/// uninterrupted, one killed and recovered — produce byte-identical
/// bodies when complete.
fn jobs_results(manager: &Arc<JobManager>, id: &str) -> Result<(u16, Value), (u16, String)> {
    let status = manager
        .status(id)
        .ok_or_else(|| (404, format!("unknown job {id:?}")))?;
    let rows = manager.results(id).map_err(jobs_error_status)?;
    let results = rows
        .iter()
        .map(|(index, payload)| row_value(*index, payload))
        .collect();
    let mut fields = summary_fields(&status);
    fields.push(("results", Value::Arr(results)));
    Ok((200, Value::obj(fields)))
}

fn status_value(status: &JobStatus) -> Value {
    Value::obj([
        ("id", Value::Str(status.id.clone())),
        ("kind", Value::Str(status.kind.clone())),
        ("state", Value::Str(status.state.as_str().to_string())),
        ("total", Value::Num(status.total as f64)),
        ("completed", Value::Num(status.completed as f64)),
        (
            "quarantined",
            Value::Arr(
                status
                    .quarantined
                    .iter()
                    .map(|&i| Value::Num(i as f64))
                    .collect(),
            ),
        ),
        ("manifest", manifest_value(status)),
        ("missing", Value::Num(status.missing() as f64)),
        ("retries", Value::Num(status.retries as f64)),
        (
            "last_error",
            match &status.last_error {
                Some(m) => Value::Str(m.clone()),
                None => Value::Null,
            },
        ),
    ])
}

/// How often a blocking stream re-polls a still-running job. Chunks go
/// out the moment the poll observes new completed points, so this only
/// bounds idle latency.
const STREAM_POLL: Duration = Duration::from_millis(20);

/// Incremental cursor over a job's durable results, shared by both
/// backends: each poll frames any newly-completed points as chunks
/// (`one JSON row + \n` per chunk) and, once the job reaches a terminal
/// state, appends the summary chunk — the same fields as the `results`
/// body minus the rows — and the terminal chunk.
pub(crate) struct JobStream {
    job_id: String,
    emitted: usize,
}

/// One poll's worth of stream output.
pub(crate) struct StreamPoll {
    /// Ready-to-write chunked framing (possibly empty).
    pub bytes: Vec<u8>,
    /// Data chunks framed in `bytes` (for the stream-chunk counter).
    pub chunks: u64,
    /// Whether the terminal chunk has been framed; stop polling.
    pub done: bool,
}

impl JobStream {
    pub(crate) fn new(job_id: &str) -> JobStream {
        JobStream {
            job_id: job_id.to_string(),
            emitted: 0,
        }
    }

    /// Frames everything new since the last poll.
    ///
    /// # Errors
    ///
    /// Propagates store failures (and the job vanishing mid-stream);
    /// the caller terminates the stream.
    pub(crate) fn poll(&mut self, manager: &JobManager) -> Result<StreamPoll, JobsError> {
        let Some(status) = manager.status(&self.job_id) else {
            return Err(JobsError::UnknownJob(self.job_id.clone()));
        };
        let finished = status.state.is_finished();
        let mut bytes = Vec::new();
        let mut chunks = 0u64;
        // Points execute in ascending index order, so the sorted result
        // rows are also completion order and `emitted` is a plain
        // prefix length. Reading the store only when the count moved
        // keeps an idle poll cheap.
        if finished || (status.completed as usize) > self.emitted {
            let rows = manager.results(&self.job_id)?;
            for (index, payload) in rows.iter().skip(self.emitted) {
                let mut line = wire::serialize(&row_value(*index, payload)).into_bytes();
                line.push(b'\n');
                bytes.extend_from_slice(&http::chunk_bytes(&line));
                chunks += 1;
            }
            self.emitted = rows.len();
        }
        if finished {
            let mut line = wire::serialize(&Value::obj(summary_fields(&status))).into_bytes();
            line.push(b'\n');
            bytes.extend_from_slice(&http::chunk_bytes(&line));
            bytes.extend_from_slice(http::terminal_chunk_bytes());
            chunks += 1;
        }
        Ok(StreamPoll {
            bytes,
            chunks,
            done: finished,
        })
    }
}

/// The threads-backend stream driver: writes the chunked head, then
/// polls the job until it finishes, sleeping between polls. The worker
/// thread is pinned for the stream's lifetime — the epoll backend
/// exists so this cost is opt-out.
fn stream_job_blocking(stream: &mut TcpStream, job_id: &str, shared: &Shared) -> u16 {
    use std::io::Write;
    let Some(manager) = &shared.jobs else {
        unreachable!("jobs_request only streams when the manager exists");
    };
    let head = http::stream_head_bytes(200, http::reason(200), "application/json");
    if stream.write_all(&head).is_err() {
        return 200;
    }
    let mut cursor = JobStream::new(job_id);
    loop {
        match cursor.poll(manager) {
            Ok(poll) => {
                if !poll.bytes.is_empty() {
                    shared.metrics.stream_chunks.add(poll.chunks);
                    if stream.write_all(&poll.bytes).is_err() {
                        return 200; // Client went away; slot reclaimed.
                    }
                }
                if poll.done {
                    return 200;
                }
            }
            Err(_) => {
                // Store failure mid-stream: the head is already out, so
                // end the chunk stream; the missing summary chunk tells
                // the consumer the stream died early.
                let _ = stream.write_all(http::terminal_chunk_bytes());
                return 200;
            }
        }
        std::thread::sleep(STREAM_POLL);
    }
}

fn jobs_error_status(e: JobsError) -> (u16, String) {
    let status = match &e {
        JobsError::UnknownJob(_) => 404,
        JobsError::InvalidConfig(_) | JobsError::InvalidTransition { .. } => 400,
        JobsError::Io { .. } | JobsError::Corrupt(_) => 500,
    };
    (status, e.to_string())
}

/// The `POST /v1/*` path: parse JSON → validate → cache lookup →
/// compute → cache fill, with deadline checkpoints around the
/// expensive stages. Pure with respect to the connection — the threads
/// backend runs it inline, the epoll backend on a compute worker.
pub(crate) fn run_compute(
    request: &Request,
    shared: &Shared,
    accepted: Instant,
    trace_id: u64,
) -> Outcome {
    let metrics = &shared.metrics;
    let deadline = Duration::from_millis(shared.config.deadline_ms);
    let target = request.target.as_str();
    let body_text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => {
            metrics.rejected_malformed.inc();
            return Outcome::error(400, "body is not valid UTF-8");
        }
    };
    // An empty body means "all defaults" — friendlier than demanding {}.
    let parsed = if body_text.trim().is_empty() {
        Ok(Value::Obj(Vec::new()))
    } else {
        wire::parse(body_text)
    };
    let parsed = match parsed {
        Ok(v) => v,
        Err(e) => {
            metrics.rejected_malformed.inc();
            return Outcome::error(400, &e.to_string());
        }
    };

    // Validate into the canonical request form.
    let canonical = match target {
        "/v1/simulate" => SimulateRequest::from_value(&parsed).map(|r| r.canonical()),
        "/v1/threshold" => ThresholdRequest::from_value(&parsed).map(|r| r.canonical()),
        "/v1/optimize" => OptimizeRequest::from_value(&parsed).map(|r| r.canonical()),
        "/v1/ensemble" => EnsembleRequest::from_value(&parsed).map(|r| r.canonical()),
        _ => unreachable!("routed endpoints are exhaustive"),
    };
    let canonical = match canonical {
        Ok(v) => v,
        Err(e) => return Outcome::error(400, &e.to_string()),
    };
    let key = canonical_key(target, &canonical);

    if let Ok(mut cache) = shared.cache.lock() {
        if let Some(body) = cache.get(&key) {
            metrics.cache_hits.inc();
            return Outcome {
                status: 200,
                content_type: "application/json",
                extra: vec![("X-Cache", "hit".to_string())],
                body: body.to_vec(),
            };
        }
    }
    metrics.cache_misses.inc();

    // Checkpoint 2: don't start an expensive compute we can't finish.
    if accepted.elapsed() >= deadline {
        metrics.deadline_exceeded.inc();
        return Outcome::error(504, "deadline exceeded before compute");
    }

    // The canonical form re-parses by construction (proptested), so the
    // unwraps here cannot fire on a value we just built.
    let mut compute_span = rumor_obs::span("serve.compute");
    if compute_span.active() {
        compute_span.field("trace", trace_id);
        compute_span.field("target", target);
    }
    let computed = match target {
        "/v1/simulate" => {
            handlers::simulate(&SimulateRequest::from_value(&canonical).expect("canonical"))
        }
        "/v1/threshold" => {
            handlers::threshold(&ThresholdRequest::from_value(&canonical).expect("canonical"))
        }
        "/v1/optimize" => {
            handlers::optimize(&OptimizeRequest::from_value(&canonical).expect("canonical"))
        }
        "/v1/ensemble" => handlers::ensemble(
            &EnsembleRequest::from_value(&canonical).expect("canonical"),
            shared.workers,
        ),
        _ => unreachable!("routed endpoints are exhaustive"),
    };
    drop(compute_span);
    let value = match computed {
        Ok(value) => value,
        Err(HandlerError::BadRequest(m)) => return Outcome::error(400, &m),
        Err(HandlerError::Internal(m)) => return Outcome::error(500, &m),
    };
    let body: Arc<[u8]> = Arc::from(wire::serialize(&value).into_bytes().into_boxed_slice());

    // The result is valid regardless of timing, so cache it either way;
    // checkpoint 3 only decides what this client hears.
    if let Ok(mut cache) = shared.cache.lock() {
        if cache.insert(key, Arc::clone(&body)) {
            metrics.cache_evictions.inc();
        }
    }
    if accepted.elapsed() >= deadline {
        metrics.deadline_exceeded.inc();
        return Outcome::error(504, "deadline exceeded during compute");
    }
    Outcome {
        status: 200,
        content_type: "application/json",
        extra: vec![("X-Cache", "miss".to_string())],
        body: body.to_vec(),
    }
}

fn respond(
    stream: &mut TcpStream,
    trace_id: u64,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &[u8],
) {
    let trace = trace_id.to_string();
    let mut headers: Vec<(&str, &str)> = Vec::with_capacity(extra.len() + 1);
    headers.extend_from_slice(extra);
    headers.push(("X-Trace-Id", &trace));
    let _ = http::write_response(
        stream,
        status,
        http::reason(status),
        content_type,
        &headers,
        body,
    );
}

/// Frames an [`Outcome`] onto a blocking (threads-backend) connection.
fn respond_outcome(stream: &mut TcpStream, trace_id: u64, outcome: &Outcome) {
    let extra: Vec<(&str, &str)> = outcome
        .extra
        .iter()
        .map(|(k, v)| (*k, v.as_str()))
        .collect();
    respond(
        stream,
        trace_id,
        outcome.status,
        outcome.content_type,
        &extra,
        &outcome.body,
    );
}

fn respond_error(stream: &mut TcpStream, trace_id: u64, status: u16, message: &str) {
    let body = wire::serialize(&Value::obj([("error", Value::Str(message.to_string()))]));
    respond(
        stream,
        trace_id,
        status,
        "application/json",
        &[],
        body.as_bytes(),
    );
}
