//! The server proper: listener, bounded accept queue, fixed worker
//! pool, admission control, request routing, and graceful shutdown.
//!
//! # Admission control
//!
//! Connections flow `accept → bounded queue → worker`. The queue is a
//! `sync_channel` of depth `queue_depth`; when it is full the acceptor
//! **sheds load immediately** with `503 Service Unavailable` +
//! `Retry-After` instead of queuing unboundedly — under overload the
//! service degrades to fast rejections, never to an ever-growing
//! backlog or a panic. Each admitted connection carries its accept
//! timestamp; workers enforce the per-request wall-clock deadline
//! against it at three checkpoints (post-dequeue, post-parse,
//! post-compute) and answer `504 Gateway Timeout` once it has passed —
//! a request cannot burn a worker forever on a response nobody is
//! waiting for.
//!
//! # Shutdown
//!
//! The listener runs non-blocking with a short poll so it can observe
//! the shutdown flag without a wake-up connection. On shutdown the
//! acceptor stops accepting, drops the queue sender, and every worker
//! drains what was already admitted before exiting — in-flight work is
//! finished, new work is refused (the OS backlog gets connection
//! resets once the listener closes).

use crate::api::{
    canonical_key, EnsembleRequest, OptimizeRequest, SimulateRequest, ThresholdRequest,
};
use crate::cache::LruCache;
use crate::handlers::{self, HandlerError};
use crate::http::{self, ReadError, Request};
use crate::jobs_api::JobSubmitRequest;
use crate::jobs_exec::CampaignRunner;
use crate::metrics::{endpoint_index, Metrics};
use crate::wire::{self, Value};
use crate::ServeError;
use rumor_jobs::{JobManager, JobManagerConfig, JobStatus, JobsError};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the acceptor polls for new connections / shutdown. This
/// bounds idle-connection accept latency (and shutdown latency), so it
/// is kept small; one wakeup per millisecond is negligible load.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// Configuration of [`serve`]. `Default` matches the CLI defaults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port `0` for ephemeral).
    pub addr: String,
    /// Worker threads; `None` resolves via [`rumor_par::resolve_threads`]
    /// (`--threads` → `RUMOR_THREADS` → available cores).
    pub threads: Option<usize>,
    /// Accept-queue depth; beyond it connections are shed with `503`.
    pub queue_depth: usize,
    /// LRU result-cache entries (`0` disables caching).
    pub cache_entries: usize,
    /// Request-body cap in bytes (`413` beyond it).
    pub max_body_bytes: usize,
    /// Per-request wall-clock deadline in milliseconds (`504` beyond it).
    pub deadline_ms: u64,
    /// Socket read/write timeout in milliseconds (`408` on expiry).
    pub io_timeout_ms: u64,
    /// Durable-jobs directory; `None` disables the `/v1/jobs` family
    /// (those endpoints answer `503`). Opening the directory replays
    /// its journals and resumes interrupted campaigns.
    pub jobs_dir: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".to_string(),
            threads: None,
            queue_depth: 64,
            cache_entries: 256,
            max_body_bytes: 1024 * 1024,
            deadline_ms: 30_000,
            io_timeout_ms: 5_000,
            jobs_dir: None,
        }
    }
}

impl ServeConfig {
    /// Validates every field up front (bind errors surface later, from
    /// [`serve`] itself).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.addr.is_empty() {
            return Err(ServeError::InvalidConfig("addr: must not be empty".into()));
        }
        if self.queue_depth == 0 {
            return Err(ServeError::InvalidConfig(
                "queue_depth: must be at least 1".into(),
            ));
        }
        if let Some(0) = self.threads {
            return Err(ServeError::InvalidConfig(
                "threads: must be at least 1 when given".into(),
            ));
        }
        if self.max_body_bytes < 64 {
            return Err(ServeError::InvalidConfig(
                "max_body_bytes: must be at least 64".into(),
            ));
        }
        if self.deadline_ms == 0 {
            return Err(ServeError::InvalidConfig(
                "deadline_ms: must be at least 1".into(),
            ));
        }
        if self.io_timeout_ms == 0 {
            return Err(ServeError::InvalidConfig(
                "io_timeout_ms: must be at least 1".into(),
            ));
        }
        if let Some(dir) = &self.jobs_dir {
            if dir.is_empty() {
                return Err(ServeError::InvalidConfig(
                    "jobs_dir: must not be empty when given".into(),
                ));
            }
        }
        Ok(())
    }
}

/// One admitted connection, stamped at accept time so deadlines cover
/// queueing as well as execution.
struct Job {
    stream: TcpStream,
    accepted: Instant,
    /// Per-request trace ID, assigned at accept and echoed back to the
    /// client as `X-Trace-Id` — the join key between a client-observed
    /// response and the server-side trace spans.
    trace_id: u64,
}

/// A running server. Dropping it does **not** stop the threads; call
/// [`Server::shutdown_and_join`] (or hold a [`ServerHandle`] and
/// `join`) for an orderly exit.
pub struct Server {
    local_addr: SocketAddr,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    workers: usize,
    threads: Vec<JoinHandle<()>>,
    jobs: Option<Arc<JobManager>>,
}

/// A cloneable handle that can request shutdown from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Requests an orderly shutdown: stop accepting, drain, exit.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

impl Server {
    /// The bound address (resolves port `0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live metrics block.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// A handle for requesting shutdown from elsewhere.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shutdown: Arc::clone(&self.shutdown),
        }
    }

    /// The durable job manager, when `jobs_dir` was configured.
    pub fn jobs(&self) -> Option<Arc<JobManager>> {
        self.jobs.clone()
    }

    /// Requests shutdown and joins every thread (acceptor + workers),
    /// then parks the job worker: a running campaign transitions back
    /// to `queued` on disk so the next start resumes it.
    pub fn shutdown_and_join(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        if let Some(jobs) = self.jobs.take() {
            jobs.shutdown();
        }
    }

    /// Blocks until SIGTERM/SIGINT (or a programmatic
    /// [`crate::signal::request_termination`]) arrives, then shuts down
    /// gracefully: the listener closes, admitted requests drain, and
    /// every thread is joined before this returns.
    pub fn run_until_terminated(self) {
        crate::signal::install_termination_handlers();
        while !crate::signal::termination_requested() && !self.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.shutdown_and_join();
    }
}

/// Binds the address and starts the acceptor and worker threads.
///
/// # Errors
///
/// * [`ServeError::InvalidConfig`] for a rejected configuration.
/// * [`ServeError::Bind`] when the address cannot be bound.
pub fn serve(config: &ServeConfig) -> Result<Server, ServeError> {
    config.validate()?;
    let workers = rumor_par::resolve_threads(config.threads);
    let listener = TcpListener::bind(&config.addr).map_err(|source| ServeError::Bind {
        addr: config.addr.clone(),
        source,
    })?;
    listener.set_nonblocking(true).map_err(ServeError::Io)?;
    let local_addr = listener.local_addr().map_err(ServeError::Io)?;

    let metrics = Arc::new(Metrics::new());
    let jobs = match &config.jobs_dir {
        Some(dir) => Some(
            JobManager::open(
                JobManagerConfig::new(dir),
                Arc::new(CampaignRunner { workers }),
                Arc::clone(&metrics.jobs),
            )
            .map_err(jobs_open_error)?,
        ),
        None => None,
    };
    let cache = Arc::new(Mutex::new(LruCache::new(config.cache_entries)));
    let shutdown = Arc::new(AtomicBool::new(false));
    let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(config.queue_depth);
    let rx = Arc::new(Mutex::new(rx));

    let mut threads = Vec::with_capacity(workers + 1);
    for worker_id in 0..workers {
        let rx = Arc::clone(&rx);
        let metrics = Arc::clone(&metrics);
        let cache = Arc::clone(&cache);
        let config = config.clone();
        let jobs = jobs.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("rumor-serve-worker-{worker_id}"))
                .spawn(move || worker_loop(&rx, &metrics, &cache, &config, workers, jobs.as_ref()))
                .map_err(ServeError::Io)?,
        );
    }
    {
        let shutdown = Arc::clone(&shutdown);
        let metrics = Arc::clone(&metrics);
        let io_timeout = Duration::from_millis(config.io_timeout_ms);
        threads.push(
            std::thread::Builder::new()
                .name("rumor-serve-acceptor".to_string())
                .spawn(move || accept_loop(&listener, &tx, &shutdown, &metrics, io_timeout))
                .map_err(ServeError::Io)?,
        );
    }

    Ok(Server {
        local_addr,
        metrics,
        shutdown,
        workers,
        threads,
        jobs,
    })
}

/// Maps a job-store failure at startup onto the service error space.
fn jobs_open_error(e: JobsError) -> ServeError {
    match e {
        JobsError::InvalidConfig(m) => ServeError::InvalidConfig(format!("jobs: {m}")),
        JobsError::Io { context, source } => ServeError::Io(std::io::Error::new(
            source.kind(),
            format!("jobs: {context}: {source}"),
        )),
        other => ServeError::InvalidConfig(format!("jobs: {other}")),
    }
}

fn accept_loop(
    listener: &TcpListener,
    tx: &SyncSender<Job>,
    shutdown: &AtomicBool,
    metrics: &Metrics,
    io_timeout: Duration,
) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let job = Job {
                    stream,
                    accepted: Instant::now(),
                    trace_id: rumor_obs::next_trace_id(),
                };
                match tx.try_send(job) {
                    Ok(()) => {
                        metrics.admitted.inc();
                    }
                    Err(TrySendError::Full(job)) => {
                        metrics.rejected_queue_full.inc();
                        shed(job.stream, job.trace_id, io_timeout);
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                // Transient accept failure (e.g. EMFILE); back off briefly.
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
    // Dropping `tx` (when this fn returns) closes the queue: workers
    // drain the remaining jobs and exit on Disconnected.
}

/// Best-effort `503` on an over-admission connection. Never blocks the
/// acceptor for long: the write timeout is capped small.
fn shed(mut stream: TcpStream, trace_id: u64, io_timeout: Duration) {
    let cap = io_timeout.min(Duration::from_millis(250));
    let _ = stream.set_write_timeout(Some(cap));
    let body = br#"{"error":"server is at capacity, retry shortly"}"#;
    let trace = trace_id.to_string();
    let _ = http::write_response(
        &mut stream,
        503,
        http::reason(503),
        "application/json",
        &[("Retry-After", "1"), ("X-Trace-Id", &trace)],
        body,
    );
    rumor_obs::event("serve.shed", &[("trace", trace_id.into())]);
    drain_then_close(stream, cap);
}

/// Closes a connection whose request was never (fully) read without
/// aborting it: dropping a socket with unread bytes in the receive
/// buffer makes the kernel answer RST and discard the response we just
/// buffered. Half-close our side so the client sees EOF after the
/// response, then drain its remaining bytes (briefly) so the final
/// close is clean. Best-effort throughout: a client that keeps sending
/// past the window gets the RST it asked for.
fn drain_then_close(mut stream: TcpStream, max_wait: Duration) {
    use std::io::Read;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(max_wait));
    let mut sink = [0u8; 4096];
    for _ in 0..64 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

fn worker_loop(
    rx: &Mutex<Receiver<Job>>,
    metrics: &Metrics,
    cache: &Mutex<LruCache>,
    config: &ServeConfig,
    workers: usize,
    jobs: Option<&Arc<JobManager>>,
) {
    loop {
        // Hold the receiver lock only for the dequeue itself.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else {
            return; // Queue closed and drained: orderly exit.
        };
        metrics.in_flight.inc();
        handle_connection(job, metrics, cache, config, workers, jobs);
        metrics.in_flight.dec();
    }
}

/// Everything needed to answer one connection.
fn handle_connection(
    job: Job,
    metrics: &Metrics,
    cache: &Mutex<LruCache>,
    config: &ServeConfig,
    workers: usize,
    jobs: Option<&Arc<JobManager>>,
) {
    let Job {
        mut stream,
        accepted,
        trace_id,
    } = job;
    let mut sp = rumor_obs::span("serve.request");
    sp.field("trace", trace_id);
    let io_timeout = Duration::from_millis(config.io_timeout_ms);
    let deadline = Duration::from_millis(config.deadline_ms);
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let _ = stream.set_nodelay(true);

    // Checkpoint 1: the job may have aged out while queued. The request
    // bytes were never read, so close via `drain_then_close` (a plain
    // drop would RST and destroy the 504 in flight).
    if accepted.elapsed() >= deadline {
        metrics.deadline_exceeded.inc();
        sp.field("status", 504u64);
        respond_error(&mut stream, trace_id, 504, "deadline exceeded while queued");
        drain_then_close(stream, io_timeout.min(Duration::from_millis(250)));
        return;
    }

    let request = match http::read_request(&mut stream, config.max_body_bytes) {
        Ok(request) => request,
        Err(e) => {
            // Every error leaves unread bytes possible (413 refuses a
            // declared body, 400 stops mid-parse), so each reply ends
            // with the draining close.
            match e {
                ReadError::BodyTooLarge { declared, limit } => {
                    metrics.rejected_body_too_large.inc();
                    sp.field("status", 413u64);
                    respond_error(
                        &mut stream,
                        trace_id,
                        413,
                        &format!("body of {declared} bytes exceeds the {limit}-byte cap"),
                    );
                }
                ReadError::Malformed(m) => {
                    metrics.rejected_malformed.inc();
                    sp.field("status", 400u64);
                    respond_error(&mut stream, trace_id, 400, &m);
                }
                ReadError::Unsupported(m) => {
                    metrics.rejected_malformed.inc();
                    sp.field("status", 501u64);
                    respond_error(&mut stream, trace_id, 501, &m);
                }
                ReadError::TimedOut => {
                    metrics.read_timeouts.inc();
                    sp.field("status", 408u64);
                    respond_error(&mut stream, trace_id, 408, "timed out reading the request");
                }
                ReadError::Io(_) => {} // Peer is gone; nothing to say.
            }
            drain_then_close(stream, io_timeout.min(Duration::from_millis(250)));
            return;
        }
    };

    let started = Instant::now();
    let endpoint = endpoint_index(&request.method, &request.target);
    let status = route(
        &mut stream,
        &request,
        endpoint,
        trace_id,
        accepted,
        deadline,
        metrics,
        cache,
        workers,
        jobs,
    );
    if sp.active() {
        sp.field(
            "endpoint",
            endpoint.map_or("other", |idx| crate::metrics::ENDPOINTS[idx]),
        );
        sp.field("status", u64::from(status));
    }
    if let Some(idx) = endpoint {
        metrics.record(idx, status, started.elapsed().as_millis() as u64);
    }
}

/// Routes one parsed request and returns the status that was sent.
#[allow(clippy::too_many_arguments)]
fn route(
    stream: &mut TcpStream,
    request: &Request,
    endpoint: Option<usize>,
    trace_id: u64,
    accepted: Instant,
    deadline: Duration,
    metrics: &Metrics,
    cache: &Mutex<LruCache>,
    workers: usize,
    jobs: Option<&Arc<JobManager>>,
) -> u16 {
    let Some(_) = endpoint else {
        let target = request.target.as_str();
        let known_path = matches!(
            target,
            "/healthz"
                | "/metrics"
                | "/v1/simulate"
                | "/v1/threshold"
                | "/v1/optimize"
                | "/v1/ensemble"
        ) || target == "/v1/jobs"
            || target.starts_with("/v1/jobs/");
        let (status, message) = if known_path {
            (405, "method not allowed for this endpoint")
        } else {
            (404, "no such endpoint")
        };
        respond_error(stream, trace_id, status, message);
        return status;
    };

    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/healthz") => {
            let body = wire::serialize(&Value::obj([("status", Value::Str("ok".into()))]));
            respond(
                stream,
                trace_id,
                200,
                "application/json",
                &[],
                body.as_bytes(),
            );
            200
        }
        ("GET", "/metrics") => {
            let body = metrics.render();
            respond(
                stream,
                trace_id,
                200,
                "text/plain; charset=utf-8",
                &[],
                body.as_bytes(),
            );
            200
        }
        (method, target) if target == "/v1/jobs" || target.starts_with("/v1/jobs/") => {
            jobs_endpoint(stream, request, method, target, trace_id, jobs)
        }
        (_, target) => compute_endpoint(
            stream, request, target, trace_id, accepted, deadline, metrics, cache, workers,
        ),
    }
}

/// The stateful `/v1/jobs` family. Responses are never cached — they
/// describe mutable job state, not a pure function of the request.
fn jobs_endpoint(
    stream: &mut TcpStream,
    request: &Request,
    method: &str,
    target: &str,
    trace_id: u64,
    jobs: Option<&Arc<JobManager>>,
) -> u16 {
    let Some(manager) = jobs else {
        respond_error(
            stream,
            trace_id,
            503,
            "durable jobs are not enabled (start the server with a jobs directory)",
        );
        return 503;
    };

    // `/v1/jobs` | `/v1/jobs/{id}` | `/v1/jobs/{id}/{action}`.
    let rest = target.strip_prefix("/v1/jobs").unwrap_or_default();
    let mut parts = rest.trim_start_matches('/').splitn(2, '/');
    let id = parts.next().unwrap_or_default();
    let action = parts.next().unwrap_or_default();

    let outcome: Result<(u16, Value), (u16, String)> = match (method, id, action) {
        ("POST", "", "") => jobs_submit(request, manager),
        ("GET", "", "") => Ok((
            200,
            Value::obj([(
                "jobs",
                Value::Arr(manager.list().iter().map(status_value).collect()),
            )]),
        )),
        ("GET", id, "") => match manager.status(id) {
            Some(status) => Ok((200, status_value(&status))),
            None => Err((404, format!("unknown job {id:?}"))),
        },
        ("GET", id, "results") => jobs_results(manager, id),
        ("POST", id, "cancel") => match manager.cancel(id) {
            Ok(state) => Ok((
                200,
                Value::obj([
                    ("id", Value::Str(id.to_string())),
                    ("state", Value::Str(state.as_str().to_string())),
                ]),
            )),
            Err(e) => Err(jobs_error_status(e)),
        },
        ("POST", id, "resume") => match manager.resume(id) {
            Ok(()) => Ok((
                200,
                Value::obj([
                    ("id", Value::Str(id.to_string())),
                    ("state", Value::Str("queued".to_string())),
                ]),
            )),
            Err(e) => Err(jobs_error_status(e)),
        },
        ("GET" | "POST", _, _) => Err((404, "no such jobs endpoint".to_string())),
        _ => Err((405, "method not allowed for this endpoint".to_string())),
    };
    match outcome {
        Ok((status, value)) => {
            let body = wire::serialize(&value);
            respond(
                stream,
                trace_id,
                status,
                "application/json",
                &[],
                body.as_bytes(),
            );
            status
        }
        Err((status, message)) => {
            respond_error(stream, trace_id, status, &message);
            status
        }
    }
}

fn jobs_submit(
    request: &Request,
    manager: &Arc<JobManager>,
) -> Result<(u16, Value), (u16, String)> {
    let body_text = std::str::from_utf8(&request.body)
        .map_err(|_| (400, "body is not valid UTF-8".to_string()))?;
    let parsed = if body_text.trim().is_empty() {
        Value::Obj(Vec::new())
    } else {
        wire::parse(body_text).map_err(|e| (400, e.to_string()))?
    };
    let submission = JobSubmitRequest::from_value(&parsed).map_err(|e| (400, e.to_string()))?;
    let id = manager
        .submit(submission.to_spec())
        .map_err(jobs_error_status)?;
    Ok((
        200,
        Value::obj([
            ("id", Value::Str(id)),
            ("state", Value::Str("queued".to_string())),
            ("kind", Value::Str(submission.kind.as_str().to_string())),
            ("points", Value::Num(submission.points as f64)),
        ]),
    ))
}

/// Assembles the durable result set. The body deliberately excludes the
/// job ID and timing so two campaigns over the same spec — one
/// uninterrupted, one killed and recovered — produce byte-identical
/// bodies when complete.
fn jobs_results(manager: &Arc<JobManager>, id: &str) -> Result<(u16, Value), (u16, String)> {
    let status = manager
        .status(id)
        .ok_or_else(|| (404, format!("unknown job {id:?}")))?;
    let rows = manager.results(id).map_err(jobs_error_status)?;
    let mut results = Vec::with_capacity(rows.len());
    for (index, payload) in rows {
        let parsed = std::str::from_utf8(&payload)
            .ok()
            .and_then(|text| wire::parse(text).ok());
        results.push(parsed.unwrap_or_else(|| {
            Value::obj([("point", Value::Num(index as f64)), ("raw", Value::Null)])
        }));
    }
    Ok((
        200,
        Value::obj([
            ("state", Value::Str(status.state.as_str().to_string())),
            ("total", Value::Num(status.total as f64)),
            ("completed", Value::Num(status.completed as f64)),
            (
                "quarantined",
                Value::Arr(
                    status
                        .quarantined
                        .iter()
                        .map(|&i| Value::Num(i as f64))
                        .collect(),
                ),
            ),
            ("missing", Value::Num(status.missing() as f64)),
            ("results", Value::Arr(results)),
        ]),
    ))
}

fn status_value(status: &JobStatus) -> Value {
    Value::obj([
        ("id", Value::Str(status.id.clone())),
        ("kind", Value::Str(status.kind.clone())),
        ("state", Value::Str(status.state.as_str().to_string())),
        ("total", Value::Num(status.total as f64)),
        ("completed", Value::Num(status.completed as f64)),
        (
            "quarantined",
            Value::Arr(
                status
                    .quarantined
                    .iter()
                    .map(|&i| Value::Num(i as f64))
                    .collect(),
            ),
        ),
        ("missing", Value::Num(status.missing() as f64)),
        ("retries", Value::Num(status.retries as f64)),
        (
            "last_error",
            match &status.last_error {
                Some(m) => Value::Str(m.clone()),
                None => Value::Null,
            },
        ),
    ])
}

fn jobs_error_status(e: JobsError) -> (u16, String) {
    let status = match &e {
        JobsError::UnknownJob(_) => 404,
        JobsError::InvalidConfig(_) | JobsError::InvalidTransition { .. } => 400,
        JobsError::Io { .. } | JobsError::Corrupt(_) => 500,
    };
    (status, e.to_string())
}

/// The `POST /v1/*` path: parse JSON → validate → cache lookup →
/// compute → cache fill, with deadline checkpoints around the
/// expensive stages.
#[allow(clippy::too_many_arguments)]
fn compute_endpoint(
    stream: &mut TcpStream,
    request: &Request,
    target: &str,
    trace_id: u64,
    accepted: Instant,
    deadline: Duration,
    metrics: &Metrics,
    cache: &Mutex<LruCache>,
    workers: usize,
) -> u16 {
    let body_text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => {
            metrics.rejected_malformed.inc();
            respond_error(stream, trace_id, 400, "body is not valid UTF-8");
            return 400;
        }
    };
    // An empty body means "all defaults" — friendlier than demanding {}.
    let parsed = if body_text.trim().is_empty() {
        Ok(Value::Obj(Vec::new()))
    } else {
        wire::parse(body_text)
    };
    let parsed = match parsed {
        Ok(v) => v,
        Err(e) => {
            metrics.rejected_malformed.inc();
            respond_error(stream, trace_id, 400, &e.to_string());
            return 400;
        }
    };

    // Validate into the canonical request form.
    let canonical = match target {
        "/v1/simulate" => SimulateRequest::from_value(&parsed).map(|r| r.canonical()),
        "/v1/threshold" => ThresholdRequest::from_value(&parsed).map(|r| r.canonical()),
        "/v1/optimize" => OptimizeRequest::from_value(&parsed).map(|r| r.canonical()),
        "/v1/ensemble" => EnsembleRequest::from_value(&parsed).map(|r| r.canonical()),
        _ => unreachable!("routed endpoints are exhaustive"),
    };
    let canonical = match canonical {
        Ok(v) => v,
        Err(e) => {
            respond_error(stream, trace_id, 400, &e.to_string());
            return 400;
        }
    };
    let key = canonical_key(target, &canonical);

    if let Ok(mut cache) = cache.lock() {
        if let Some(body) = cache.get(&key) {
            metrics.cache_hits.inc();
            respond(
                stream,
                trace_id,
                200,
                "application/json",
                &[("X-Cache", "hit")],
                &body,
            );
            return 200;
        }
    }
    metrics.cache_misses.inc();

    // Checkpoint 2: don't start an expensive compute we can't finish.
    if accepted.elapsed() >= deadline {
        metrics.deadline_exceeded.inc();
        respond_error(stream, trace_id, 504, "deadline exceeded before compute");
        return 504;
    }

    // The canonical form re-parses by construction (proptested), so the
    // unwraps here cannot fire on a value we just built.
    let mut compute_span = rumor_obs::span("serve.compute");
    if compute_span.active() {
        compute_span.field("trace", trace_id);
        compute_span.field("target", target);
    }
    let computed = match target {
        "/v1/simulate" => {
            handlers::simulate(&SimulateRequest::from_value(&canonical).expect("canonical"))
        }
        "/v1/threshold" => {
            handlers::threshold(&ThresholdRequest::from_value(&canonical).expect("canonical"))
        }
        "/v1/optimize" => {
            handlers::optimize(&OptimizeRequest::from_value(&canonical).expect("canonical"))
        }
        "/v1/ensemble" => handlers::ensemble(
            &EnsembleRequest::from_value(&canonical).expect("canonical"),
            workers,
        ),
        _ => unreachable!("routed endpoints are exhaustive"),
    };
    drop(compute_span);
    let value = match computed {
        Ok(value) => value,
        Err(HandlerError::BadRequest(m)) => {
            respond_error(stream, trace_id, 400, &m);
            return 400;
        }
        Err(HandlerError::Internal(m)) => {
            respond_error(stream, trace_id, 500, &m);
            return 500;
        }
    };
    let body: Arc<[u8]> = Arc::from(wire::serialize(&value).into_bytes().into_boxed_slice());

    // The result is valid regardless of timing, so cache it either way;
    // checkpoint 3 only decides what this client hears.
    if let Ok(mut cache) = cache.lock() {
        if cache.insert(key, Arc::clone(&body)) {
            metrics.cache_evictions.inc();
        }
    }
    if accepted.elapsed() >= deadline {
        metrics.deadline_exceeded.inc();
        respond_error(stream, trace_id, 504, "deadline exceeded during compute");
        return 504;
    }
    respond(
        stream,
        trace_id,
        200,
        "application/json",
        &[("X-Cache", "miss")],
        &body,
    );
    200
}

fn respond(
    stream: &mut TcpStream,
    trace_id: u64,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &[u8],
) {
    let trace = trace_id.to_string();
    let mut headers: Vec<(&str, &str)> = Vec::with_capacity(extra.len() + 1);
    headers.extend_from_slice(extra);
    headers.push(("X-Trace-Id", &trace));
    let _ = http::write_response(
        stream,
        status,
        http::reason(status),
        content_type,
        &headers,
        body,
    );
}

fn respond_error(stream: &mut TcpStream, trace_id: u64, status: u16, message: &str) {
    let body = wire::serialize(&Value::obj([("error", Value::Str(message.to_string()))]));
    respond(
        stream,
        trace_id,
        status,
        "application/json",
        &[],
        body.as_bytes(),
    );
}
