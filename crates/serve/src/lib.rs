//! # rumor-serve
//!
//! A dependency-free (std-only) HTTP/1.1 JSON service exposing the
//! whole rumor-propagation pipeline as online queries — the deployment
//! mode the paper envisions for platform operators running containment
//! as a service:
//!
//! | Endpoint | Product |
//! |---|---|
//! | `POST /v1/simulate` | Eq. (1) heterogeneous SIR trajectories |
//! | `POST /v1/threshold` | `r0` (Theorem 1), `E0`/`E+` equilibria, Theorem-2 consistency |
//! | `POST /v1/optimize` | guarded-FBSM `ε1/ε2` schedule and cost `J` (Eqs. (15)–(19)) |
//! | `POST /v1/ensemble` | fault-isolated parallel ABM ensemble vs the mean field |
//! | `POST /v1/jobs` | submit a durable campaign (crash-safe sweep over `λ0` or replicas) |
//! | `GET /v1/jobs` / `GET /v1/jobs/{id}` | list / inspect campaign state and quarantine manifest |
//! | `GET /v1/jobs/{id}/results` | the durable per-point result set (partial mid-run) |
//! | `POST /v1/jobs/{id}/cancel` / `.../resume` | stop at a point boundary / re-queue with a fresh retry budget |
//! | `GET /healthz` | liveness |
//! | `GET /metrics` | text counters: requests, cache, rejections, in-flight, latency histograms, job series |
//!
//! Production posture on a one-machine budget:
//!
//! * **Admission control** — a fixed worker pool behind a *bounded*
//!   accept queue; overload is shed with `503` + `Retry-After`, never
//!   queued unboundedly ([`server`]).
//! * **Deadlines** — per-request wall-clock deadlines measured from
//!   accept time; late answers become `504`.
//! * **Result caching** — deterministic engines make responses pure
//!   functions of the canonical request, so an LRU keyed by the
//!   canonical wire form serves repeats byte-identically ([`cache`],
//!   [`api`]).
//! * **Graceful shutdown** — SIGTERM/SIGINT close the listener and
//!   drain in-flight jobs before exit ([`signal`]).
//! * **Durable campaigns** — `/v1/jobs` submissions persist through a
//!   write-ahead journal (`rumor-jobs`); `kill -9` mid-campaign costs
//!   at most one checkpoint interval and the restarted server resumes
//!   from the durable checkpoint ([`jobs_api`], [`jobs_exec`]).
//!
//! The wire layer ([`wire`]) is a hand-rolled strict JSON
//! parser/serializer, because the offline vendored build has no serde.

pub mod api;
pub mod cache;
#[cfg(target_os = "linux")]
pub mod event_loop;
pub mod handlers;
pub mod http;
pub mod jobs_api;
pub mod jobs_exec;
pub mod metrics;
pub mod server;
pub mod signal;
pub mod wire;

pub use server::{serve, IoBackend, ServeConfig, Server, ServerHandle};

use std::fmt;

/// Top-level service failure.
#[derive(Debug)]
pub enum ServeError {
    /// The configuration was rejected before anything started.
    InvalidConfig(String),
    /// The listen address could not be bound.
    Bind {
        /// The requested address.
        addr: String,
        /// The underlying bind failure.
        source: std::io::Error,
    },
    /// Another I/O failure during startup (socket options, thread
    /// spawning).
    Io(std::io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig(m) => write!(f, "invalid service configuration: {m}"),
            ServeError::Bind { addr, source } => {
                write!(f, "cannot bind {addr}: {source}")
            }
            ServeError::Io(e) => write!(f, "service i/o failure: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::InvalidConfig(_) => None,
            ServeError::Bind { source, .. } => Some(source),
            ServeError::Io(e) => Some(e),
        }
    }
}
