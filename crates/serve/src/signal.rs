//! SIGTERM/SIGINT awareness without a libc crate.
//!
//! The vendored-only build has no `signal-hook`, so on Unix this module
//! registers C handlers through the `signal(2)` symbol std already
//! links. The handler body does the only thing that is
//! async-signal-safe here: a relaxed store into a static flag, which
//! the server's supervision loop polls. On non-Unix targets
//! installation is a no-op and [`termination_requested`] only ever
//! reports `false`.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATION_REQUESTED: AtomicBool = AtomicBool::new(false);

/// `true` once SIGTERM or SIGINT has been delivered (after
/// [`install_termination_handlers`] ran).
pub fn termination_requested() -> bool {
    TERMINATION_REQUESTED.load(Ordering::Relaxed)
}

/// Test/CLI hook: raise or clear the flag programmatically, as if a
/// signal had arrived.
pub fn request_termination(requested: bool) {
    TERMINATION_REQUESTED.store(requested, Ordering::Relaxed);
}

#[cfg(unix)]
mod imp {
    use super::TERMINATION_REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        TERMINATION_REQUESTED.store(true, Ordering::Relaxed);
    }

    pub fn install() -> bool {
        // SAFETY: `signal(2)` with a handler that only performs a
        // relaxed atomic store is async-signal-safe; the fn pointer is
        // 'static and ABI-compatible (extern "C" fn(i32)).
        unsafe {
            let handler = on_signal as extern "C" fn(i32) as *const () as usize;
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
        true
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() -> bool {
        false
    }
}

/// Installs SIGTERM/SIGINT handlers that raise the termination flag.
/// Returns `false` on platforms where this is unsupported.
pub fn install_termination_handlers() -> bool {
    imp::install()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmatic_flag_round_trips() {
        request_termination(false);
        assert!(!termination_requested());
        request_termination(true);
        assert!(termination_requested());
        request_termination(false);
    }

    #[cfg(unix)]
    #[test]
    fn handlers_install_on_unix() {
        assert!(install_termination_handlers());
    }
}
