//! Endpoint implementations: each takes a validated request struct,
//! drives the corresponding engine, and returns a wire [`Value`].
//!
//! Handlers are pure functions of their request (the engines are
//! deterministic), which is what makes the canonical-key result cache
//! exact. Engine errors split two ways: configurations the engine
//! rejects are the client's fault (`400`), anything else — a failed
//! integration, a lost quorum — is a server-side failure (`500`).

use crate::api::{
    EnsembleRequest, ModelKind, ModelSpec, NetworkSpec, OptimizeRequest, SimulateRequest,
    ThresholdRequest,
};
use crate::wire::Value;
use rumor_compartments::model::CompartmentModel;
use rumor_compartments::schedule::ConstantMultiControl;
use rumor_compartments::simulate::{simulate_compartments, CompartmentSimOptions};
use rumor_control::checkpoint::{
    decode_multi_schedule, decode_schedule, encode_multi_schedule, encode_schedule,
};
use rumor_control::fbsm::FbsmOptions;
use rumor_control::multi::{optimize_compartments_monitored, MultiControlBounds, MultiFbsmOptions};
use rumor_control::schedule::PiecewiseControl;
use rumor_control::watchdog::{optimize_guarded, SweepSource, WatchdogOptions};
use rumor_control::{ControlBounds, CostWeights};
use rumor_core::control::ConstantControl;
use rumor_core::equilibrium::{positive_equilibrium, zero_equilibrium};
use rumor_core::functions::{AcceptanceRate, Infectivity};
use rumor_core::params::ModelParams;
use rumor_core::sensitivity::{critical_countermeasure_scale, r0_sensitivity};
use rumor_core::simulate::{simulate as run_simulation, SimulateOptions};
use rumor_core::stability::theorem2_consistency;
use rumor_core::state::NetworkState;
use rumor_datasets::digg::{DiggConfig, DiggDataset};
use rumor_models::tie_strength::tie_strength_model;
use rumor_models::two_rumor::TwoRumorModel;
use rumor_net::degree::DegreeClasses;
use rumor_sim::abm::AbmConfig;
use rumor_sim::ensemble::{
    max_deviation, mean_field_reference, run_ensemble_isolated_threads, IsolationPolicy, Simulator,
};
use std::fmt;

/// A handler failure, already classified by HTTP status.
#[derive(Debug)]
pub enum HandlerError {
    /// The request was well-formed JSON but the engines reject the
    /// configuration (HTTP 400).
    BadRequest(String),
    /// The computation itself failed (HTTP 500).
    Internal(String),
}

impl fmt::Display for HandlerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HandlerError::BadRequest(m) | HandlerError::Internal(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for HandlerError {}

type Result<T> = std::result::Result<T, HandlerError>;

/// Is this core-layer failure the client's fault (a rejected
/// configuration) rather than a server-side computation failure?
fn core_is_client_fault(e: &rumor_core::CoreError) -> bool {
    use rumor_core::CoreError as E;
    matches!(e, E::InvalidParameter { .. } | E::DimensionMismatch { .. })
        || matches!(
            e,
            E::Ode(
                rumor_ode::OdeError::InvalidConfig { .. }
                    | rumor_ode::OdeError::InvalidStep(_)
                    | rumor_ode::OdeError::DimensionMismatch { .. }
            )
        )
}

impl From<rumor_core::CoreError> for HandlerError {
    fn from(e: rumor_core::CoreError) -> Self {
        if core_is_client_fault(&e) {
            HandlerError::BadRequest(e.to_string())
        } else {
            HandlerError::Internal(e.to_string())
        }
    }
}

impl From<rumor_control::ControlError> for HandlerError {
    fn from(e: rumor_control::ControlError) -> Self {
        use rumor_control::ControlError as E;
        let client_fault = match &e {
            E::InvalidConfig(_) => true,
            E::Core(inner) => core_is_client_fault(inner),
            _ => false,
        };
        if client_fault {
            HandlerError::BadRequest(e.to_string())
        } else {
            HandlerError::Internal(e.to_string())
        }
    }
}

impl From<rumor_sim::SimError> for HandlerError {
    fn from(e: rumor_sim::SimError) -> Self {
        use rumor_sim::SimError as E;
        match &e {
            E::InvalidConfig(_) => HandlerError::BadRequest(e.to_string()),
            _ => HandlerError::Internal(e.to_string()),
        }
    }
}

impl From<rumor_datasets::DatasetError> for HandlerError {
    fn from(e: rumor_datasets::DatasetError) -> Self {
        use rumor_datasets::DatasetError as E;
        match &e {
            E::InvalidConfig(_) => HandlerError::BadRequest(e.to_string()),
            _ => HandlerError::Internal(e.to_string()),
        }
    }
}

impl From<rumor_net::NetError> for HandlerError {
    fn from(e: rumor_net::NetError) -> Self {
        HandlerError::Internal(e.to_string())
    }
}

fn synthesize(net: &NetworkSpec) -> Result<DiggDataset> {
    Ok(DiggDataset::synthesize(DiggConfig {
        nodes: net.nodes,
        k_min: 1,
        k_max: net.k_max,
        target_mean_degree: net.mean_degree,
        seed: net.seed,
    })?)
}

fn build_params(classes: DegreeClasses, model: &ModelSpec) -> Result<ModelParams> {
    Ok(ModelParams::builder(classes)
        .alpha(model.alpha)
        .acceptance(AcceptanceRate::LinearInDegree {
            lambda0: model.lambda0,
        })
        .infectivity(Infectivity::paper_default())
        .build()?)
}

/// Uniform initial condition on a compartment model: every class starts
/// with `1 − i0` susceptible and `i0` in compartment 1 (the rumor
/// spreaders), mirroring [`NetworkState::initial_uniform`].
fn uniform_initial<M: CompartmentModel>(model: &M, i0: f64) -> Vec<f64> {
    let n = model.n_classes();
    let mut y = vec![0.0; model.state_dim()];
    for j in 0..n {
        y[j] = 1.0 - i0;
        y[n + j] = i0;
    }
    y
}

/// Shared simulate path for the compartment-model kinds: the request's
/// constant `(eps1, eps2)` map onto the model's two control channels in
/// order (truth-seeding then blocking for `two_rumor`). Mean series are
/// labelled by the model's own compartment names.
fn simulate_kind<M: CompartmentModel>(model: &M, req: &SimulateRequest) -> Result<Value> {
    let control = ConstantMultiControl::new(vec![req.eps1, req.eps2]);
    let traj = simulate_compartments(
        model,
        &control,
        &uniform_initial(model, req.i0),
        req.tf,
        &CompartmentSimOptions {
            n_out: req.n_out,
            ..Default::default()
        },
        None,
    )?;
    let n = model.n_classes() as f64;
    let mut fields = vec![
        (
            "kind".to_string(),
            Value::Str(req.model.kind.name().to_string()),
        ),
        ("n_classes".to_string(), Value::Num(n)),
        ("times".to_string(), Value::num_arr(traj.times())),
    ];
    for (c, name) in model.compartment_names().iter().enumerate() {
        let mean: Vec<f64> = traj.total_series(c).iter().map(|x| x / n).collect();
        fields.push((format!("mean_{name}"), Value::num_arr(&mean)));
    }
    fields.push((
        "terminal_infected".to_string(),
        Value::Num(model.terminal_objective(traj.last_state())),
    ));
    Ok(Value::Obj(fields))
}

/// `POST /v1/simulate`: trajectories under constant countermeasures,
/// reported as population means per sample. The paper kind runs Eq. (1)
/// through the legacy engine; the other kinds run their compartment
/// models through `rumor-compartments`.
pub fn simulate(req: &SimulateRequest) -> Result<Value> {
    let dataset = synthesize(&req.network)?;
    let params = build_params(dataset.classes().clone(), &req.model)?;
    match &req.model.kind {
        ModelKind::Paper => {}
        ModelKind::TwoRumor {
            lambda20,
            gamma1,
            gamma2,
            mu,
        } => {
            // Cost weights only enter the FBSM objective; the paper
            // defaults keep model construction valid here.
            let m =
                TwoRumorModel::from_params(&params, *lambda20, *gamma1, *gamma2, *mu, 5.0, 10.0)?;
            return simulate_kind(&m, req);
        }
        ModelKind::TieStrength { beta } => {
            let m = tie_strength_model(&params, *beta, 5.0, 10.0)?;
            return simulate_kind(&m, req);
        }
    }
    let initial = NetworkState::initial_uniform(params.n_classes(), req.i0)?;
    let traj = run_simulation(
        &params,
        ConstantControl::new(req.eps1, req.eps2),
        &initial,
        req.tf,
        &SimulateOptions {
            n_out: req.n_out,
            ..SimulateOptions::default()
        },
    )?;
    let threshold = rumor_core::equilibrium::r0(&params, req.eps1, req.eps2)?;
    let n = params.n_classes() as f64;
    let mean_of = |f: fn(&NetworkState) -> f64| -> Vec<f64> {
        traj.states().iter().map(|st| f(st) / n).collect()
    };
    Ok(Value::obj([
        ("r0", Value::Num(threshold)),
        ("n_classes", Value::Num(n)),
        ("times", Value::num_arr(traj.times())),
        (
            "mean_s",
            Value::num_arr(&mean_of(NetworkState::total_susceptible)),
        ),
        (
            "mean_i",
            Value::num_arr(&mean_of(NetworkState::total_infected)),
        ),
        (
            "mean_r",
            Value::num_arr(&mean_of(NetworkState::total_recovered)),
        ),
        (
            "terminal_infected",
            Value::Num(traj.last_state().total_infected()),
        ),
    ]))
}

/// `POST /v1/threshold`: `r0` of Theorem 1, the `E0`/`E+` equilibria,
/// the Jacobian verdict of Theorem 2, and threshold sensitivities.
pub fn threshold(req: &ThresholdRequest) -> Result<Value> {
    let dataset = synthesize(&req.network)?;
    let params = build_params(dataset.classes().clone(), &req.model)?;
    let (r0_value, verdict, consistent) = theorem2_consistency(&params, req.eps1, req.eps2)?;
    let e0 = zero_equilibrium(&params, req.eps1, req.eps2)?;
    let e_plus = match positive_equilibrium(&params, req.eps1, req.eps2) {
        Ok(ep) => Value::obj([(
            "mean_infected",
            Value::Num(ep.total_infected() / params.n_classes() as f64),
        )]),
        Err(_) => Value::Null,
    };
    let sens = r0_sensitivity(&params, req.eps1, req.eps2)?;
    let scale = critical_countermeasure_scale(&params, req.eps1, req.eps2)?;
    Ok(Value::obj([
        ("r0", Value::Num(r0_value)),
        ("predicted_extinction", Value::Bool(r0_value <= 1.0)),
        ("jacobian_verdict", Value::Str(format!("{verdict:?}"))),
        ("consistent_with_r0", Value::Bool(consistent)),
        (
            "e0",
            Value::obj([("s", Value::Num(e0.s()[0])), ("r", Value::Num(e0.r()[0]))]),
        ),
        ("e_plus", e_plus),
        (
            "sensitivity",
            Value::obj([
                ("d_alpha", Value::Num(sens.d_alpha)),
                ("d_eps1", Value::Num(sens.d_eps1)),
                ("d_eps2", Value::Num(sens.d_eps2)),
            ]),
        ),
        ("critical_scale", Value::Num(scale)),
    ]))
}

/// `POST /v1/optimize`: the optimal countermeasure schedule — the
/// watchdog-guarded forward–backward sweep of Eqs. (15)–(19) for the
/// paper kind, the multi-control sweep for the compartment kinds.
pub fn optimize(req: &OptimizeRequest) -> Result<Value> {
    optimize_with_warm_bytes(req, None).map(|(value, _)| value)
}

/// [`optimize`] with an optional warm-start checkpoint (a neighbouring
/// sweep point's encoded schedule), also returning the optimized
/// schedule re-encoded so a campaign can thread it into the next point.
/// The byte codec is kind-dependent — RCP1 for the paper model's pair
/// schedule, RCP2 for the multi-control kinds — which keeps the
/// durable-jobs runner codec-agnostic. Corrupt or wrong-kind warm bytes
/// degrade to a cold start instead of poisoning the point: the warm
/// start is an accelerant, not an input the answer is allowed to depend
/// on for validity.
pub fn optimize_with_warm_bytes(
    req: &OptimizeRequest,
    warm: Option<&[u8]>,
) -> Result<(Value, Vec<u8>)> {
    let dataset = synthesize(&req.network)?;
    let params = build_params(dataset.classes().clone(), &req.model)?;
    match &req.model.kind {
        ModelKind::Paper => {
            let initial = warm.and_then(|bytes| decode_schedule(bytes).ok());
            let (value, control) = optimize_paper(&params, req, initial)?;
            Ok((value, encode_schedule(&control)))
        }
        ModelKind::TwoRumor {
            lambda20,
            gamma1,
            gamma2,
            mu,
        } => {
            let m = TwoRumorModel::from_params(
                &params, *lambda20, *gamma1, *gamma2, *mu, req.c1, req.c2,
            )?;
            optimize_kind(&m, req, warm)
        }
        ModelKind::TieStrength { beta } => {
            let m = tie_strength_model(&params, *beta, req.c1, req.c2)?;
            optimize_kind(&m, req, warm)
        }
    }
}

/// The multi-control sweep path shared by the compartment-model kinds.
fn optimize_kind<M: CompartmentModel>(
    model: &M,
    req: &OptimizeRequest,
    warm: Option<&[u8]>,
) -> Result<(Value, Vec<u8>)> {
    let bounds = MultiControlBounds::new(vec![req.eps_max; model.n_controls()])?;
    let initial = warm
        .and_then(|bytes| decode_multi_schedule(bytes).ok())
        .filter(|c| c.n_channels() == model.n_controls());
    let options = MultiFbsmOptions {
        n_nodes: 101,
        max_iterations: req.max_iters,
        tolerance: 1e-4,
        relaxation: 0.3,
        initial_control: initial,
        // Same split policy as the paper path: a single solve soaks the
        // whole intra-replica thread budget.
        inner_threads: None,
        ..Default::default()
    };
    let result = optimize_compartments_monitored(
        model,
        &uniform_initial(model, req.i0),
        req.tf,
        &bounds,
        &options,
    )?;
    let mut schedule = vec![("t".to_string(), Value::num_arr(result.control.grid()))];
    for (c, name) in model.control_names().iter().enumerate() {
        schedule.push((name.to_string(), Value::num_arr(result.control.values(c))));
    }
    let value = Value::obj([
        ("kind", Value::Str(req.model.kind.name().to_string())),
        ("converged", Value::Bool(result.converged)),
        ("iterations", Value::Num(result.iterations as f64)),
        ("source", Value::Str("multi_fbsm".to_string())),
        (
            "cost",
            Value::obj([
                ("running", Value::Num(result.cost.running())),
                ("total", Value::Num(result.cost.total())),
                ("channels", Value::num_arr(&result.cost.channel_costs)),
            ]),
        ),
        (
            "terminal_infected",
            Value::Num(model.terminal_objective(result.trajectory.last_state())),
        ),
        ("schedule", Value::Obj(schedule)),
    ]);
    Ok((value, encode_multi_schedule(&result.control)))
}

/// The guarded legacy sweep for the paper kind.
fn optimize_paper(
    params: &ModelParams,
    req: &OptimizeRequest,
    initial: Option<PiecewiseControl>,
) -> Result<(Value, PiecewiseControl)> {
    let weights = CostWeights::new(req.c1, req.c2)?;
    let bounds = ControlBounds::new(req.eps_max, req.eps_max)?;
    let initial_state = NetworkState::initial_uniform(params.n_classes(), req.i0)?;
    let guarded = optimize_guarded(
        params,
        &initial_state,
        req.tf,
        &bounds,
        &weights,
        &WatchdogOptions {
            fbsm: FbsmOptions {
                n_nodes: 101,
                max_iterations: req.max_iters,
                tolerance: 1e-4,
                relaxation: 0.3,
                initial_control: initial,
                // Split policy: an optimize request (and each point of a
                // durable optimize_sweep campaign) is a *single* solve,
                // so the intra-replica kernels soak the whole thread
                // budget — `None` resolves through RUMOR_INNER_THREADS,
                // then the --threads/RUMOR_THREADS chain. Ensembles keep
                // their replica-level parallelism instead and never
                // construct inner pools.
                inner_threads: None,
                ..Default::default()
            },
            ..Default::default()
        },
    )?;
    let result = &guarded.result;
    let value = Value::obj([
        ("converged", Value::Bool(result.converged)),
        ("iterations", Value::Num(result.iterations as f64)),
        ("degraded", Value::Bool(guarded.degraded)),
        (
            "source",
            Value::Str(
                match guarded.source {
                    SweepSource::Fbsm => "fbsm",
                    SweepSource::HeuristicFallback => "heuristic_fallback",
                }
                .to_string(),
            ),
        ),
        ("restarts", Value::Num(guarded.restarts.len() as f64)),
        (
            "cost",
            Value::obj([
                ("running", Value::Num(result.cost.running())),
                ("total", Value::Num(result.cost.total())),
            ]),
        ),
        (
            "terminal_infected",
            Value::Num(result.trajectory.last_state().total_infected()),
        ),
        (
            "schedule",
            Value::obj([
                ("t", Value::num_arr(result.control.grid())),
                ("eps1", Value::num_arr(result.control.eps1_values())),
                ("eps2", Value::num_arr(result.control.eps2_values())),
            ]),
        ),
    ]);
    Ok((value, guarded.result.control))
}

/// `POST /v1/ensemble`: fault-isolated synchronous-ABM ensemble on the
/// realized graph, compared against the mean-field prediction. `threads`
/// comes from the server (resolved once via `rumor_par`).
pub fn ensemble(req: &EnsembleRequest, threads: usize) -> Result<Value> {
    let dataset = synthesize(&req.network)?;
    let graph = dataset.realize_graph()?;
    // Microscopic rates key off the realized graph's degrees.
    let classes = DegreeClasses::from_graph(&graph)?;
    let params = build_params(classes, &req.model)?;
    let cfg = AbmConfig {
        alpha: params.alpha(),
        dt: req.dt,
        tf: req.tf,
        eps1: req.eps1,
        eps2: req.eps2,
        initial_infected: req.i0,
        record_every: 10,
    };
    let policy = IsolationPolicy { quorum: req.quorum };
    let isolated = run_ensemble_isolated_threads(
        &graph,
        &params,
        &cfg,
        Simulator::Synchronous,
        req.runs,
        req.network.seed,
        &policy,
        Some(threads),
    )?;
    let ens = &isolated.result;
    let mf = mean_field_reference(&params, &cfg, &ens.times)?;
    let deviation = max_deviation(ens, &mf)?;
    Ok(Value::obj([
        ("runs", Value::Num(ens.runs as f64)),
        ("attempted", Value::Num(isolated.attempted as f64)),
        ("excluded", Value::Num(isolated.failures.len() as f64)),
        ("degraded", Value::Bool(isolated.degraded())),
        ("times", Value::num_arr(&ens.times)),
        ("i_mean", Value::num_arr(&ens.i_mean)),
        ("i_std", Value::num_arr(&ens.i_std)),
        ("max_deviation_vs_ode", Value::Num(deviation)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::parse;

    fn small_net() -> &'static str {
        r#"{"network": {"nodes": 300, "k_max": 25, "mean_degree": 4}, "tf": 10}"#
    }

    #[test]
    fn simulate_handler_is_deterministic() {
        let req = SimulateRequest::from_value(&parse(small_net()).unwrap()).unwrap();
        let a = simulate(&req).unwrap();
        let b = simulate(&req).unwrap();
        assert_eq!(
            crate::wire::serialize(&a),
            crate::wire::serialize(&b),
            "identical requests must produce identical bytes"
        );
        assert!(a.get("times").unwrap().as_arr().unwrap().len() == 201);
    }

    #[test]
    fn threshold_handler_reports_consistency() {
        let req = ThresholdRequest::from_value(
            &parse(r#"{"network": {"nodes": 300, "k_max": 25, "mean_degree": 4}}"#).unwrap(),
        )
        .unwrap();
        let out = threshold(&req).unwrap();
        assert!(out.get("r0").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(out.get("consistent_with_r0"), Some(&Value::Bool(true)));
    }

    #[test]
    fn ensemble_handler_runs_small_workload() {
        let req = EnsembleRequest::from_value(
            &parse(
                r#"{"network": {"nodes": 200, "k_max": 20, "mean_degree": 4},
                    "tf": 3, "runs": 2}"#,
            )
            .unwrap(),
        )
        .unwrap();
        let out = ensemble(&req, 1).unwrap();
        assert_eq!(out.get("runs").unwrap().as_f64(), Some(2.0));
        assert!(!out.get("times").unwrap().as_arr().unwrap().is_empty());
    }
}
