//! Minimal HTTP/1.1 framing over a [`TcpStream`].
//!
//! Only what the service needs: request-line + header parsing,
//! `Content-Length` bodies with a hard cap (checked **before** the body
//! is read, so an oversized upload costs one header parse, not 1 MiB of
//! buffering), `Expect: 100-continue` handling for curl-style clients,
//! and response framing in three flavours:
//!
//! * one-shot (`Connection: close`) — the threads backend's
//!   query-per-connection contract, unchanged since PR 4;
//! * keep-alive (`Connection: keep-alive`) — the epoll backend reuses
//!   connections across requests, so idle pollers cost an epoll slot,
//!   not a handshake per poll;
//! * chunked (`Transfer-Encoding: chunked`) — job streams emit each
//!   campaign point as its own chunk the moment it is durable.
//!
//! The blocking reader ([`read_request`]) and the incremental
//! [`RequestParser`] share one head parser, so both backends accept and
//! reject exactly the same byte streams.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Maximum bytes of request line + headers.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (path only; the service ignores queries).
    pub target: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Syntactically invalid request (HTTP 400).
    Malformed(String),
    /// Declared body exceeds the configured cap (HTTP 413).
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// Configured cap.
        limit: usize,
    },
    /// Unsupported framing, e.g. chunked transfer (HTTP 501).
    Unsupported(String),
    /// The socket timed out mid-request (HTTP 408).
    TimedOut,
    /// The peer vanished or another I/O failure occurred (no response
    /// possible).
    Io(std::io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Malformed(m) => write!(f, "malformed request: {m}"),
            ReadError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte cap")
            }
            ReadError::Unsupported(m) => write!(f, "unsupported request: {m}"),
            ReadError::TimedOut => write!(f, "timed out reading the request"),
            ReadError::Io(e) => write!(f, "i/o error reading the request: {e}"),
        }
    }
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ReadError::TimedOut,
            _ => ReadError::Io(e),
        }
    }
}

/// Reads and parses one request from the stream. The caller is expected
/// to have set read/write timeouts on the stream.
///
/// # Errors
///
/// See [`ReadError`]; every variant except `Io` maps to a well-defined
/// HTTP status.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, ReadError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    // Accumulate until the blank line that ends the header block.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ReadError::Malformed(format!(
                "header block exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                return Err(ReadError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before a request arrived",
                )));
            }
            return Err(ReadError::Malformed(
                "connection closed mid-header".to_string(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let mut request = parse_head(&buf[..head_end])?;
    let declared = declared_body_len(&request, max_body)?;

    let mut body = buf[head_end + 4..].to_vec();
    if body.len() < declared && request.header("expect").is_some_and(|v| v.contains("100")) {
        // The client is waiting for permission to send the body.
        stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
        stream.flush()?;
    }
    while body.len() < declared {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ReadError::Malformed(format!(
                "connection closed after {} of {declared} body bytes",
                body.len()
            )));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(declared);
    request.body = body;
    Ok(request)
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parses a request head (request line + header lines, **without** the
/// terminating blank line) into a body-less [`Request`]. Shared by the
/// blocking reader and the incremental [`RequestParser`], so both
/// backends speak exactly the same dialect.
///
/// # Errors
///
/// [`ReadError::Malformed`] for a syntactically invalid head.
pub fn parse_head(head: &[u8]) -> Result<Request, ReadError> {
    let head = std::str::from_utf8(head)
        .map_err(|_| ReadError::Malformed("non-UTF-8 header block".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(ReadError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!(
            "unsupported protocol {version:?}"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body: Vec::new(),
    })
}

/// Validates the framing headers and returns the declared body length.
///
/// # Errors
///
/// [`ReadError::Unsupported`] for chunked uploads,
/// [`ReadError::Malformed`] for a bad `Content-Length`, and
/// [`ReadError::BodyTooLarge`] beyond the cap — decided from the head
/// alone, before any body byte is read.
pub fn declared_body_len(request: &Request, max_body: usize) -> Result<usize, ReadError> {
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ReadError::Unsupported(
            "chunked transfer encoding is not supported; send Content-Length".to_string(),
        ));
    }
    let declared = match request.header("content-length") {
        None => 0,
        Some(raw) => raw
            .parse::<usize>()
            .map_err(|_| ReadError::Malformed(format!("bad Content-Length {raw:?}")))?,
    };
    if declared > max_body {
        return Err(ReadError::BodyTooLarge {
            declared,
            limit: max_body,
        });
    }
    Ok(declared)
}

/// What an incremental parse step produced.
#[derive(Debug)]
pub enum Parsed {
    /// The buffered bytes do not yet hold a complete request.
    NeedMore,
    /// One complete request; its bytes were consumed from the buffer
    /// (pipelined bytes for the next request remain buffered).
    Ready(Request),
    /// The byte stream can never become a valid request.
    Failed(ReadError),
}

/// Incremental request parser for the event-loop backend: bytes arrive
/// in arbitrary fragments (header split mid-line, body split mid-byte)
/// and are buffered until a full request is present. One parser lives
/// per connection and survives across keep-alive requests.
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    max_body: usize,
    /// Head already parsed for the in-progress request, plus its body
    /// span: `(request, body_start, declared_len)`.
    pending: Option<(Request, usize, usize)>,
    /// Set once when an `Expect: 100-continue` head has been parsed but
    /// the body has not fully arrived; the event loop answers with an
    /// interim `100 Continue` and clears it.
    wants_continue: bool,
}

impl RequestParser {
    /// A fresh parser enforcing the given body cap.
    pub fn new(max_body: usize) -> RequestParser {
        RequestParser {
            buf: Vec::new(),
            max_body,
            pending: None,
            wants_continue: false,
        }
    }

    /// `true` while no byte of the next request has arrived (the
    /// connection is idle at a request boundary — keep-alive parked).
    pub fn is_idle(&self) -> bool {
        self.buf.is_empty() && self.pending.is_none()
    }

    /// Takes the one-shot `100 Continue` request, if the last feed
    /// parsed an `Expect: 100-continue` head with an incomplete body.
    pub fn take_wants_continue(&mut self) -> bool {
        std::mem::take(&mut self.wants_continue)
    }

    /// Appends bytes and attempts to complete a request.
    pub fn feed(&mut self, bytes: &[u8]) -> Parsed {
        self.buf.extend_from_slice(bytes);
        self.advance()
    }

    /// Re-attempts a parse on already-buffered bytes (used after a
    /// response is flushed, to pick up a pipelined next request).
    pub fn advance(&mut self) -> Parsed {
        if self.pending.is_none() {
            let Some(head_end) = find_head_end(&self.buf) else {
                if self.buf.len() > MAX_HEAD_BYTES {
                    return Parsed::Failed(ReadError::Malformed(format!(
                        "header block exceeds {MAX_HEAD_BYTES} bytes"
                    )));
                }
                return Parsed::NeedMore;
            };
            let request = match parse_head(&self.buf[..head_end]) {
                Ok(r) => r,
                Err(e) => return Parsed::Failed(e),
            };
            let declared = match declared_body_len(&request, self.max_body) {
                Ok(n) => n,
                Err(e) => return Parsed::Failed(e),
            };
            self.pending = Some((request, head_end + 4, declared));
        }
        let (_, body_start, declared) = *self.pending.as_ref().expect("pending set above");
        if self.buf.len() < body_start + declared {
            let (request, _, _) = self.pending.as_ref().expect("pending set above");
            if request.header("expect").is_some_and(|v| v.contains("100")) {
                self.wants_continue = true;
            }
            return Parsed::NeedMore;
        }
        let (mut request, body_start, declared) = self.pending.take().expect("pending set above");
        request.body = self.buf[body_start..body_start + declared].to_vec();
        self.buf.drain(..body_start + declared);
        self.wants_continue = false;
        Parsed::Ready(request)
    }
}

/// Writes a complete one-shot response (`Connection: close`).
///
/// # Errors
///
/// Propagates socket write failures (the peer may already be gone; the
/// caller treats this as best-effort).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    let bytes = response_bytes(status, reason, content_type, extra_headers, body, false);
    stream.write_all(&bytes)?;
    stream.flush()
}

/// Renders a complete `Content-Length`-framed response into a buffer.
/// `keep_alive` selects the `Connection:` token; everything else is
/// byte-identical to the one-shot path, so cache-identity contracts
/// hold across backends.
pub fn response_bytes(
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body);
    out
}

/// Renders the head of a chunked-streaming response. The body follows
/// as [`chunk_bytes`] frames and ends with [`terminal_chunk_bytes`];
/// the connection closes after the terminal chunk.
pub fn stream_head_bytes(status: u16, reason: &str, content_type: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    )
    .into_bytes()
}

/// Frames one payload as a single HTTP chunk (hex length, CRLF
/// delimiters). Empty payloads are skipped — a zero-length chunk would
/// terminate the stream.
pub fn chunk_bytes(payload: &[u8]) -> Vec<u8> {
    if payload.is_empty() {
        return Vec::new();
    }
    let mut out = format!("{:x}\r\n", payload.len()).into_bytes();
    out.extend_from_slice(payload);
    out.extend_from_slice(b"\r\n");
    out
}

/// The zero-length chunk that terminates a chunked stream.
pub fn terminal_chunk_bytes() -> &'static [u8] {
    b"0\r\n\r\n"
}

/// The standard reason phrase for the statuses the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready(parsed: Parsed) -> Request {
        match parsed {
            Parsed::Ready(r) => r,
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    fn assert_need_more(parsed: &Parsed) {
        assert!(matches!(parsed, Parsed::NeedMore), "expected NeedMore");
    }

    #[test]
    fn whole_request_in_one_feed() {
        let mut p = RequestParser::new(1024);
        let r = ready(p.feed(b"POST /v1/simulate HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}"));
        assert_eq!(r.method, "POST");
        assert_eq!(r.target, "/v1/simulate");
        assert_eq!(r.body, b"{}");
        assert!(p.is_idle());
    }

    #[test]
    fn header_split_mid_line() {
        let mut p = RequestParser::new(1024);
        // Split inside the request line, inside a header name, and
        // between the CR and LF of the terminating blank line.
        assert_need_more(&p.feed(b"GET /hea"));
        assert_need_more(&p.feed(b"lthz HTTP/1.1\r\nHo"));
        assert_need_more(&p.feed(b"st: x\r\n\r"));
        let r = ready(p.feed(b"\n"));
        assert_eq!(r.method, "GET");
        assert_eq!(r.target, "/healthz");
        assert_eq!(r.header("host"), Some("x"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn body_split_mid_byte() {
        let mut p = RequestParser::new(1024);
        assert_need_more(&p.feed(b"POST /v1/threshold HTTP/1.1\r\nContent-Length: 9\r\n\r\n"));
        assert_need_more(&p.feed(b"{\"a\""));
        let r = ready(p.feed(b":true}"));
        assert_eq!(r.body, b"{\"a\":true}"[..9].to_vec());
        // One over-delivered byte? No: 4 + 6 = 10 > 9, so the tenth
        // byte stays buffered as the start of a pipelined request.
        assert!(!p.is_idle());
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let mut p = RequestParser::new(1024);
        let r1 = ready(p.feed(b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n"));
        assert_eq!(r1.target, "/healthz");
        let r2 = ready(p.advance());
        assert_eq!(r2.target, "/metrics");
        assert!(p.is_idle());
    }

    #[test]
    fn body_too_large_rejected_from_head_alone() {
        let mut p = RequestParser::new(8);
        let parsed = p.feed(b"POST /v1/simulate HTTP/1.1\r\nContent-Length: 99\r\n\r\n");
        match parsed {
            Parsed::Failed(ReadError::BodyTooLarge { declared, limit }) => {
                assert_eq!((declared, limit), (99, 8));
            }
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn chunked_upload_rejected() {
        let mut p = RequestParser::new(1024);
        let parsed = p.feed(b"POST /v1/simulate HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        assert!(matches!(parsed, Parsed::Failed(ReadError::Unsupported(_))));
    }

    #[test]
    fn oversized_head_rejected() {
        let mut p = RequestParser::new(1024);
        let filler = vec![b'a'; MAX_HEAD_BYTES + 8];
        assert!(matches!(
            p.feed(&filler),
            Parsed::Failed(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn expect_continue_flagged_until_body_arrives() {
        let mut p = RequestParser::new(1024);
        assert_need_more(&p.feed(
            b"POST /v1/simulate HTTP/1.1\r\nContent-Length: 2\r\nExpect: 100-continue\r\n\r\n",
        ));
        assert!(p.take_wants_continue());
        assert!(!p.take_wants_continue(), "one-shot flag must clear");
        let r = ready(p.feed(b"{}"));
        assert_eq!(r.body, b"{}");
    }

    #[test]
    fn response_bytes_matches_one_shot_framing() {
        let close = response_bytes(200, "OK", "application/json", &[], b"{}", false);
        let text = String::from_utf8(close).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        let alive = response_bytes(200, "OK", "application/json", &[], b"{}", true);
        let text = String::from_utf8(alive).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
    }

    #[test]
    fn chunk_framing_round_trips() {
        assert_eq!(chunk_bytes(b"hello\n"), b"6\r\nhello\n\r\n");
        assert!(chunk_bytes(b"").is_empty());
        assert_eq!(terminal_chunk_bytes(), b"0\r\n\r\n");
        let head = String::from_utf8(stream_head_bytes(200, "OK", "application/json")).unwrap();
        assert!(head.contains("Transfer-Encoding: chunked\r\n"));
        assert!(head.ends_with("\r\n\r\n"));
    }
}
