//! Minimal HTTP/1.1 framing over a [`TcpStream`].
//!
//! Only what the service needs: request-line + header parsing,
//! `Content-Length` bodies with a hard cap (checked **before** the body
//! is read, so an oversized upload costs one header parse, not 1 MiB of
//! buffering), `Expect: 100-continue` handling for curl-style clients,
//! and one-shot responses (`Connection: close` on every exchange — the
//! service is query-per-connection by design; admission control happens
//! per connection at the accept queue).

use std::io::{Read, Write};
use std::net::TcpStream;

/// Maximum bytes of request line + headers.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (path only; the service ignores queries).
    pub target: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Syntactically invalid request (HTTP 400).
    Malformed(String),
    /// Declared body exceeds the configured cap (HTTP 413).
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// Configured cap.
        limit: usize,
    },
    /// Unsupported framing, e.g. chunked transfer (HTTP 501).
    Unsupported(String),
    /// The socket timed out mid-request (HTTP 408).
    TimedOut,
    /// The peer vanished or another I/O failure occurred (no response
    /// possible).
    Io(std::io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Malformed(m) => write!(f, "malformed request: {m}"),
            ReadError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte cap")
            }
            ReadError::Unsupported(m) => write!(f, "unsupported request: {m}"),
            ReadError::TimedOut => write!(f, "timed out reading the request"),
            ReadError::Io(e) => write!(f, "i/o error reading the request: {e}"),
        }
    }
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ReadError::TimedOut,
            _ => ReadError::Io(e),
        }
    }
}

/// Reads and parses one request from the stream. The caller is expected
/// to have set read/write timeouts on the stream.
///
/// # Errors
///
/// See [`ReadError`]; every variant except `Io` maps to a well-defined
/// HTTP status.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, ReadError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    // Accumulate until the blank line that ends the header block.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ReadError::Malformed(format!(
                "header block exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                return Err(ReadError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before a request arrived",
                )));
            }
            return Err(ReadError::Malformed(
                "connection closed mid-header".to_string(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ReadError::Malformed("non-UTF-8 header block".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(ReadError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!(
            "unsupported protocol {version:?}"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut request = Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body: Vec::new(),
    };

    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ReadError::Unsupported(
            "chunked transfer encoding is not supported; send Content-Length".to_string(),
        ));
    }
    let declared = match request.header("content-length") {
        None => 0,
        Some(raw) => raw
            .parse::<usize>()
            .map_err(|_| ReadError::Malformed(format!("bad Content-Length {raw:?}")))?,
    };
    if declared > max_body {
        return Err(ReadError::BodyTooLarge {
            declared,
            limit: max_body,
        });
    }

    let mut body = buf[head_end + 4..].to_vec();
    if body.len() < declared && request.header("expect").is_some_and(|v| v.contains("100")) {
        // The client is waiting for permission to send the body.
        stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
        stream.flush()?;
    }
    while body.len() < declared {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ReadError::Malformed(format!(
                "connection closed after {} of {declared} body bytes",
                body.len()
            )));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(declared);
    request.body = body;
    Ok(request)
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes a complete one-shot response (`Connection: close`).
///
/// # Errors
///
/// Propagates socket write failures (the peer may already be gone; the
/// caller treats this as best-effort).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// The standard reason phrase for the statuses the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}
