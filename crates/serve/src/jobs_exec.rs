//! Executes campaign points for the durable job manager.
//!
//! [`CampaignRunner`] is the service's [`PointRunner`]: it decodes the
//! opaque spec payload back into the validated submission, derives the
//! point's parameters (swept `λ0`, or a per-replica seed for ensemble
//! campaigns), and drives the same pure handlers the synchronous
//! endpoints use. Determinism in `(spec, index, warm)` is inherited
//! from the engines, which is what makes recovered campaigns finish
//! with byte-identical result sets.
//!
//! Failure classification mirrors the HTTP mapping: what would have
//! been a `400` can never succeed on retry (`Permanent`), what would
//! have been a `500` might (`Transient`). Optimize sweeps thread a
//! warm-start schedule between points through the manager's durable
//! checkpoint, encoded with [`rumor_control::checkpoint`].

use crate::handlers::{self, HandlerError};
use crate::jobs_api::{JobKind, JobSubmitRequest};
use crate::wire::{self, Value};
use rumor_jobs::{JobSpec, PointOutcome, PointRunner};
use std::time::Duration;

/// The service-side point executor.
pub struct CampaignRunner {
    /// Thread budget handed to engines that parallelize internally.
    pub workers: usize,
}

/// Replaces `v[section][key]` in a canonical object. Canonical forms
/// materialize every field, so a missing slot means a foreign value —
/// left untouched rather than panicking.
fn set_nested(v: &mut Value, section: &str, key: &str, val: Value) {
    if let Value::Obj(members) = v {
        if let Some((_, Value::Obj(inner))) = members.iter_mut().find(|(k, _)| k == section) {
            if let Some((_, slot)) = inner.iter_mut().find(|(k, _)| k == key) {
                *slot = val;
            }
        }
    }
}

/// Replaces a top-level field of a canonical object.
fn set_top(v: &mut Value, key: &str, val: Value) {
    if let Value::Obj(members) = v {
        if let Some((_, slot)) = members.iter_mut().find(|(k, _)| k == key) {
            *slot = val;
        }
    }
}

fn classify(e: HandlerError) -> PointOutcome {
    match e {
        HandlerError::BadRequest(m) => PointOutcome::Permanent(m),
        HandlerError::Internal(m) => PointOutcome::Transient(m),
    }
}

fn result_payload(fields: Vec<(&'static str, Value)>) -> Vec<u8> {
    wire::serialize(&Value::obj(fields)).into_bytes()
}

impl CampaignRunner {
    fn threshold_point(&self, req: &JobSubmitRequest, index: u64) -> PointOutcome {
        let lambda0 = req.lambda0_at(index);
        let mut base = req.base.clone();
        set_nested(&mut base, "model", "lambda0", Value::Num(lambda0));
        let point = match crate::api::ThresholdRequest::from_value(&base) {
            Ok(r) => r,
            Err(e) => return PointOutcome::Permanent(format!("point {index}: {e}")),
        };
        match handlers::threshold(&point) {
            Ok(out) => PointOutcome::Ok {
                payload: result_payload(vec![
                    ("point", Value::Num(index as f64)),
                    ("lambda0", Value::Num(lambda0)),
                    ("result", out),
                ]),
                warm: None,
            },
            Err(e) => classify(e),
        }
    }

    fn optimize_point(
        &self,
        req: &JobSubmitRequest,
        index: u64,
        warm: Option<&[u8]>,
    ) -> PointOutcome {
        let lambda0 = req.lambda0_at(index);
        let mut base = req.base.clone();
        set_nested(&mut base, "model", "lambda0", Value::Num(lambda0));
        let point = match crate::api::OptimizeRequest::from_value(&base) {
            Ok(r) => r,
            Err(e) => return PointOutcome::Permanent(format!("point {index}: {e}")),
        };
        // The warm bytes pass through opaquely: the handler picks the
        // codec for the request's model kind (RCP1 pair schedules for
        // the paper model, RCP2 for the multi-control kinds) and
        // degrades corrupt bytes to a cold start, so this runner never
        // learns a schedule format.
        match handlers::optimize_with_warm_bytes(&point, warm) {
            Ok((out, schedule_bytes)) => PointOutcome::Ok {
                payload: result_payload(vec![
                    ("point", Value::Num(index as f64)),
                    ("lambda0", Value::Num(lambda0)),
                    ("result", out),
                ]),
                warm: Some(schedule_bytes),
            },
            Err(e) => classify(e),
        }
    }

    fn ensemble_point(&self, req: &JobSubmitRequest, index: u64) -> PointOutcome {
        let mut base = req.base.clone();
        let base_seed = req
            .base
            .get("network")
            .and_then(|n| n.get("seed"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0) as u64;
        let seed = base_seed.wrapping_add(index);
        set_nested(&mut base, "network", "seed", Value::Num(seed as f64));
        set_top(&mut base, "runs", Value::Num(1.0));
        let point = match crate::api::EnsembleRequest::from_value(&base) {
            Ok(r) => r,
            Err(e) => return PointOutcome::Permanent(format!("point {index}: {e}")),
        };
        match handlers::ensemble(&point, self.workers.max(1)) {
            Ok(out) => PointOutcome::Ok {
                payload: result_payload(vec![
                    ("point", Value::Num(index as f64)),
                    ("seed", Value::Num(seed as f64)),
                    ("result", out),
                ]),
                warm: None,
            },
            Err(e) => classify(e),
        }
    }
}

impl PointRunner for CampaignRunner {
    fn run_point(
        &self,
        spec: &JobSpec,
        index: u64,
        attempt: u32,
        warm: Option<&[u8]>,
    ) -> PointOutcome {
        let req = match JobSubmitRequest::decode_spec(spec) {
            Ok(r) => r,
            Err(e) => return PointOutcome::Permanent(format!("undecodable campaign spec: {e}")),
        };
        // Injected faults come first so they also exercise the retry
        // and quarantine paths of throttled campaigns.
        if req.inject_persistent.binary_search(&index).is_ok() {
            return PointOutcome::Transient(format!(
                "injected persistent fault at point {index} (attempt {attempt})"
            ));
        }
        if attempt == 0 && req.inject_transient.binary_search(&index).is_ok() {
            return PointOutcome::Transient(format!("injected transient fault at point {index}"));
        }
        if req.throttle_ms > 0 {
            std::thread::sleep(Duration::from_millis(req.throttle_ms));
        }
        match req.kind {
            JobKind::ThresholdSweep => self.threshold_point(&req, index),
            JobKind::OptimizeSweep => self.optimize_point(&req, index, warm),
            JobKind::Ensemble => self.ensemble_point(&req, index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::parse;
    use rumor_control::checkpoint::{decode_multi_schedule, decode_schedule};

    fn small_sweep(kind: &str, points: u64) -> JobSpec {
        let body = format!(
            r#"{{"kind": "{kind}", "points": {points},
                "sweep": {{"from": 0.02, "to": 0.03}},
                "base": {{"network": {{"nodes": 300, "k_max": 25, "mean_degree": 4}}}}}}"#
        );
        JobSubmitRequest::from_value(&parse(&body).unwrap())
            .unwrap()
            .to_spec()
    }

    #[test]
    fn threshold_points_are_deterministic_and_swept() {
        let runner = CampaignRunner { workers: 1 };
        let spec = small_sweep("threshold_sweep", 3);
        let run = |index| match runner.run_point(&spec, index, 0, None) {
            PointOutcome::Ok { payload, .. } => payload,
            _ => panic!("point {index} failed"),
        };
        assert_eq!(run(0), run(0), "same point must be byte-identical");
        assert_ne!(run(0), run(2), "sweep must vary the point");
        let text = String::from_utf8(run(1)).unwrap();
        let value = parse(&text).unwrap();
        assert_eq!(value.get("point").unwrap().as_f64(), Some(1.0));
        assert!((value.get("lambda0").unwrap().as_f64().unwrap() - 0.025).abs() < 1e-12);
        assert!(value.get("result").unwrap().get("r0").is_some());
    }

    #[test]
    fn injected_faults_classify_as_transient() {
        let runner = CampaignRunner { workers: 1 };
        let spec = JobSubmitRequest::from_value(
            &parse(
                r#"{"points": 4, "inject": {"transient": [1], "persistent": [2]},
                    "base": {"network": {"nodes": 300, "k_max": 25, "mean_degree": 4}}}"#,
            )
            .unwrap(),
        )
        .unwrap()
        .to_spec();
        assert!(matches!(
            runner.run_point(&spec, 1, 0, None),
            PointOutcome::Transient(_)
        ));
        // The transient point succeeds on its retry...
        assert!(matches!(
            runner.run_point(&spec, 1, 1, None),
            PointOutcome::Ok { .. }
        ));
        // ...the persistent one never does.
        for attempt in 0..3 {
            assert!(matches!(
                runner.run_point(&spec, 2, attempt, None),
                PointOutcome::Transient(_)
            ));
        }
    }

    #[test]
    fn optimize_points_thread_a_warm_schedule() {
        let runner = CampaignRunner { workers: 1 };
        let spec = JobSubmitRequest::from_value(
            &parse(
                r#"{"kind": "optimize_sweep", "points": 2,
                    "sweep": {"from": 0.02, "to": 0.022},
                    "base": {"tf": 20, "max_iters": 150,
                             "network": {"nodes": 300, "k_max": 25, "mean_degree": 4}}}"#,
            )
            .unwrap(),
        )
        .unwrap()
        .to_spec();
        let PointOutcome::Ok { warm, .. } = runner.run_point(&spec, 0, 0, None) else {
            panic!("cold point failed");
        };
        let warm = warm.expect("optimize points must emit warm bytes");
        decode_schedule(&warm).expect("warm bytes must be a valid schedule checkpoint");
        let PointOutcome::Ok { payload, .. } = runner.run_point(&spec, 1, 0, Some(&warm)) else {
            panic!("warm point failed");
        };
        let text = String::from_utf8(payload).unwrap();
        let value = parse(&text).unwrap();
        let iters = value
            .get("result")
            .unwrap()
            .get("iterations")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(iters >= 1.0);
        // Corrupt warm bytes fall back to a cold start, not a failure.
        assert!(matches!(
            runner.run_point(&spec, 1, 0, Some(b"garbage")),
            PointOutcome::Ok { .. }
        ));
    }

    #[test]
    fn two_rumor_optimize_points_thread_rcp2_warm_bytes() {
        let runner = CampaignRunner { workers: 1 };
        let spec = JobSubmitRequest::from_value(
            &parse(
                r#"{"kind": "optimize_sweep", "points": 2,
                    "sweep": {"from": 0.02, "to": 0.022},
                    "base": {"tf": 15, "max_iters": 60, "eps_max": 0.2,
                             "model": {"kind": "two_rumor"},
                             "network": {"nodes": 300, "k_max": 25, "mean_degree": 4}}}"#,
            )
            .unwrap(),
        )
        .unwrap()
        .to_spec();
        let PointOutcome::Ok { warm, payload } = runner.run_point(&spec, 0, 0, None) else {
            panic!("cold two-rumor point failed");
        };
        let text = String::from_utf8(payload).unwrap();
        assert!(text.contains("\"kind\":\"two_rumor\""), "{text}");
        let warm = warm.expect("optimize points must emit warm bytes");
        // Multi-control kinds persist RCP2, not the pair codec — and the
        // bytes round-trip exactly, which is the resume contract.
        let schedule = decode_multi_schedule(&warm).expect("RCP2 warm bytes");
        assert_eq!(schedule.n_channels(), 2);
        assert!(decode_schedule(&warm).is_err(), "must not be RCP1");
        assert!(matches!(
            runner.run_point(&spec, 1, 0, Some(&warm)),
            PointOutcome::Ok { .. }
        ));
        // Foreign bytes (an RCP1 pair schedule is still decodable as a
        // legacy 2-channel warm start; true garbage is not) degrade to a
        // cold start rather than failing the point.
        assert!(matches!(
            runner.run_point(&spec, 1, 0, Some(b"garbage")),
            PointOutcome::Ok { .. }
        ));
    }

    #[test]
    fn ensemble_points_get_unique_seeds_and_one_replica() {
        let runner = CampaignRunner { workers: 1 };
        let spec = JobSubmitRequest::from_value(
            &parse(
                r#"{"kind": "ensemble", "points": 2,
                    "base": {"network": {"nodes": 200, "k_max": 20, "mean_degree": 4},
                             "tf": 3, "runs": 8}}"#,
            )
            .unwrap(),
        )
        .unwrap()
        .to_spec();
        let run = |index| match runner.run_point(&spec, index, 0, None) {
            PointOutcome::Ok { payload, .. } => {
                parse(&String::from_utf8(payload).unwrap()).unwrap()
            }
            _ => panic!("point {index} failed"),
        };
        let a = run(0);
        let b = run(1);
        assert_ne!(a.get("seed"), b.get("seed"));
        // The per-point replica count is forced to 1 regardless of base.
        assert_eq!(
            a.get("result").unwrap().get("runs").unwrap().as_f64(),
            Some(1.0)
        );
    }
}
