//! Typed request structs for the JSON endpoints.
//!
//! Every endpoint body deserializes into an owned request struct via
//! `from_value`-style constructors: unknown fields are rejected (typos
//! fail loudly, matching the CLI's flag policy), missing fields take the
//! CLI's documented defaults, and every field is range-checked *before*
//! any engine runs — the service refuses work it can see is invalid or
//! oversized with a `400`, keeping admission cheap.
//!
//! Each struct also produces a **canonical value**: the full field set
//! in a fixed order with defaults materialized. Serializing it yields
//! one byte string per semantically identical request — the result
//! cache's key — regardless of the client's field order, whitespace, or
//! omitted defaults.

use crate::wire::Value;
use std::fmt;

/// Largest integer the `f64`-backed wire layer can carry exactly.
const MAX_EXACT_INT: f64 = 9_007_199_254_740_992.0; // 2^53

/// A request that failed validation (HTTP 400).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError(pub String);

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ApiError {}

type Result<T> = std::result::Result<T, ApiError>;

pub(crate) fn field_err(key: &str, reason: impl fmt::Display) -> ApiError {
    ApiError(format!("field {key:?}: {reason}"))
}

/// Checks that `v` is an object whose keys all appear in `allowed`.
pub(crate) fn check_keys(v: &Value, context: &str, allowed: &[&str]) -> Result<()> {
    let Some(members) = v.as_obj() else {
        return Err(ApiError(format!("{context} must be a JSON object")));
    };
    for (key, _) in members {
        if !allowed.contains(&key.as_str()) {
            return Err(ApiError(format!(
                "{context}: unknown field {key:?} (expected one of: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

pub(crate) fn get_f64(v: &Value, key: &str, default: f64) -> Result<f64> {
    match v.get(key) {
        None => Ok(default),
        Some(item) => item
            .as_f64()
            .ok_or_else(|| field_err(key, "must be a number")),
    }
}

pub(crate) fn get_usize(v: &Value, key: &str, default: usize) -> Result<usize> {
    match v.get(key) {
        None => Ok(default),
        Some(item) => {
            let x = item
                .as_f64()
                .ok_or_else(|| field_err(key, "must be a number"))?;
            if x < 0.0 || x.fract() != 0.0 || x > MAX_EXACT_INT {
                return Err(field_err(key, "must be a non-negative integer"));
            }
            Ok(x as usize)
        }
    }
}

pub(crate) fn get_u64(v: &Value, key: &str, default: u64) -> Result<u64> {
    get_usize(v, key, default as usize).map(|x| x as u64)
}

fn check_range(key: &str, x: f64, lo: f64, hi: f64) -> Result<()> {
    if !x.is_finite() || x < lo || x > hi {
        return Err(field_err(key, format!("must lie in [{lo}, {hi}], got {x}")));
    }
    Ok(())
}

fn check_positive(key: &str, x: f64, hi: f64) -> Result<()> {
    if !x.is_finite() || x <= 0.0 || x > hi {
        return Err(field_err(key, format!("must lie in (0, {hi}], got {x}")));
    }
    Ok(())
}

/// The synthetic network a request runs on (a Digg-calibrated power-law
/// degree sequence; see `rumor_datasets::digg`). All fields optional in
/// the wire form; defaults match `rumor analyze`/`simulate`.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Maximum degree of the power-law sequence.
    pub k_max: usize,
    /// Target mean degree.
    pub mean_degree: f64,
    /// RNG seed for the degree sequence (and graph realization).
    pub seed: u64,
}

impl Default for NetworkSpec {
    fn default() -> Self {
        NetworkSpec {
            nodes: 5_000,
            k_max: 300,
            mean_degree: 24.0,
            seed: 2_009,
        }
    }
}

impl NetworkSpec {
    /// Parses `{"nodes", "k_max", "mean_degree", "seed"}`, bounding the
    /// request so a single query cannot monopolize the service.
    /// `max_nodes` differs per endpoint (ensemble realizes the graph).
    pub fn from_value(v: &Value, max_nodes: usize) -> Result<Self> {
        check_keys(v, "network", &["nodes", "k_max", "mean_degree", "seed"])?;
        let d = NetworkSpec::default();
        let spec = NetworkSpec {
            nodes: get_usize(v, "nodes", d.nodes)?,
            k_max: get_usize(v, "k_max", d.k_max)?,
            mean_degree: get_f64(v, "mean_degree", d.mean_degree)?,
            seed: get_u64(v, "seed", d.seed)?,
        };
        if spec.nodes < 10 || spec.nodes > max_nodes {
            return Err(field_err(
                "nodes",
                format!("must lie in [10, {max_nodes}], got {}", spec.nodes),
            ));
        }
        if spec.k_max < 1 || spec.k_max >= spec.nodes {
            return Err(field_err("k_max", "must lie in [1, nodes)"));
        }
        if !(spec.mean_degree.is_finite()
            && spec.mean_degree >= 1.0
            && spec.mean_degree <= spec.k_max as f64)
        {
            return Err(field_err("mean_degree", "must lie in [1, k_max]"));
        }
        Ok(spec)
    }

    fn canonical(&self) -> Value {
        Value::obj([
            ("nodes", Value::Num(self.nodes as f64)),
            ("k_max", Value::Num(self.k_max as f64)),
            ("mean_degree", Value::Num(self.mean_degree)),
            ("seed", Value::Num(self.seed as f64)),
        ])
    }
}

/// Which propagation model a request drives. The paper model is the
/// default; the other kinds ride on the generalized compartment
/// abstraction (`rumor-compartments`) and carry their own parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelKind {
    /// The paper's heterogeneous SIR model, Eq. (1).
    Paper,
    /// Competing two-rumor dynamics: a rumor and a truth campaign
    /// racing for shared susceptibles.
    TwoRumor {
        /// Truth acceptance scale: `λ2(k) = λ20·k`.
        lambda20: f64,
        /// Rumor recovery rate.
        gamma1: f64,
        /// Truth retirement rate.
        gamma2: f64,
        /// Fraction of truth-contacted spreaders that convert.
        mu: f64,
    },
    /// The paper model with tie-strength modulation
    /// `λ_eff(k) = λ(k)·k^(−β)`.
    TieStrength {
        /// Tie-strength exponent `β ≥ 0`.
        beta: f64,
    },
}

impl ModelKind {
    /// The wire spelling.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Paper => "paper",
            ModelKind::TwoRumor { .. } => "two_rumor",
            ModelKind::TieStrength { .. } => "tie_strength",
        }
    }
}

/// Model parameters shared by every endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Population inflow rate `α`.
    pub alpha: f64,
    /// Acceptance scale: `λ(k) = λ0·k` (the *rumor* acceptance for the
    /// two-rumor kind).
    pub lambda0: f64,
    /// Which model the parameters drive.
    pub kind: ModelKind,
}

impl Default for ModelSpec {
    fn default() -> Self {
        ModelSpec {
            alpha: 0.01,
            lambda0: 0.02,
            kind: ModelKind::Paper,
        }
    }
}

impl ModelSpec {
    /// Is this the paper model (the only kind the threshold theory and
    /// the ABM ensemble support)?
    pub fn is_paper(&self) -> bool {
        matches!(self.kind, ModelKind::Paper)
    }

    /// Parses `{"alpha", "lambda0", "kind", ...kind parameters}`. Kind
    /// parameters are only accepted under the kind they belong to, so a
    /// stray `beta` on a `two_rumor` request fails loudly instead of
    /// being silently dropped.
    pub fn from_value(v: &Value) -> Result<Self> {
        check_keys(
            v,
            "model",
            &[
                "alpha", "lambda0", "kind", "lambda20", "gamma1", "gamma2", "mu", "beta",
            ],
        )?;
        let d = ModelSpec::default();
        let alpha = get_f64(v, "alpha", d.alpha)?;
        let lambda0 = get_f64(v, "lambda0", d.lambda0)?;
        check_range("alpha", alpha, 0.0, 10.0)?;
        check_positive("lambda0", lambda0, 10.0)?;
        let kind_name = match v.get("kind") {
            None => "paper",
            Some(item) => item
                .as_str()
                .ok_or_else(|| field_err("kind", "must be a string"))?,
        };
        let reject_foreign = |keys: &[&str]| -> Result<()> {
            for key in keys {
                if v.get(key).is_some() {
                    return Err(field_err(
                        key,
                        format!("not a parameter of model kind {kind_name:?}"),
                    ));
                }
            }
            Ok(())
        };
        let kind = match kind_name {
            "paper" => {
                reject_foreign(&["lambda20", "gamma1", "gamma2", "mu", "beta"])?;
                ModelKind::Paper
            }
            "two_rumor" => {
                reject_foreign(&["beta"])?;
                let lambda20 = get_f64(v, "lambda20", 0.03)?;
                let gamma1 = get_f64(v, "gamma1", 0.05)?;
                let gamma2 = get_f64(v, "gamma2", 0.08)?;
                let mu = get_f64(v, "mu", 0.5)?;
                check_positive("lambda20", lambda20, 10.0)?;
                check_range("gamma1", gamma1, 0.0, 10.0)?;
                check_range("gamma2", gamma2, 0.0, 10.0)?;
                check_range("mu", mu, 0.0, 1.0)?;
                ModelKind::TwoRumor {
                    lambda20,
                    gamma1,
                    gamma2,
                    mu,
                }
            }
            "tie_strength" => {
                reject_foreign(&["lambda20", "gamma1", "gamma2", "mu"])?;
                let beta = get_f64(v, "beta", 0.5)?;
                check_range("beta", beta, 0.0, 10.0)?;
                ModelKind::TieStrength { beta }
            }
            other => {
                return Err(field_err(
                    "kind",
                    format!("must be one of paper, two_rumor, tie_strength, got {other:?}"),
                ))
            }
        };
        Ok(ModelSpec {
            alpha,
            lambda0,
            kind,
        })
    }

    fn canonical(&self) -> Value {
        // The paper kind serializes exactly as it did before the kinds
        // existed, so the canonical cache key of every historical
        // request is unchanged.
        let mut fields = vec![
            ("alpha", Value::Num(self.alpha)),
            ("lambda0", Value::Num(self.lambda0)),
        ];
        match &self.kind {
            ModelKind::Paper => {}
            ModelKind::TwoRumor {
                lambda20,
                gamma1,
                gamma2,
                mu,
            } => {
                fields.push(("kind", Value::Str("two_rumor".to_string())));
                fields.push(("lambda20", Value::Num(*lambda20)));
                fields.push(("gamma1", Value::Num(*gamma1)));
                fields.push(("gamma2", Value::Num(*gamma2)));
                fields.push(("mu", Value::Num(*mu)));
            }
            ModelKind::TieStrength { beta } => {
                fields.push(("kind", Value::Str("tie_strength".to_string())));
                fields.push(("beta", Value::Num(*beta)));
            }
        }
        Value::obj(fields)
    }
}

fn network_field(v: &Value, max_nodes: usize) -> Result<NetworkSpec> {
    match v.get("network") {
        None => {
            let d = NetworkSpec::default();
            if d.nodes > max_nodes {
                Err(field_err(
                    "network",
                    format!("required for this endpoint (default of {} nodes exceeds the {max_nodes}-node cap)", d.nodes),
                ))
            } else {
                Ok(d)
            }
        }
        Some(net) => NetworkSpec::from_value(net, max_nodes),
    }
}

fn model_field(v: &Value) -> Result<ModelSpec> {
    match v.get("model") {
        None => Ok(ModelSpec::default()),
        Some(m) => ModelSpec::from_value(m),
    }
}

/// `POST /v1/simulate` — integrate the heterogeneous SIR dynamics.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateRequest {
    /// Network the model runs on.
    pub network: NetworkSpec,
    /// Model parameters.
    pub model: ModelSpec,
    /// Truth-spreading rate `ε1`.
    pub eps1: f64,
    /// Blocking rate `ε2`.
    pub eps2: f64,
    /// Final time.
    pub tf: f64,
    /// Initial infected fraction per class.
    pub i0: f64,
    /// Output samples on `[0, tf]`.
    pub n_out: usize,
}

impl SimulateRequest {
    /// Parses and validates a simulate request body.
    pub fn from_value(v: &Value) -> Result<Self> {
        check_keys(
            v,
            "request",
            &["network", "model", "eps1", "eps2", "tf", "i0", "n_out"],
        )?;
        let req = SimulateRequest {
            network: network_field(v, 200_000)?,
            model: model_field(v)?,
            eps1: get_f64(v, "eps1", 0.2)?,
            eps2: get_f64(v, "eps2", 0.05)?,
            tf: get_f64(v, "tf", 150.0)?,
            i0: get_f64(v, "i0", 0.1)?,
            n_out: get_usize(v, "n_out", 201)?,
        };
        check_range("eps1", req.eps1, 0.0, 1.0)?;
        check_range("eps2", req.eps2, 0.0, 1.0)?;
        check_positive("tf", req.tf, 10_000.0)?;
        if !(req.i0 > 0.0 && req.i0 < 1.0) {
            return Err(field_err("i0", "must lie in (0, 1)"));
        }
        if req.n_out < 2 || req.n_out > 2_001 {
            return Err(field_err("n_out", "must lie in [2, 2001]"));
        }
        Ok(req)
    }

    /// The canonical (defaults-materialized, fixed-order) wire value.
    pub fn canonical(&self) -> Value {
        Value::obj([
            ("network", self.network.canonical()),
            ("model", self.model.canonical()),
            ("eps1", Value::Num(self.eps1)),
            ("eps2", Value::Num(self.eps2)),
            ("tf", Value::Num(self.tf)),
            ("i0", Value::Num(self.i0)),
            ("n_out", Value::Num(self.n_out as f64)),
        ])
    }
}

/// `POST /v1/threshold` — `r0`, equilibria, Theorem-2 consistency.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdRequest {
    /// Network the model runs on.
    pub network: NetworkSpec,
    /// Model parameters.
    pub model: ModelSpec,
    /// Truth-spreading rate `ε1`.
    pub eps1: f64,
    /// Blocking rate `ε2`.
    pub eps2: f64,
}

impl ThresholdRequest {
    /// Parses and validates a threshold request body.
    pub fn from_value(v: &Value) -> Result<Self> {
        check_keys(v, "request", &["network", "model", "eps1", "eps2"])?;
        let req = ThresholdRequest {
            network: network_field(v, 200_000)?,
            model: model_field(v)?,
            eps1: get_f64(v, "eps1", 0.2)?,
            eps2: get_f64(v, "eps2", 0.05)?,
        };
        check_range("eps1", req.eps1, 0.0, 1.0)?;
        check_range("eps2", req.eps2, 0.0, 1.0)?;
        // The r0/equilibrium theory is stated for the paper model only.
        if !req.model.is_paper() {
            return Err(field_err(
                "model.kind",
                format!(
                    "threshold analysis supports only the paper kind, got {:?}",
                    req.model.kind.name()
                ),
            ));
        }
        Ok(req)
    }

    /// The canonical (defaults-materialized, fixed-order) wire value.
    pub fn canonical(&self) -> Value {
        Value::obj([
            ("network", self.network.canonical()),
            ("model", self.model.canonical()),
            ("eps1", Value::Num(self.eps1)),
            ("eps2", Value::Num(self.eps2)),
        ])
    }
}

/// `POST /v1/optimize` — guarded FBSM countermeasure schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeRequest {
    /// Network the model runs on.
    pub network: NetworkSpec,
    /// Model parameters.
    pub model: ModelSpec,
    /// Control horizon.
    pub tf: f64,
    /// Initial infected fraction per class.
    pub i0: f64,
    /// Cost weight on `ε1²`.
    pub c1: f64,
    /// Cost weight on `ε2²`.
    pub c2: f64,
    /// Upper bound on both controls.
    pub eps_max: f64,
    /// Sweep iteration cap.
    pub max_iters: usize,
}

impl OptimizeRequest {
    /// Parses and validates an optimize request body.
    pub fn from_value(v: &Value) -> Result<Self> {
        check_keys(
            v,
            "request",
            &[
                "network",
                "model",
                "tf",
                "i0",
                "c1",
                "c2",
                "eps_max",
                "max_iters",
            ],
        )?;
        let req = OptimizeRequest {
            network: network_field(v, 200_000)?,
            model: model_field(v)?,
            tf: get_f64(v, "tf", 100.0)?,
            i0: get_f64(v, "i0", 0.05)?,
            c1: get_f64(v, "c1", 5.0)?,
            c2: get_f64(v, "c2", 10.0)?,
            eps_max: get_f64(v, "eps_max", 0.7)?,
            max_iters: get_usize(v, "max_iters", 300)?,
        };
        check_positive("tf", req.tf, 1_000.0)?;
        if !(req.i0 > 0.0 && req.i0 < 1.0) {
            return Err(field_err("i0", "must lie in (0, 1)"));
        }
        check_positive("c1", req.c1, 1e6)?;
        check_positive("c2", req.c2, 1e6)?;
        check_positive("eps_max", req.eps_max, 1.0)?;
        if req.max_iters < 1 || req.max_iters > 2_000 {
            return Err(field_err("max_iters", "must lie in [1, 2000]"));
        }
        Ok(req)
    }

    /// The canonical (defaults-materialized, fixed-order) wire value.
    pub fn canonical(&self) -> Value {
        Value::obj([
            ("network", self.network.canonical()),
            ("model", self.model.canonical()),
            ("tf", Value::Num(self.tf)),
            ("i0", Value::Num(self.i0)),
            ("c1", Value::Num(self.c1)),
            ("c2", Value::Num(self.c2)),
            ("eps_max", Value::Num(self.eps_max)),
            ("max_iters", Value::Num(self.max_iters as f64)),
        ])
    }
}

/// `POST /v1/ensemble` — fault-isolated agent-based ensemble vs the
/// mean-field prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleRequest {
    /// Network the model runs on (realized as an actual graph, so the
    /// node cap is tighter than the mean-field endpoints').
    pub network: NetworkSpec,
    /// Model parameters.
    pub model: ModelSpec,
    /// Truth-spreading rate `ε1`.
    pub eps1: f64,
    /// Blocking rate `ε2`.
    pub eps2: f64,
    /// Final time.
    pub tf: f64,
    /// Initial infected fraction.
    pub i0: f64,
    /// ABM time step.
    pub dt: f64,
    /// Number of replicas.
    pub runs: usize,
    /// Minimum surviving replica fraction.
    pub quorum: f64,
}

impl EnsembleRequest {
    /// Largest network an ensemble request may realize.
    pub const MAX_NODES: usize = 20_000;

    /// Parses and validates an ensemble request body.
    pub fn from_value(v: &Value) -> Result<Self> {
        check_keys(
            v,
            "request",
            &[
                "network", "model", "eps1", "eps2", "tf", "i0", "dt", "runs", "quorum",
            ],
        )?;
        let req = EnsembleRequest {
            network: network_field(v, Self::MAX_NODES)?,
            model: model_field(v)?,
            eps1: get_f64(v, "eps1", 0.2)?,
            eps2: get_f64(v, "eps2", 0.05)?,
            tf: get_f64(v, "tf", 40.0)?,
            i0: get_f64(v, "i0", 0.05)?,
            dt: get_f64(v, "dt", 0.1)?,
            runs: get_usize(v, "runs", 8)?,
            quorum: get_f64(v, "quorum", 0.5)?,
        };
        check_range("eps1", req.eps1, 0.0, 1.0)?;
        check_range("eps2", req.eps2, 0.0, 1.0)?;
        check_positive("tf", req.tf, 1_000.0)?;
        if !(req.i0 > 0.0 && req.i0 < 1.0) {
            return Err(field_err("i0", "must lie in (0, 1)"));
        }
        check_positive("dt", req.dt, 1.0)?;
        if req.runs < 1 || req.runs > 128 {
            return Err(field_err("runs", "must lie in [1, 128]"));
        }
        if !(req.quorum > 0.0 && req.quorum <= 1.0) {
            return Err(field_err("quorum", "must lie in (0, 1]"));
        }
        // The microscopic ABM implements the paper's transition rules.
        if !req.model.is_paper() {
            return Err(field_err(
                "model.kind",
                format!(
                    "ensemble simulation supports only the paper kind, got {:?}",
                    req.model.kind.name()
                ),
            ));
        }
        Ok(req)
    }

    /// The canonical (defaults-materialized, fixed-order) wire value.
    pub fn canonical(&self) -> Value {
        Value::obj([
            ("network", self.network.canonical()),
            ("model", self.model.canonical()),
            ("eps1", Value::Num(self.eps1)),
            ("eps2", Value::Num(self.eps2)),
            ("tf", Value::Num(self.tf)),
            ("i0", Value::Num(self.i0)),
            ("dt", Value::Num(self.dt)),
            ("runs", Value::Num(self.runs as f64)),
            ("quorum", Value::Num(self.quorum)),
        ])
    }
}

/// The canonical cache key of a request: endpoint plus the canonical
/// wire form. Two requests map to the same key iff they are
/// semantically identical, and the engines are deterministic, so a
/// cache hit can be served byte-for-byte.
pub fn canonical_key(endpoint: &str, canonical: &Value) -> String {
    format!("{endpoint}?{}", crate::wire::serialize(canonical))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::parse;

    #[test]
    fn defaults_fill_missing_fields() {
        let req = SimulateRequest::from_value(&parse("{}").unwrap()).unwrap();
        assert_eq!(req.network, NetworkSpec::default());
        assert_eq!(req.model, ModelSpec::default());
        assert_eq!(req.tf, 150.0);
        assert_eq!(req.n_out, 201);
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let err = SimulateRequest::from_value(&parse(r#"{"tff": 10}"#).unwrap()).unwrap_err();
        assert!(err.0.contains("tff"), "{err}");
        let err =
            ThresholdRequest::from_value(&parse(r#"{"network": {"n": 5}}"#).unwrap()).unwrap_err();
        assert!(err.0.contains("unknown field"), "{err}");
    }

    #[test]
    fn out_of_range_fields_are_rejected() {
        for bad in [
            r#"{"eps1": 1.5}"#,
            r#"{"tf": -1}"#,
            r#"{"tf": 1e9}"#,
            r#"{"i0": 0}"#,
            r#"{"n_out": 1}"#,
            r#"{"network": {"nodes": 4}}"#,
            r#"{"network": {"nodes": 1e9}}"#,
            r#"{"n_out": 2.5}"#,
        ] {
            assert!(
                SimulateRequest::from_value(&parse(bad).unwrap()).is_err(),
                "accepted {bad}"
            );
        }
    }

    #[test]
    fn ensemble_node_cap_is_tighter() {
        let big = r#"{"network": {"nodes": 50000, "k_max": 100}}"#;
        assert!(SimulateRequest::from_value(&parse(big).unwrap()).is_ok());
        assert!(EnsembleRequest::from_value(&parse(big).unwrap()).is_err());
    }

    #[test]
    fn canonical_key_ignores_field_order_and_defaults() {
        let a =
            SimulateRequest::from_value(&parse(r#"{"tf": 150, "eps1": 0.2}"#).unwrap()).unwrap();
        let b = SimulateRequest::from_value(&parse(r#"{"eps1": 0.2}"#).unwrap()).unwrap();
        assert_eq!(
            canonical_key("/v1/simulate", &a.canonical()),
            canonical_key("/v1/simulate", &b.canonical())
        );
    }

    #[test]
    fn model_kinds_parse_validate_and_canonicalize() {
        // Default and explicit paper spell the same canonical bytes as
        // the pre-kind wire format.
        let bare = SimulateRequest::from_value(&parse("{}").unwrap()).unwrap();
        let explicit =
            SimulateRequest::from_value(&parse(r#"{"model": {"kind": "paper"}}"#).unwrap())
                .unwrap();
        assert_eq!(
            crate::wire::serialize(&bare.canonical()),
            crate::wire::serialize(&explicit.canonical())
        );
        assert!(
            !crate::wire::serialize(&bare.canonical()).contains("kind"),
            "paper canonical form must not grow a kind field"
        );

        let two = SimulateRequest::from_value(
            &parse(r#"{"model": {"kind": "two_rumor", "gamma1": 0.1}}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(two.model.kind.name(), "two_rumor");
        let round = SimulateRequest::from_value(&two.canonical()).unwrap();
        assert_eq!(two, round);

        let tied = OptimizeRequest::from_value(
            &parse(r#"{"model": {"kind": "tie_strength", "beta": 0.8}}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(tied.model.kind, ModelKind::TieStrength { beta: 0.8 });
        let round = OptimizeRequest::from_value(&tied.canonical()).unwrap();
        assert_eq!(tied, round);

        for bad in [
            r#"{"model": {"kind": "nope"}}"#,
            r#"{"model": {"kind": 7}}"#,
            r#"{"model": {"beta": 0.5}}"#,
            r#"{"model": {"kind": "two_rumor", "beta": 0.5}}"#,
            r#"{"model": {"kind": "tie_strength", "mu": 0.5}}"#,
            r#"{"model": {"kind": "two_rumor", "mu": 1.5}}"#,
            r#"{"model": {"kind": "two_rumor", "lambda20": 0}}"#,
            r#"{"model": {"kind": "tie_strength", "beta": -1}}"#,
        ] {
            assert!(
                SimulateRequest::from_value(&parse(bad).unwrap()).is_err(),
                "accepted {bad}"
            );
        }
    }

    #[test]
    fn threshold_and_ensemble_accept_only_the_paper_kind() {
        let two = r#"{"model": {"kind": "two_rumor"},
                      "network": {"nodes": 300, "k_max": 25, "mean_degree": 4}}"#;
        let err = ThresholdRequest::from_value(&parse(two).unwrap()).unwrap_err();
        assert!(err.0.contains("paper"), "{err}");
        let err = EnsembleRequest::from_value(&parse(two).unwrap()).unwrap_err();
        assert!(err.0.contains("paper"), "{err}");
        // Simulate and optimize take all kinds.
        assert!(SimulateRequest::from_value(&parse(two).unwrap()).is_ok());
        assert!(OptimizeRequest::from_value(&parse(two).unwrap()).is_ok());
    }

    #[test]
    fn canonical_form_round_trips_through_from_value() {
        let req = OptimizeRequest::from_value(
            &parse(r#"{"tf": 60, "c1": 2.5, "network": {"nodes": 400, "k_max": 30}}"#).unwrap(),
        )
        .unwrap();
        let round = OptimizeRequest::from_value(&req.canonical()).unwrap();
        assert_eq!(req, round);
    }
}
