//! The wire form of a durable campaign job submission.
//!
//! `POST /v1/jobs` accepts a campaign: a `kind` (which engine runs at
//! each point), a point count, a `base` request validated exactly like
//! the corresponding synchronous endpoint, and a `sweep` over the
//! acceptance scale `λ0`. The validated submission serializes to one
//! canonical byte string which becomes the durable [`JobSpec`]
//! payload — re-running a recovered job decodes byte-for-byte the same
//! campaign the client submitted.
//!
//! Two deliberately boring test seams ride along: `throttle_ms` slows
//! points down (so crash-recovery tests can kill the server
//! mid-campaign deterministically) and `inject` marks points that fail
//! transiently (retry succeeds) or persistently (retry never helps, the
//! point quarantines and the job finishes `partial`).

use crate::api::{
    check_keys, field_err, get_f64, get_u64, ApiError, EnsembleRequest, OptimizeRequest,
    ThresholdRequest,
};
use crate::wire::{self, Value};
use rumor_jobs::JobSpec;

type Result<T> = std::result::Result<T, ApiError>;

/// Which engine a campaign drives at each grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// `r0`/equilibrium analysis per `λ0` grid point.
    ThresholdSweep,
    /// Guarded-FBSM optimization per `λ0` grid point, threading the
    /// previous point's schedule as a warm start.
    OptimizeSweep,
    /// One ABM replica per point (`seed = base seed + index`).
    Ensemble,
}

impl JobKind {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            JobKind::ThresholdSweep => "threshold_sweep",
            JobKind::OptimizeSweep => "optimize_sweep",
            JobKind::Ensemble => "ensemble",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<JobKind> {
        match s {
            "threshold_sweep" => Some(JobKind::ThresholdSweep),
            "optimize_sweep" => Some(JobKind::OptimizeSweep),
            "ensemble" => Some(JobKind::Ensemble),
            _ => None,
        }
    }
}

/// `POST /v1/jobs` — a validated campaign submission.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSubmitRequest {
    /// Engine driven at each point.
    pub kind: JobKind,
    /// Grid points (or replicas) in the campaign.
    pub points: u64,
    /// Canonical form of the per-point base request (same validation as
    /// the synchronous endpoint of the same name).
    pub base: Value,
    /// Sweep start: `λ0` at point 0.
    pub sweep_from: f64,
    /// Sweep end: `λ0` at the last point.
    pub sweep_to: f64,
    /// Artificial per-point delay (test seam; capped small).
    pub throttle_ms: u64,
    /// Points that fail on their first attempt only.
    pub inject_transient: Vec<u64>,
    /// Points that fail on every attempt.
    pub inject_persistent: Vec<u64>,
}

fn index_list(v: &Value, key: &str, points: u64) -> Result<Vec<u64>> {
    let Some(item) = v.get(key) else {
        return Ok(Vec::new());
    };
    let Some(items) = item.as_arr() else {
        return Err(field_err(key, "must be an array of point indices"));
    };
    let mut out = Vec::with_capacity(items.len());
    for x in items {
        let n = x
            .as_f64()
            .filter(|n| *n >= 0.0 && n.fract() == 0.0)
            .ok_or_else(|| field_err(key, "must be an array of non-negative integers"))?;
        if n >= points as f64 {
            return Err(field_err(
                key,
                format!("index {n} is out of range for a {points}-point campaign"),
            ));
        }
        out.push(n as u64);
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

impl JobSubmitRequest {
    /// Largest campaign a single submission may enqueue.
    pub const MAX_POINTS: u64 = 100_000;

    /// Parses and validates a job submission body.
    pub fn from_value(v: &Value) -> Result<Self> {
        check_keys(
            v,
            "request",
            &["kind", "points", "base", "sweep", "throttle_ms", "inject"],
        )?;
        let kind = match v.get("kind") {
            None => JobKind::ThresholdSweep,
            Some(item) => item.as_str().and_then(JobKind::parse).ok_or_else(|| {
                field_err(
                    "kind",
                    "must be one of threshold_sweep, optimize_sweep, ensemble",
                )
            })?,
        };
        let points = get_u64(v, "points", 100)?;
        if !(1..=Self::MAX_POINTS).contains(&points) {
            return Err(field_err(
                "points",
                format!("must lie in [1, {}]", Self::MAX_POINTS),
            ));
        }
        let (sweep_from, sweep_to) = match v.get("sweep") {
            None => (0.01, 0.05),
            Some(sweep) => {
                check_keys(sweep, "sweep", &["from", "to"])?;
                (get_f64(sweep, "from", 0.01)?, get_f64(sweep, "to", 0.05)?)
            }
        };
        for (key, x) in [("sweep.from", sweep_from), ("sweep.to", sweep_to)] {
            if !(x.is_finite() && x > 0.0 && x <= 10.0) {
                return Err(field_err(key, format!("must lie in (0, 10], got {x}")));
            }
        }
        let throttle_ms = get_u64(v, "throttle_ms", 0)?;
        if throttle_ms > 100 {
            return Err(field_err("throttle_ms", "must lie in [0, 100]"));
        }
        let (inject_transient, inject_persistent) = match v.get("inject") {
            None => (Vec::new(), Vec::new()),
            Some(inject) => {
                check_keys(inject, "inject", &["transient", "persistent"])?;
                (
                    index_list(inject, "transient", points)?,
                    index_list(inject, "persistent", points)?,
                )
            }
        };
        let base_raw = v.get("base").cloned().unwrap_or(Value::Obj(Vec::new()));
        let base = match kind {
            JobKind::ThresholdSweep => {
                ThresholdRequest::from_value(&base_raw).map(|r| r.canonical())
            }
            JobKind::OptimizeSweep => OptimizeRequest::from_value(&base_raw).map(|r| r.canonical()),
            JobKind::Ensemble => EnsembleRequest::from_value(&base_raw).map(|r| r.canonical()),
        }
        .map_err(|e| ApiError(format!("base: {e}")))?;
        Ok(JobSubmitRequest {
            kind,
            points,
            base,
            sweep_from,
            sweep_to,
            throttle_ms,
            inject_transient,
            inject_persistent,
        })
    }

    /// The canonical (defaults-materialized, fixed-order) wire value.
    pub fn canonical(&self) -> Value {
        let num_list = |xs: &[u64]| Value::Arr(xs.iter().map(|&x| Value::Num(x as f64)).collect());
        Value::obj([
            ("kind", Value::Str(self.kind.as_str().to_string())),
            ("points", Value::Num(self.points as f64)),
            ("base", self.base.clone()),
            (
                "sweep",
                Value::obj([
                    ("from", Value::Num(self.sweep_from)),
                    ("to", Value::Num(self.sweep_to)),
                ]),
            ),
            ("throttle_ms", Value::Num(self.throttle_ms as f64)),
            (
                "inject",
                Value::obj([
                    ("transient", num_list(&self.inject_transient)),
                    ("persistent", num_list(&self.inject_persistent)),
                ]),
            ),
        ])
    }

    /// The durable job spec: kind label, point count, and the canonical
    /// submission bytes as the opaque payload.
    pub fn to_spec(&self) -> JobSpec {
        JobSpec {
            kind: self.kind.as_str().to_string(),
            n_points: self.points,
            payload: wire::serialize(&self.canonical()).into_bytes(),
        }
    }

    /// Decodes a durable spec back into the validated submission. The
    /// payload is the canonical form, which re-parses by construction;
    /// errors mean a foreign or corrupt payload.
    pub fn decode_spec(spec: &JobSpec) -> Result<Self> {
        let text = std::str::from_utf8(&spec.payload)
            .map_err(|_| ApiError("spec payload is not UTF-8".into()))?;
        let value = wire::parse(text).map_err(|e| ApiError(format!("spec payload: {e}")))?;
        JobSubmitRequest::from_value(&value)
    }

    /// The swept `λ0` at grid point `index` (linear interpolation from
    /// `sweep_from` to `sweep_to`; a 1-point campaign sits at `from`).
    pub fn lambda0_at(&self, index: u64) -> f64 {
        let denom = self.points.saturating_sub(1).max(1) as f64;
        self.sweep_from + (self.sweep_to - self.sweep_from) * index as f64 / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::parse;

    #[test]
    fn defaults_fill_missing_fields() {
        let req = JobSubmitRequest::from_value(&parse("{}").unwrap()).unwrap();
        assert_eq!(req.kind, JobKind::ThresholdSweep);
        assert_eq!(req.points, 100);
        assert_eq!(req.throttle_ms, 0);
        assert!(req.inject_transient.is_empty());
        // Base was validated and canonicalized with its own defaults.
        assert!(req.base.get("network").is_some());
        assert!(req.base.get("model").is_some());
    }

    #[test]
    fn bad_submissions_are_rejected() {
        for bad in [
            r#"{"kind": "nope"}"#,
            r#"{"points": 0}"#,
            r#"{"points": 1000001}"#,
            r#"{"sweep": {"from": 0}}"#,
            r#"{"sweep": {"upto": 1}}"#,
            r#"{"throttle_ms": 5000}"#,
            r#"{"points": 4, "inject": {"persistent": [9]}}"#,
            r#"{"inject": {"persistent": [-1]}}"#,
            r#"{"kind": "ensemble", "base": {"runs": 500}}"#,
            r#"{"base": {"tff": 1}}"#,
        ] {
            assert!(
                JobSubmitRequest::from_value(&parse(bad).unwrap()).is_err(),
                "accepted {bad}"
            );
        }
    }

    #[test]
    fn spec_round_trips_byte_for_byte() {
        let req = JobSubmitRequest::from_value(
            &parse(
                r#"{"kind": "optimize_sweep", "points": 7,
                    "sweep": {"from": 0.02, "to": 0.03},
                    "inject": {"transient": [3, 1, 3]},
                    "base": {"tf": 20, "network": {"nodes": 300, "k_max": 25}}}"#,
            )
            .unwrap(),
        )
        .unwrap();
        let spec = req.to_spec();
        assert_eq!(spec.kind, "optimize_sweep");
        assert_eq!(spec.n_points, 7);
        let back = JobSubmitRequest::decode_spec(&spec).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.to_spec().payload, spec.payload);
        // Injection lists are normalized (sorted, deduped).
        assert_eq!(back.inject_transient, vec![1, 3]);
    }

    #[test]
    fn sweep_interpolates_inclusively() {
        let req = JobSubmitRequest::from_value(
            &parse(r#"{"points": 5, "sweep": {"from": 0.01, "to": 0.05}}"#).unwrap(),
        )
        .unwrap();
        assert!((req.lambda0_at(0) - 0.01).abs() < 1e-12);
        assert!((req.lambda0_at(2) - 0.03).abs() < 1e-12);
        assert!((req.lambda0_at(4) - 0.05).abs() < 1e-12);
        let single = JobSubmitRequest::from_value(&parse(r#"{"points": 1}"#).unwrap()).unwrap();
        assert!((single.lambda0_at(0) - 0.01).abs() < 1e-12);
    }
}
