//! The epoll connection layer: one event-loop thread owns every
//! socket, workers only run compute.
//!
//! The threads backend pins a worker thread per connection for its
//! whole lifetime, so a thousand idle keep-alive pollers would need a
//! thousand threads. Here they cost an epoll registration each: the
//! loop parses requests incrementally ([`crate::http::RequestParser`]),
//! answers cheap endpoints inline, and hands expensive compute to a
//! bounded worker pool — the same pool size, admission bound, and
//! routing dialect as the threads backend, so every status contract
//! (`503` shed, `413` body cap, `408` slowloris sweep, `504` deadline)
//! and the byte-exact cache identity hold unchanged.
//!
//! Everything is raw syscalls through the glibc symbols std already
//! links (`epoll_create1`, `epoll_ctl`, `epoll_wait`, `eventfd`) — the
//! vendored-only build has no libc crate, mirroring how
//! [`crate::signal`] reaches `signal(2)`.
//!
//! # Shape
//!
//! * Token `0` is the listener, token `1` the wake eventfd, tokens
//!   `2..` are connections (monotonic, never reused).
//! * All registrations are level-triggered; interest is recomputed
//!   after every state change (`EPOLLIN` only while reading, `EPOLLOUT`
//!   only while output is buffered) so the loop never spins on a
//!   writable socket with nothing to say.
//! * Workers receive `(token, request)` over a bounded channel, run
//!   [`crate::server::run_compute`], and post the outcome back over an
//!   unbounded channel + an eventfd write that wakes `epoll_wait`.
//!   Completions for tokens that died in the meantime are dropped — a
//!   killed client reclaims its slot immediately, the compute result is
//!   simply discarded (and still cached).
//! * A 20 ms tick sweeps slowloris connections (`408` once a partial
//!   request outlives the I/O timeout; idle keep-alive connections are
//!   exempt — parking is their whole point) and pumps job streams.

use crate::http::{self, Parsed, ReadError, RequestParser};
use crate::metrics::endpoint_index;
use crate::server::{route_request, run_compute, JobStream, Outcome, Routed, Shared};
use crate::ServeError;
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Raw epoll/eventfd glue. Constants and struct layout follow the
/// kernel UAPI; x86_64 is the one ABI where `epoll_event` is packed.
mod sys {
    use std::os::fd::{FromRawFd, OwnedFd, RawFd};

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
    }

    pub fn epoll_create() -> std::io::Result<OwnedFd> {
        // SAFETY: epoll_create1 returns a fresh fd (or -1); ownership is
        // transferred to the OwnedFd exactly once.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(unsafe { OwnedFd::from_raw_fd(fd) })
    }

    pub fn new_eventfd() -> std::io::Result<std::fs::File> {
        // SAFETY: as above; a File over an eventfd supports plain
        // 8-byte reads/writes of the counter.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(unsafe { std::fs::File::from_raw_fd(fd) })
    }

    pub fn ctl(epfd: RawFd, op: i32, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn wait(epfd: RawFd, events: &mut [EpollEvent], timeout_ms: i32) -> std::io::Result<usize> {
        // SAFETY: the buffer is valid for `events.len()` entries.
        let rc = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
        if rc < 0 {
            let e = std::io::Error::last_os_error();
            if e.kind() == std::io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(rc as usize)
    }
}

/// Loop tick: bounds slowloris-sweep latency, stream-pump latency, and
/// shutdown-observation latency.
const TICK: Duration = Duration::from_millis(20);

/// Tokens below this are the listener (0) and the wake eventfd (1).
const FIRST_CONN_TOKEN: u64 = 2;

/// One compute request in flight to the worker pool.
struct ComputeTask {
    token: u64,
    request: http::Request,
    accepted: Instant,
    trace_id: u64,
}

/// Per-connection state machine.
enum ConnState {
    /// Accumulating request bytes.
    Reading,
    /// Dispatched to the worker pool; reads are parked (backpressure —
    /// pipelined bytes wait in the kernel buffer).
    Computing,
    /// Chunk-streaming a job's results; pumped on ticks.
    Streaming(JobStream),
    /// Only draining buffered output, then closing.
    Closing,
}

/// Metadata of the request currently being computed or streamed, for
/// the per-endpoint metrics record once it finishes.
struct ReqMeta {
    endpoint: Option<usize>,
    started: Instant,
    keep_alive: bool,
    trace_id: u64,
}

struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    state: ConnState,
    out: Vec<u8>,
    out_pos: usize,
    /// Registered epoll interest (recomputed after every change).
    interest: u32,
    /// Last byte activity, for the slowloris sweep.
    last_activity: Instant,
    /// When the first byte of the in-progress request arrived — the
    /// keep-alive analog of the threads backend's accept timestamp, so
    /// deadlines cover queueing identically.
    began: Option<Instant>,
    close_after_write: bool,
    req: Option<ReqMeta>,
}

impl Conn {
    fn new(stream: TcpStream, max_body: usize, now: Instant) -> Conn {
        Conn {
            stream,
            parser: RequestParser::new(max_body),
            state: ConnState::Reading,
            out: Vec::new(),
            out_pos: 0,
            interest: sys::EPOLLIN | sys::EPOLLRDHUP,
            last_activity: now,
            began: None,
            close_after_write: false,
            req: None,
        }
    }

    fn has_output(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// The interest mask this connection's state wants.
    fn wanted_interest(&self) -> u32 {
        let mut events = sys::EPOLLRDHUP;
        if matches!(self.state, ConnState::Reading) {
            events |= sys::EPOLLIN;
        }
        if self.has_output() {
            events |= sys::EPOLLOUT;
        }
        events
    }
}

/// What handling an event decided about the connection's fate.
enum Fate {
    Keep,
    Close,
}

/// Result of a non-blocking flush attempt.
enum FlushResult {
    /// Output fully drained.
    Drained,
    /// The socket would block; more later.
    Pending,
    /// The peer is gone.
    Dead,
}

/// Starts the epoll backend: one event-loop thread plus the compute
/// worker pool. Returns every spawned thread for joining.
pub(crate) fn spawn(
    listener: TcpListener,
    shared: &Arc<Shared>,
    shutdown: &Arc<AtomicBool>,
) -> Result<Vec<JoinHandle<()>>, ServeError> {
    let epfd = sys::epoll_create().map_err(ServeError::Io)?;
    let wake = Arc::new(sys::new_eventfd().map_err(ServeError::Io)?);
    let (task_tx, task_rx) =
        std::sync::mpsc::sync_channel::<ComputeTask>(shared.config.queue_depth);
    let task_rx = Arc::new(Mutex::new(task_rx));
    let (done_tx, done_rx) = std::sync::mpsc::channel::<(u64, Outcome)>();

    let mut threads = Vec::with_capacity(shared.workers + 1);
    for worker_id in 0..shared.workers {
        let task_rx = Arc::clone(&task_rx);
        let shared = Arc::clone(shared);
        let done_tx = done_tx.clone();
        let wake = Arc::clone(&wake);
        threads.push(
            std::thread::Builder::new()
                .name(format!("rumor-serve-compute-{worker_id}"))
                .spawn(move || compute_worker(&task_rx, &shared, &done_tx, &wake))
                .map_err(ServeError::Io)?,
        );
    }
    drop(done_tx);

    let event_loop = EventLoop {
        epfd,
        wake,
        listener,
        shared: Arc::clone(shared),
        shutdown: Arc::clone(shutdown),
        task_tx,
        done_rx,
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
        draining: false,
    };
    threads.push(
        std::thread::Builder::new()
            .name("rumor-serve-epoll".to_string())
            .spawn(move || event_loop.run())
            .map_err(ServeError::Io)?,
    );
    Ok(threads)
}

/// A compute worker: dequeue, run, post the outcome, wake the loop.
fn compute_worker(
    rx: &Mutex<Receiver<ComputeTask>>,
    shared: &Shared,
    done: &Sender<(u64, Outcome)>,
    wake: &File,
) {
    loop {
        // Hold the receiver lock only for the dequeue itself.
        let task = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(task) = task else {
            return; // Queue closed and drained: orderly exit.
        };
        shared.metrics.ready_queue_depth.dec();
        let outcome = run_compute(&task.request, shared, task.accepted, task.trace_id);
        if done.send((task.token, outcome)).is_err() {
            return;
        }
        // Best-effort wake; EAGAIN on a saturated counter still wakes.
        let _ = (&*wake).write(&1u64.to_ne_bytes());
    }
}

struct EventLoop {
    epfd: std::os::fd::OwnedFd,
    wake: Arc<File>,
    listener: TcpListener,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    task_tx: SyncSender<ComputeTask>,
    done_rx: Receiver<(u64, Outcome)>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    draining: bool,
}

impl EventLoop {
    fn run(mut self) {
        let epfd = self.epfd.as_raw_fd();
        if sys::ctl(
            epfd,
            sys::EPOLL_CTL_ADD,
            self.listener.as_raw_fd(),
            sys::EPOLLIN,
            0,
        )
        .is_err()
        {
            return;
        }
        if sys::ctl(
            epfd,
            sys::EPOLL_CTL_ADD,
            self.wake.as_raw_fd(),
            sys::EPOLLIN,
            1,
        )
        .is_err()
        {
            return;
        }

        let mut events = [sys::EpollEvent { events: 0, data: 0 }; 256];
        loop {
            if !self.draining && self.shutdown.load(Ordering::SeqCst) {
                self.begin_drain();
            }
            if self.draining && self.conns.is_empty() {
                // Dropping `task_tx` (when this returns) closes the
                // compute queue: workers drain and exit.
                return;
            }
            let n = match sys::wait(epfd, &mut events, TICK.as_millis() as i32) {
                Ok(n) => n,
                Err(_) => return,
            };
            self.shared.metrics.epoll_wakeups.inc();
            for ev in &events[..n] {
                let token = ev.data;
                let bits = ev.events;
                match token {
                    0 => {
                        if !self.draining {
                            self.accept_ready();
                        }
                    }
                    1 => self.drain_wake(),
                    _ => self.conn_event(token, bits),
                }
            }
            self.drain_completions();
            self.sweep();
        }
    }

    /// Accepts until the listener would block, shedding beyond the
    /// connection cap.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.conns.len() >= self.shared.config.max_connections {
                        self.shed_connection(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    let conn = Conn::new(stream, self.shared.config.max_body_bytes, Instant::now());
                    if sys::ctl(
                        self.epfd.as_raw_fd(),
                        sys::EPOLL_CTL_ADD,
                        conn.stream.as_raw_fd(),
                        conn.interest,
                        token,
                    )
                    .is_err()
                    {
                        continue;
                    }
                    self.next_token += 1;
                    self.conns.insert(token, conn);
                    self.shared.metrics.admitted.inc();
                    self.shared.metrics.epoll_connections.inc();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break, // Transient accept failure (e.g. EMFILE).
            }
        }
    }

    /// Best-effort `503` past the connection cap — the same bytes the
    /// threads acceptor sheds with at a full queue.
    fn shed_connection(&self, mut stream: TcpStream) {
        self.shared.metrics.rejected_max_connections.inc();
        let trace_id = rumor_obs::next_trace_id();
        let outcome = Outcome::overloaded();
        let bytes = frame_outcome(&outcome, trace_id, false);
        let _ = stream.set_nonblocking(true);
        let _ = stream.write(&bytes);
        rumor_obs::event("serve.shed", &[("trace", trace_id.into())]);
    }

    /// Drains the eventfd counter so level-triggering quiesces.
    fn drain_wake(&mut self) {
        let mut buf = [0u8; 8];
        while (&*self.wake).read(&mut buf).is_ok() {}
    }

    fn conn_event(&mut self, token: u64, bits: u32) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        let hangup = bits & (sys::EPOLLHUP | sys::EPOLLERR) != 0;
        let rdhup = bits & sys::EPOLLRDHUP != 0;

        let mut fate = Fate::Keep;
        if bits & sys::EPOLLIN != 0 && matches!(conn.state, ConnState::Reading) {
            fate = self.on_readable(token, &mut conn);
        }
        if matches!(fate, Fate::Keep) && bits & sys::EPOLLOUT != 0 {
            fate = self.after_flush(&mut conn);
        }
        if hangup {
            fate = Fate::Close;
        } else if rdhup && matches!(fate, Fate::Keep) {
            // The peer half-closed. Anything it still wanted to say was
            // consumed by the read above; if we are not mid-response,
            // there is nothing left to deliver.
            if !conn.has_output() && !matches!(conn.state, ConnState::Streaming(_)) {
                fate = Fate::Close;
            }
        }
        self.settle(token, conn, fate);
    }

    /// Re-inserts or closes the connection and syncs epoll interest.
    fn settle(&mut self, token: u64, mut conn: Conn, fate: Fate) {
        match fate {
            Fate::Close => self.close_conn(conn),
            Fate::Keep => {
                let wanted = conn.wanted_interest();
                if wanted != conn.interest {
                    conn.interest = wanted;
                    if sys::ctl(
                        self.epfd.as_raw_fd(),
                        sys::EPOLL_CTL_MOD,
                        conn.stream.as_raw_fd(),
                        wanted,
                        token,
                    )
                    .is_err()
                    {
                        self.close_conn(conn);
                        return;
                    }
                }
                self.conns.insert(token, conn);
            }
        }
    }

    fn close_conn(&mut self, conn: Conn) {
        let _ = sys::ctl(
            self.epfd.as_raw_fd(),
            sys::EPOLL_CTL_DEL,
            conn.stream.as_raw_fd(),
            0,
            0,
        );
        self.shared.metrics.epoll_connections.dec();
        // `conn.stream` drops here, closing the fd and reclaiming the
        // slot; a completion still in flight for this token is dropped
        // in `drain_completions`.
    }

    /// Reads until the socket would block, feeding the incremental
    /// parser and handling every completed request.
    fn on_readable(&mut self, token: u64, conn: &mut Conn) -> Fate {
        let mut buf = [0u8; 16 * 1024];
        loop {
            if !matches!(conn.state, ConnState::Reading) {
                return Fate::Keep; // Dispatched; further bytes wait.
            }
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    // Peer finished sending. A half-open client with a
                    // response still buffered gets it; otherwise close.
                    return if conn.has_output() {
                        Fate::Keep
                    } else {
                        Fate::Close
                    };
                }
                Ok(n) => {
                    let now = Instant::now();
                    conn.last_activity = now;
                    if conn.began.is_none() {
                        conn.began = Some(now);
                    }
                    let parsed = conn.parser.feed(&buf[..n]);
                    if let Fate::Close = self.on_parsed(token, conn, parsed) {
                        return Fate::Close;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Fate::Keep,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Fate::Close,
            }
        }
    }

    /// Handles one parse step; loops `advance()` for pipelined requests
    /// already buffered.
    fn on_parsed(&mut self, token: u64, conn: &mut Conn, parsed: Parsed) -> Fate {
        let mut parsed = parsed;
        loop {
            match parsed {
                Parsed::NeedMore => {
                    if conn.parser.take_wants_continue() {
                        conn.out.extend_from_slice(b"HTTP/1.1 100 Continue\r\n\r\n");
                        if let FlushResult::Dead = flush_conn(conn) {
                            return Fate::Close;
                        }
                    }
                    return Fate::Keep;
                }
                Parsed::Failed(e) => {
                    self.reject_request(conn, &e);
                    conn.state = ConnState::Closing;
                    conn.close_after_write = true;
                    return match flush_conn(conn) {
                        FlushResult::Dead => Fate::Close,
                        FlushResult::Drained => Fate::Close,
                        FlushResult::Pending => Fate::Keep,
                    };
                }
                Parsed::Ready(request) => {
                    if let Fate::Close = self.handle_request(token, conn, request) {
                        return Fate::Close;
                    }
                    if !matches!(conn.state, ConnState::Reading) {
                        return Fate::Keep;
                    }
                    parsed = conn.parser.advance();
                }
            }
        }
    }

    /// The `400/413/501` family for a stream that can never become a
    /// valid request; mirrors the threads backend's error metrics.
    fn reject_request(&self, conn: &mut Conn, e: &ReadError) {
        let metrics = &self.shared.metrics;
        let (status, message) = match e {
            ReadError::BodyTooLarge { declared, limit } => {
                metrics.rejected_body_too_large.inc();
                (
                    413,
                    format!("body of {declared} bytes exceeds the {limit}-byte cap"),
                )
            }
            ReadError::Unsupported(m) => {
                metrics.rejected_malformed.inc();
                (501, m.clone())
            }
            ReadError::Malformed(m) => {
                metrics.rejected_malformed.inc();
                (400, m.clone())
            }
            // The incremental parser never sees socket errors.
            ReadError::TimedOut | ReadError::Io(_) => (400, e.to_string()),
        };
        let trace_id = rumor_obs::next_trace_id();
        let outcome = Outcome::error(status, &message);
        conn.out
            .extend_from_slice(&frame_outcome(&outcome, trace_id, false));
    }

    /// Routes one complete request.
    fn handle_request(&mut self, token: u64, conn: &mut Conn, request: http::Request) -> Fate {
        let trace_id = rumor_obs::next_trace_id();
        let keep_alive = !self.draining
            && request
                .header("connection")
                .is_none_or(|v| !v.eq_ignore_ascii_case("close"));
        let endpoint = endpoint_index(&request.method, &request.target);
        let started = Instant::now();
        let accepted = conn.began.take().unwrap_or(started);

        match route_request(&request, &self.shared) {
            Routed::Done(outcome) => {
                self.enqueue_response(conn, endpoint, started, trace_id, keep_alive, &outcome);
                match flush_conn(conn) {
                    FlushResult::Dead => Fate::Close,
                    FlushResult::Drained if conn.close_after_write => Fate::Close,
                    _ => Fate::Keep,
                }
            }
            Routed::Compute => {
                let task = ComputeTask {
                    token,
                    request,
                    accepted,
                    trace_id,
                };
                match self.task_tx.try_send(task) {
                    Ok(()) => {
                        conn.state = ConnState::Computing;
                        conn.req = Some(ReqMeta {
                            endpoint,
                            started,
                            keep_alive,
                            trace_id,
                        });
                        self.shared.metrics.in_flight.inc();
                        self.shared.metrics.ready_queue_depth.inc();
                        Fate::Keep
                    }
                    Err(TrySendError::Full(_)) => {
                        // Worker pool saturated: shed exactly like the
                        // threads acceptor does at a full queue.
                        self.shared.metrics.rejected_queue_full.inc();
                        rumor_obs::event("serve.shed", &[("trace", trace_id.into())]);
                        let outcome = Outcome::overloaded();
                        self.enqueue_response(
                            conn, endpoint, started, trace_id, keep_alive, &outcome,
                        );
                        match flush_conn(conn) {
                            FlushResult::Dead => Fate::Close,
                            FlushResult::Drained if conn.close_after_write => Fate::Close,
                            _ => Fate::Keep,
                        }
                    }
                    Err(TrySendError::Disconnected(_)) => Fate::Close,
                }
            }
            Routed::Stream { job_id } => {
                conn.out.extend_from_slice(&http::stream_head_bytes(
                    200,
                    http::reason(200),
                    "application/json",
                ));
                conn.state = ConnState::Streaming(JobStream::new(&job_id));
                conn.close_after_write = true; // The stream head says `Connection: close`.
                conn.req = Some(ReqMeta {
                    endpoint,
                    started,
                    keep_alive: false,
                    trace_id,
                });
                self.pump_stream(conn)
            }
        }
    }

    /// Frames a finished outcome onto the connection and records the
    /// endpoint series.
    fn enqueue_response(
        &self,
        conn: &mut Conn,
        endpoint: Option<usize>,
        started: Instant,
        trace_id: u64,
        keep_alive: bool,
        outcome: &Outcome,
    ) {
        conn.out
            .extend_from_slice(&frame_outcome(outcome, trace_id, keep_alive));
        if !keep_alive {
            conn.close_after_write = true;
            conn.state = ConnState::Closing;
        }
        if let Some(idx) = endpoint {
            self.shared
                .metrics
                .record(idx, outcome.status, started.elapsed().as_millis() as u64);
        }
    }

    /// Flush plus the post-drain transitions (close, or resume parsing
    /// pipelined bytes).
    fn after_flush(&mut self, conn: &mut Conn) -> Fate {
        match flush_conn(conn) {
            FlushResult::Dead => Fate::Close,
            FlushResult::Pending => Fate::Keep,
            FlushResult::Drained => {
                if conn.close_after_write && !matches!(conn.state, ConnState::Streaming(_)) {
                    return Fate::Close;
                }
                Fate::Keep
            }
        }
    }

    /// Posts newly-durable chunks of a job stream; closes once the
    /// terminal chunk is fully written.
    fn pump_stream(&mut self, conn: &mut Conn) -> Fate {
        if conn.has_output() {
            // Still draining the previous batch; EPOLLOUT drives it.
            return match flush_conn(conn) {
                FlushResult::Dead => Fate::Close,
                _ => Fate::Keep,
            };
        }
        let ConnState::Streaming(cursor) = &mut conn.state else {
            return Fate::Keep;
        };
        let Some(manager) = &self.shared.jobs else {
            return Fate::Close;
        };
        let done = match cursor.poll(manager) {
            Ok(poll) => {
                if !poll.bytes.is_empty() {
                    self.shared.metrics.stream_chunks.add(poll.chunks);
                    conn.out.extend_from_slice(&poll.bytes);
                }
                poll.done
            }
            Err(_) => {
                conn.out.extend_from_slice(http::terminal_chunk_bytes());
                true
            }
        };
        if done {
            if let Some(meta) = conn.req.take() {
                if let Some(idx) = meta.endpoint {
                    self.shared
                        .metrics
                        .record(idx, 200, meta.started.elapsed().as_millis() as u64);
                }
            }
            conn.state = ConnState::Closing;
        }
        match flush_conn(conn) {
            FlushResult::Dead => Fate::Close,
            FlushResult::Drained if done => Fate::Close,
            _ => Fate::Keep,
        }
    }

    /// Applies compute outcomes posted by the worker pool. Tokens whose
    /// connection died are dropped — the result is already cached, only
    /// the delivery is moot.
    fn drain_completions(&mut self) {
        while let Ok((token, outcome)) = self.done_rx.try_recv() {
            self.shared.metrics.in_flight.dec();
            let Some(mut conn) = self.conns.remove(&token) else {
                continue;
            };
            let Some(meta) = conn.req.take() else {
                self.close_conn(conn);
                continue;
            };
            conn.state = ConnState::Reading;
            self.enqueue_response(
                &mut conn,
                meta.endpoint,
                meta.started,
                meta.trace_id,
                meta.keep_alive && !self.draining,
                &outcome,
            );
            let fate = match flush_conn(&mut conn) {
                FlushResult::Dead => Fate::Close,
                FlushResult::Drained if conn.close_after_write => Fate::Close,
                FlushResult::Drained => {
                    // Pipelined bytes may already hold the next request.
                    let parsed = conn.parser.advance();
                    self.on_parsed(token, &mut conn, parsed)
                }
                FlushResult::Pending => Fate::Keep,
            };
            self.settle(token, conn, fate);
        }
    }

    /// The periodic tick: `408` stalled partial requests, pump streams.
    fn sweep(&mut self) {
        let io_timeout = Duration::from_millis(self.shared.config.io_timeout_ms);
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            let Some(mut conn) = self.conns.remove(&token) else {
                continue;
            };
            let fate = match &conn.state {
                ConnState::Reading
                    if !conn.parser.is_idle() && conn.last_activity.elapsed() >= io_timeout =>
                {
                    // Slowloris: a partial request outlived the I/O
                    // timeout. Idle keep-alive connections (no bytes of
                    // a next request) are exempt.
                    self.shared.metrics.read_timeouts.inc();
                    let trace_id = rumor_obs::next_trace_id();
                    let outcome = Outcome::error(408, "timed out reading the request");
                    conn.out
                        .extend_from_slice(&frame_outcome(&outcome, trace_id, false));
                    conn.state = ConnState::Closing;
                    conn.close_after_write = true;
                    match flush_conn(&mut conn) {
                        FlushResult::Pending => Fate::Keep,
                        _ => Fate::Close,
                    }
                }
                ConnState::Streaming(_) => self.pump_stream(&mut conn),
                ConnState::Closing if !conn.has_output() => Fate::Close,
                _ => Fate::Keep,
            };
            self.settle(token, conn, fate);
        }
    }

    /// Shutdown observed: stop accepting, terminate streams, drop idle
    /// and mid-read connections, and let in-flight compute finish.
    fn begin_drain(&mut self) {
        self.draining = true;
        let _ = sys::ctl(
            self.epfd.as_raw_fd(),
            sys::EPOLL_CTL_DEL,
            self.listener.as_raw_fd(),
            0,
            0,
        );
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            let Some(mut conn) = self.conns.remove(&token) else {
                continue;
            };
            let fate = match &conn.state {
                // In-flight compute drains; its response closes the
                // connection (`draining` forces `Connection: close`).
                ConnState::Computing => Fate::Keep,
                ConnState::Streaming(_) => {
                    // End the stream early: the missing summary chunk
                    // tells the consumer the stream died.
                    conn.out.extend_from_slice(http::terminal_chunk_bytes());
                    conn.state = ConnState::Closing;
                    conn.close_after_write = true;
                    match flush_conn(&mut conn) {
                        FlushResult::Pending => Fate::Keep,
                        _ => Fate::Close,
                    }
                }
                _ if conn.has_output() => {
                    conn.close_after_write = true;
                    conn.state = ConnState::Closing;
                    Fate::Keep
                }
                _ => Fate::Close,
            };
            self.settle(token, conn, fate);
        }
    }
}

/// Renders an [`Outcome`] with the trace header appended last — the
/// identical header order to the threads backend's `respond`.
fn frame_outcome(outcome: &Outcome, trace_id: u64, keep_alive: bool) -> Vec<u8> {
    let trace = trace_id.to_string();
    let mut headers: Vec<(&str, &str)> = Vec::with_capacity(outcome.extra.len() + 1);
    for (name, value) in &outcome.extra {
        headers.push((name, value.as_str()));
    }
    headers.push(("X-Trace-Id", &trace));
    http::response_bytes(
        outcome.status,
        http::reason(outcome.status),
        outcome.content_type,
        &headers,
        &outcome.body,
        keep_alive,
    )
}

/// Writes as much buffered output as the socket accepts right now.
fn flush_conn(conn: &mut Conn) -> FlushResult {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return FlushResult::Dead,
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return FlushResult::Pending,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return FlushResult::Dead,
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
    FlushResult::Drained
}
