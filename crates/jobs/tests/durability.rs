//! Durability integration tests: full lifecycle, retry/quarantine,
//! simulated crash recovery, cancel/resume.
//!
//! The "crash" here is simulated by writing the exact on-disk state a
//! `kill -9` leaves behind (spec + journal ending in `running` + a
//! partial results log) and opening a fresh manager over it; the
//! process-level SIGKILL test lives in the CLI crate's e2e suite.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rumor_jobs::journal::JournalRecord;
use rumor_jobs::store;
use rumor_jobs::{
    JobManager, JobManagerConfig, JobSpec, JobState, JobsMetrics, PointOutcome, PointRunner,
    RetryPolicy,
};

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

fn temp_root(tag: &str) -> std::path::PathBuf {
    let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("rumor-jobs-it-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp root");
    dir
}

fn spec(n_points: u64) -> JobSpec {
    JobSpec {
        kind: "square".into(),
        n_points,
        payload: b"{}".to_vec(),
    }
}

/// Deterministic runner: payload of point i is the text `i*i`.
fn square_runner() -> Arc<dyn PointRunner> {
    Arc::new(
        |_spec: &JobSpec, index: u64, _attempt: u32, _warm: Option<&[u8]>| PointOutcome::Ok {
            payload: (index * index).to_string().into_bytes(),
            warm: None,
        },
    )
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_backoff_ms: 1,
        max_backoff_ms: 4,
        attempt_deadline_ms: 10_000,
    }
}

fn config(root: &std::path::Path) -> JobManagerConfig {
    JobManagerConfig {
        retry: fast_retry(),
        checkpoint_interval: 4,
        ..JobManagerConfig::new(root)
    }
}

fn wait_finished(mgr: &JobManager, id: &str, timeout: Duration) -> JobState {
    let start = Instant::now();
    loop {
        let st = mgr.status(id).expect("job exists");
        if st.state.is_finished() {
            return st.state;
        }
        assert!(
            start.elapsed() < timeout,
            "job {id} still {} after {timeout:?}",
            st.state
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn happy_path_runs_to_done_with_ordered_results() {
    let root = temp_root("happy");
    let mgr = JobManager::open(config(&root), square_runner(), JobsMetrics::standalone()).unwrap();
    let id = mgr.submit(spec(10)).unwrap();
    assert_eq!(
        wait_finished(&mgr, &id, Duration::from_secs(10)),
        JobState::Done
    );
    let status = mgr.status(&id).unwrap();
    assert_eq!(status.completed, 10);
    assert!(status.quarantined.is_empty());
    assert_eq!(status.missing(), 0);
    let results = mgr.results(&id).unwrap();
    assert_eq!(results.len(), 10);
    for (i, (idx, payload)) in results.iter().enumerate() {
        assert_eq!(*idx, i as u64);
        assert_eq!(payload, (idx * idx).to_string().as_bytes());
    }
    assert_eq!(mgr.metrics().done.get(), 1);
    assert_eq!(mgr.metrics().points_completed.get(), 10);
    mgr.shutdown();
}

#[test]
fn transient_faults_are_retried_to_success() {
    let root = temp_root("transient");
    // Point 5 fails on attempt 0 only.
    let runner = Arc::new(
        |_spec: &JobSpec, index: u64, attempt: u32, _warm: Option<&[u8]>| {
            if index == 5 && attempt == 0 {
                PointOutcome::Transient("injected transient fault".into())
            } else {
                PointOutcome::Ok {
                    payload: index.to_string().into_bytes(),
                    warm: None,
                }
            }
        },
    );
    let mgr = JobManager::open(config(&root), runner, JobsMetrics::standalone()).unwrap();
    let id = mgr.submit(spec(8)).unwrap();
    assert_eq!(
        wait_finished(&mgr, &id, Duration::from_secs(10)),
        JobState::Done
    );
    let status = mgr.status(&id).unwrap();
    assert_eq!(status.completed, 8);
    assert_eq!(status.retries, 1);
    assert_eq!(mgr.metrics().points_retried.get(), 1);
    assert_eq!(mgr.metrics().points_quarantined.get(), 0);
    mgr.shutdown();
}

#[test]
fn persistent_faults_quarantine_and_finish_partial_with_manifest() {
    let root = temp_root("poison");
    let runner = Arc::new(
        |_spec: &JobSpec, index: u64, _attempt: u32, _warm: Option<&[u8]>| {
            if index == 3 || index == 7 {
                PointOutcome::Transient("injected persistent fault".into())
            } else {
                PointOutcome::Ok {
                    payload: index.to_string().into_bytes(),
                    warm: None,
                }
            }
        },
    );
    let mgr = JobManager::open(config(&root), runner, JobsMetrics::standalone()).unwrap();
    let id = mgr.submit(spec(10)).unwrap();
    assert_eq!(
        wait_finished(&mgr, &id, Duration::from_secs(10)),
        JobState::Partial
    );
    let status = mgr.status(&id).unwrap();
    assert_eq!(status.completed, 8);
    assert_eq!(
        status.quarantined,
        vec![3, 7],
        "manifest lists poison points"
    );
    assert_eq!(status.missing(), 0);
    // 2 points x (3 attempts - 1 success) retries, then quarantine.
    assert_eq!(mgr.metrics().points_quarantined.get(), 2);
    assert_eq!(mgr.metrics().partial.get(), 1);
    let results = mgr.results(&id).unwrap();
    let indices: Vec<u64> = results.iter().map(|(i, _)| *i).collect();
    assert_eq!(indices, vec![0, 1, 2, 4, 5, 6, 8, 9]);
    mgr.shutdown();
}

#[test]
fn permanent_faults_skip_the_retry_budget() {
    let root = temp_root("permanent");
    let attempts = Arc::new(AtomicU64::new(0));
    let seen = Arc::clone(&attempts);
    let runner = Arc::new(
        move |_spec: &JobSpec, index: u64, _attempt: u32, _warm: Option<&[u8]>| {
            if index == 1 {
                seen.fetch_add(1, Ordering::Relaxed);
                PointOutcome::Permanent("bad grid point".into())
            } else {
                PointOutcome::Ok {
                    payload: vec![b'x'],
                    warm: None,
                }
            }
        },
    );
    let mgr = JobManager::open(config(&root), runner, JobsMetrics::standalone()).unwrap();
    let id = mgr.submit(spec(3)).unwrap();
    assert_eq!(
        wait_finished(&mgr, &id, Duration::from_secs(10)),
        JobState::Partial
    );
    assert_eq!(
        attempts.load(Ordering::Relaxed),
        1,
        "no retries for permanent"
    );
    assert_eq!(mgr.status(&id).unwrap().quarantined, vec![1]);
    mgr.shutdown();
}

#[test]
fn all_points_failing_means_failed() {
    let root = temp_root("failed");
    let runner = Arc::new(
        |_spec: &JobSpec, _index: u64, _attempt: u32, _warm: Option<&[u8]>| {
            PointOutcome::Permanent("nothing works".into())
        },
    );
    let mgr = JobManager::open(config(&root), runner, JobsMetrics::standalone()).unwrap();
    let id = mgr.submit(spec(3)).unwrap();
    assert_eq!(
        wait_finished(&mgr, &id, Duration::from_secs(10)),
        JobState::Failed
    );
    let status = mgr.status(&id).unwrap();
    assert_eq!(status.completed, 0);
    assert_eq!(status.quarantined.len(), 3);
    mgr.shutdown();
}

#[test]
fn crash_mid_run_recovers_and_preserves_prior_results_byte_for_byte() {
    let root = temp_root("crash");
    let job_dir = root.join("job-000001");
    let the_spec = spec(10);

    // Fabricate the aftermath of a kill -9: spec, journal ending in
    // `running`, results for points 0..5, and a checkpoint.
    store::create_job_dir(&job_dir, &the_spec).unwrap();
    let mut journal = store::open_journal(&job_dir).unwrap();
    journal
        .append_sync(
            &JournalRecord::Transition {
                to: JobState::Queued,
                reason: "submit".into(),
            }
            .encode(),
        )
        .unwrap();
    journal
        .append_sync(
            &JournalRecord::Transition {
                to: JobState::Running,
                reason: "start".into(),
            }
            .encode(),
        )
        .unwrap();
    drop(journal);
    let (mut results, _) = store::open_results(&job_dir).unwrap();
    for i in 0..5u64 {
        results
            .append_sync(&store::encode_result(i, (i * i).to_string().as_bytes()))
            .unwrap();
    }
    drop(results);
    let pre_crash_log = std::fs::read(job_dir.join(store::RESULTS_FILE)).unwrap();
    assert!(!pre_crash_log.is_empty());

    // A fresh manager over the same directory must re-queue and finish
    // the job without redoing points 0..5.
    let reran = Arc::new(AtomicBool::new(false));
    let saw_early_point = Arc::clone(&reran);
    let runner = Arc::new(
        move |_spec: &JobSpec, index: u64, _attempt: u32, _warm: Option<&[u8]>| {
            if index < 5 {
                saw_early_point.store(true, Ordering::Relaxed);
            }
            PointOutcome::Ok {
                payload: (index * index).to_string().into_bytes(),
                warm: None,
            }
        },
    );
    let metrics = JobsMetrics::standalone();
    let mgr = JobManager::open(config(&root), runner, Arc::clone(&metrics)).unwrap();
    assert_eq!(metrics.recovered.get(), 1, "recovery scan found the job");
    assert_eq!(
        wait_finished(&mgr, "job-000001", Duration::from_secs(10)),
        JobState::Done
    );
    assert!(
        !reran.load(Ordering::Relaxed),
        "resumed from the checkpointed results, not from zero"
    );

    // The pre-crash prefix of the results log is untouched: the log is
    // append-only, so recovery cannot rewrite history.
    let post_log = std::fs::read(job_dir.join(store::RESULTS_FILE)).unwrap();
    assert!(post_log.len() > pre_crash_log.len());
    assert_eq!(&post_log[..pre_crash_log.len()], &pre_crash_log[..]);

    // And the assembled results are exactly what an uninterrupted run
    // of the same campaign produces.
    let recovered_results = mgr.results("job-000001").unwrap();
    mgr.shutdown();

    let clean_root = temp_root("crash-clean");
    let clean = JobManager::open(
        config(&clean_root),
        square_runner(),
        JobsMetrics::standalone(),
    )
    .unwrap();
    let clean_id = clean.submit(spec(10)).unwrap();
    wait_finished(&clean, &clean_id, Duration::from_secs(10));
    assert_eq!(recovered_results, clean.results(&clean_id).unwrap());
    clean.shutdown();
}

#[test]
fn cancel_then_resume_completes_the_job() {
    let root = temp_root("cancel");
    let gate = Arc::new(AtomicBool::new(false));
    let slow = Arc::clone(&gate);
    let runner = Arc::new(
        move |_spec: &JobSpec, index: u64, _attempt: u32, _warm: Option<&[u8]>| {
            if !slow.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(5));
            }
            PointOutcome::Ok {
                payload: index.to_string().into_bytes(),
                warm: None,
            }
        },
    );
    let mgr = JobManager::open(config(&root), runner, JobsMetrics::standalone()).unwrap();
    let id = mgr.submit(spec(200)).unwrap();
    // Let it make some progress, then cancel.
    let start = Instant::now();
    while mgr.status(&id).unwrap().completed == 0 {
        assert!(start.elapsed() < Duration::from_secs(10));
        std::thread::sleep(Duration::from_millis(2));
    }
    mgr.cancel(&id).unwrap();
    let state = wait_finished(&mgr, &id, Duration::from_secs(10));
    assert_eq!(state, JobState::Cancelled);
    let at_cancel = mgr.status(&id).unwrap().completed;
    assert!(at_cancel < 200, "cancel stopped the campaign early");

    // Resume: completed points are kept, the rest run (fast now).
    gate.store(true, Ordering::Relaxed);
    mgr.resume(&id).unwrap();
    assert_eq!(
        wait_finished(&mgr, &id, Duration::from_secs(30)),
        JobState::Done
    );
    assert_eq!(mgr.status(&id).unwrap().completed, 200);
    mgr.shutdown();
}

#[test]
fn resume_clears_quarantine_for_a_fresh_budget() {
    let root = temp_root("resume-q");
    let healed = Arc::new(AtomicBool::new(false));
    let h = Arc::clone(&healed);
    let runner = Arc::new(
        move |_spec: &JobSpec, index: u64, _attempt: u32, _warm: Option<&[u8]>| {
            if index == 2 && !h.load(Ordering::Relaxed) {
                PointOutcome::Permanent("still poisoned".into())
            } else {
                PointOutcome::Ok {
                    payload: index.to_string().into_bytes(),
                    warm: None,
                }
            }
        },
    );
    let mgr = JobManager::open(config(&root), runner, JobsMetrics::standalone()).unwrap();
    let id = mgr.submit(spec(4)).unwrap();
    assert_eq!(
        wait_finished(&mgr, &id, Duration::from_secs(10)),
        JobState::Partial
    );
    assert_eq!(mgr.status(&id).unwrap().quarantined, vec![2]);

    healed.store(true, Ordering::Relaxed);
    mgr.resume(&id).unwrap();
    assert_eq!(
        wait_finished(&mgr, &id, Duration::from_secs(10)),
        JobState::Done
    );
    let status = mgr.status(&id).unwrap();
    assert!(status.quarantined.is_empty());
    assert_eq!(status.completed, 4);
    mgr.shutdown();
}

#[test]
fn attempt_deadline_quarantines_wedged_points() {
    let root = temp_root("deadline");
    let runner = Arc::new(
        |_spec: &JobSpec, index: u64, _attempt: u32, _warm: Option<&[u8]>| {
            if index == 0 {
                std::thread::sleep(Duration::from_millis(30));
            }
            PointOutcome::Ok {
                payload: vec![b'y'],
                warm: None,
            }
        },
    );
    let cfg = JobManagerConfig {
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff_ms: 1,
            max_backoff_ms: 2,
            attempt_deadline_ms: 5,
        },
        checkpoint_interval: 4,
        ..JobManagerConfig::new(&root)
    };
    let mgr = JobManager::open(cfg, runner, JobsMetrics::standalone()).unwrap();
    let id = mgr.submit(spec(2)).unwrap();
    assert_eq!(
        wait_finished(&mgr, &id, Duration::from_secs(10)),
        JobState::Partial
    );
    let status = mgr.status(&id).unwrap();
    assert_eq!(status.quarantined, vec![0]);
    assert!(status.last_error.unwrap().contains("deadline"));
    mgr.shutdown();
}

#[test]
fn warm_bytes_thread_between_points_and_survive_restart() {
    let root = temp_root("warm");
    // Each point appends its index byte to the warm state; the payload
    // records the warm bytes it received.
    let runner = Arc::new(
        |_spec: &JobSpec, index: u64, _attempt: u32, warm: Option<&[u8]>| {
            let mut next = warm.map(<[u8]>::to_vec).unwrap_or_default();
            let received = next.clone();
            next.push(index as u8);
            PointOutcome::Ok {
                payload: received,
                warm: Some(next),
            }
        },
    );
    let cfg = JobManagerConfig {
        checkpoint_interval: 1, // checkpoint every point so warm is durable
        ..config(&root)
    };
    let mgr = JobManager::open(
        cfg.clone(),
        Arc::clone(&runner) as Arc<dyn PointRunner>,
        JobsMetrics::standalone(),
    )
    .unwrap();
    let id = mgr.submit(spec(3)).unwrap();
    wait_finished(&mgr, &id, Duration::from_secs(10));
    let results = mgr.results(&id).unwrap();
    assert_eq!(
        results[2].1,
        vec![0u8, 1],
        "point 2 saw warm state from 0 and 1"
    );
    mgr.shutdown();

    // Simulate a crash after point 3 of a longer job: warm bytes come
    // back from the checkpoint file.
    let job_dir = root.join(&id);
    let ck = store::read_checkpoint(&job_dir).unwrap().unwrap();
    assert_eq!(ck.warm, vec![0u8, 1, 2]);
}

#[test]
fn unknown_job_and_illegal_transitions_are_errors() {
    let root = temp_root("errors");
    let mgr = JobManager::open(config(&root), square_runner(), JobsMetrics::standalone()).unwrap();
    assert!(mgr.status("job-999999").is_none());
    assert!(mgr.results("job-999999").is_err());
    assert!(mgr.cancel("job-999999").is_err());
    assert!(mgr.resume("job-999999").is_err());

    let id = mgr.submit(spec(2)).unwrap();
    wait_finished(&mgr, &id, Duration::from_secs(10));
    // Done is terminal: no resume, no cancel.
    assert!(mgr.resume(&id).is_err());
    assert!(mgr.cancel(&id).is_err());
    // Empty campaigns are rejected.
    assert!(mgr.submit(spec(0)).is_err());
    mgr.shutdown();
}

#[test]
fn two_jobs_interleave_in_checkpoint_sized_slices() {
    let root = temp_root("fairness");
    // Record (kind, index) for every executed point. The gate holds
    // the very first point until both submissions have returned, so
    // the recorded interleave is deterministic: whichever way the
    // submit calls race the scheduler, job B always joins the round at
    // the first slice boundary.
    let order: Arc<std::sync::Mutex<Vec<(String, u64)>>> =
        Arc::new(std::sync::Mutex::new(Vec::new()));
    let gate = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
    let runner: Arc<dyn PointRunner> = {
        let order = Arc::clone(&order);
        let gate = Arc::clone(&gate);
        Arc::new(
            move |spec: &JobSpec, index: u64, _attempt: u32, _warm: Option<&[u8]>| {
                let (lock, cvar) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cvar.wait(open).unwrap();
                }
                drop(open);
                order.lock().unwrap().push((spec.kind.clone(), index));
                PointOutcome::Ok {
                    payload: format!("{}:{index}", spec.kind).into_bytes(),
                    warm: None,
                }
            },
        )
    };
    let cfg = JobManagerConfig {
        checkpoint_interval: 2, // two-point quantum
        ..config(&root)
    };
    let mgr = JobManager::open(cfg, runner, JobsMetrics::standalone()).unwrap();
    let job = |kind: &str| JobSpec {
        kind: kind.into(),
        n_points: 6,
        payload: vec![],
    };
    let a = mgr.submit(job("A")).unwrap();
    let b = mgr.submit(job("B")).unwrap();
    {
        let (lock, cvar) = &*gate;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
    }
    assert_eq!(
        wait_finished(&mgr, &a, Duration::from_secs(10)),
        JobState::Done
    );
    assert_eq!(
        wait_finished(&mgr, &b, Duration::from_secs(10)),
        JobState::Done
    );

    let recorded = order.lock().unwrap().clone();
    let expect: Vec<(String, u64)> = [
        ("A", 0),
        ("A", 1),
        ("B", 0),
        ("B", 1),
        ("A", 2),
        ("A", 3),
        ("B", 2),
        ("B", 3),
        ("A", 4),
        ("A", 5),
        ("B", 4),
        ("B", 5),
    ]
    .iter()
    .map(|&(k, i)| (k.to_string(), i))
    .collect();
    assert_eq!(recorded, expect, "deficit-round-robin interleave is pinned");

    // Interleaving must not disturb per-job results: ascending indices
    // with the same payloads a FIFO drain would have produced.
    for (id, kind) in [(&a, "A"), (&b, "B")] {
        let results = mgr.results(id).unwrap();
        assert_eq!(results.len(), 6);
        for (i, (idx, payload)) in results.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(payload, format!("{kind}:{i}").as_bytes());
        }
    }
    mgr.shutdown();
}

#[test]
fn quarantine_manifest_in_status_survives_reopen() {
    let root = temp_root("manifest");
    let runner: Arc<dyn PointRunner> = Arc::new(
        |_spec: &JobSpec, index: u64, _attempt: u32, _warm: Option<&[u8]>| {
            if index == 2 {
                PointOutcome::Permanent("grid point rejected".into())
            } else {
                PointOutcome::Ok {
                    payload: index.to_string().into_bytes(),
                    warm: None,
                }
            }
        },
    );
    let mgr = JobManager::open(
        config(&root),
        Arc::clone(&runner),
        JobsMetrics::standalone(),
    )
    .unwrap();
    let id = mgr.submit(spec(5)).unwrap();
    assert_eq!(
        wait_finished(&mgr, &id, Duration::from_secs(10)),
        JobState::Partial
    );
    let st = mgr.status(&id).unwrap();
    assert_eq!(st.quarantined, vec![2]);
    assert_eq!(st.manifest.len(), 1);
    assert_eq!(st.manifest[0].point, 2);
    assert_eq!(st.manifest[0].attempts, 1, "permanent = one attempt");
    assert_eq!(st.manifest[0].error, "grid point rejected");
    mgr.shutdown();

    // The manifest is rebuilt from the journal on reopen — identical
    // to the live view, which is what lets streaming and refetch
    // consumers agree on the terminal payload across restarts.
    let mgr2 = JobManager::open(config(&root), runner, JobsMetrics::standalone()).unwrap();
    let st2 = mgr2.status(&id).unwrap();
    assert_eq!(st2.manifest, st.manifest);
    assert_eq!(st2.state, JobState::Partial);
    mgr2.shutdown();
}
