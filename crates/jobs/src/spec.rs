//! Job specifications.
//!
//! The jobs layer is deliberately ignorant of what a campaign computes:
//! a spec is a `kind` label, a point count, and an opaque payload the
//! embedding service (rumor-serve) interprets when it runs points. The
//! payload is stored verbatim — for the HTTP service it is the
//! canonical JSON of the submitted request, which makes re-running a
//! recovered job byte-for-byte identical to the original submission.

use crate::record::{put_bytes, Cursor};

/// What a job should compute: an opaque, durable campaign description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Campaign kind label (e.g. `"threshold_sweep"`); interpreted by
    /// the embedding service's point runner.
    pub kind: String,
    /// Number of grid points / replicas in the campaign.
    pub n_points: u64,
    /// Opaque campaign parameters (canonical request bytes).
    pub payload: Vec<u8>,
}

impl JobSpec {
    /// Encodes the spec for its atomic on-disk file.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.kind.len() + self.payload.len());
        put_bytes(&mut out, self.kind.as_bytes());
        out.extend_from_slice(&self.n_points.to_le_bytes());
        put_bytes(&mut out, &self.payload);
        out
    }

    /// Decodes a spec file; `None` if the bytes are malformed.
    pub fn decode(bytes: &[u8]) -> Option<JobSpec> {
        let mut c = Cursor::new(bytes);
        let kind = c.string()?;
        let n_points = c.u64()?;
        let payload = c.bytes()?.to_vec();
        if !c.at_end() {
            return None;
        }
        Some(JobSpec {
            kind,
            n_points,
            payload,
        })
    }
}

/// A durable per-job checkpoint: how far the campaign has advanced plus
/// opaque warm-start bytes the point runner threads from point to point
/// (for optimize sweeps this is the serialized best control schedule —
/// the FBSM watchdog checkpoint, externalized).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Checkpoint {
    /// Points completed when the checkpoint was written.
    pub completed: u64,
    /// Opaque warm-start state; empty means none.
    pub warm: Vec<u8>,
}

impl Checkpoint {
    /// Encodes the checkpoint for its atomic on-disk file.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.warm.len());
        out.extend_from_slice(&self.completed.to_le_bytes());
        put_bytes(&mut out, &self.warm);
        out
    }

    /// Decodes a checkpoint file; `None` if malformed.
    pub fn decode(bytes: &[u8]) -> Option<Checkpoint> {
        let mut c = Cursor::new(bytes);
        let completed = c.u64()?;
        let warm = c.bytes()?.to_vec();
        if !c.at_end() {
            return None;
        }
        Some(Checkpoint { completed, warm })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips() {
        let spec = JobSpec {
            kind: "threshold_sweep".into(),
            n_points: 10_000,
            payload: br#"{"points":10000}"#.to_vec(),
        };
        assert_eq!(JobSpec::decode(&spec.encode()), Some(spec));
        assert_eq!(JobSpec::decode(b"garbage"), None);
    }

    #[test]
    fn checkpoint_round_trips() {
        let ck = Checkpoint {
            completed: 6_212,
            warm: vec![1, 2, 3],
        };
        assert_eq!(Checkpoint::decode(&ck.encode()), Some(ck));
        assert_eq!(Checkpoint::decode(&[0; 3]), None);
    }
}
