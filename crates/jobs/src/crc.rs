//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Every record the journal or results log writes is framed with a
//! CRC of its payload; replay treats a mismatch as a torn tail and
//! truncates there. The vendored dependency set has no checksum crate,
//! so the classic reflected-polynomial table is built at first use.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of `data` (IEEE, reflected, init/final xor `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let a = crc32(b"durable campaign jobs");
        let b = crc32(b"durable campaign jobt");
        assert_ne!(a, b);
    }
}
