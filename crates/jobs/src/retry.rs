//! Retry policy: bounded attempts, exponential backoff with
//! deterministic jitter, per-attempt deadlines, and the quarantine
//! threshold.
//!
//! Backoff jitter is derived from a splitmix64 hash of
//! `(job sequence, point index, attempt)` rather than a clock or RNG,
//! so a resumed campaign waits exactly as long as the original would
//! have — scheduling is as reproducible as the numerics.

use std::time::Duration;

/// Retry/backoff configuration applied per campaign point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per point before quarantine (≥ 1).
    pub max_attempts: u32,
    /// First backoff delay, milliseconds.
    pub base_backoff_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub max_backoff_ms: u64,
    /// Wall-clock budget per attempt; an attempt that overruns it is
    /// counted as failed even if it eventually produced a result, so a
    /// wedged point drains a bounded slice of the campaign's time.
    pub attempt_deadline_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 50,
            max_backoff_ms: 2_000,
            attempt_deadline_ms: 30_000,
        }
    }
}

impl RetryPolicy {
    /// Validates the policy; returns a message naming the bad field.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_attempts == 0 {
            return Err("max_attempts must be at least 1".into());
        }
        if self.base_backoff_ms > self.max_backoff_ms {
            return Err(format!(
                "base_backoff_ms ({}) must not exceed max_backoff_ms ({})",
                self.base_backoff_ms, self.max_backoff_ms
            ));
        }
        if self.attempt_deadline_ms == 0 {
            return Err("attempt_deadline_ms must be positive".into());
        }
        Ok(())
    }

    /// The delay before retrying `point` after failed attempt number
    /// `attempt` (0-based): exponential in the attempt with ±50%
    /// deterministic jitter, capped at `max_backoff_ms`.
    pub fn backoff(&self, job_seq: u64, point: u64, attempt: u32) -> Duration {
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.max_backoff_ms);
        if exp == 0 {
            return Duration::ZERO;
        }
        let half = (exp / 2).max(1);
        let h = splitmix64(
            job_seq
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(point)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                .wrapping_add(u64::from(attempt)),
        );
        Duration::from_millis((half + h % (half + 1)).min(self.max_backoff_ms))
    }

    /// The per-attempt deadline as a [`Duration`].
    pub fn attempt_deadline(&self) -> Duration {
        Duration::from_millis(self.attempt_deadline_ms)
    }
}

/// SplitMix64 finalizer — a well-mixed 64-bit hash.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for attempt in 0..6 {
            let a = p.backoff(7, 6_212, attempt);
            let b = p.backoff(7, 6_212, attempt);
            assert_eq!(a, b, "same inputs, same delay");
            assert!(a.as_millis() as u64 <= p.max_backoff_ms);
        }
        // Different points jitter differently (with overwhelming odds).
        assert_ne!(p.backoff(7, 1, 0), p.backoff(7, 2, 0));
    }

    #[test]
    fn backoff_grows_with_attempts() {
        let p = RetryPolicy {
            base_backoff_ms: 100,
            max_backoff_ms: 100_000,
            ..RetryPolicy::default()
        };
        // The jittered delay lives in [exp/2, exp], so attempt k+2's
        // minimum exceeds attempt k's maximum.
        let a0 = p.backoff(1, 0, 0).as_millis();
        let a2 = p.backoff(1, 0, 2).as_millis();
        assert!(a2 > a0, "a0={a0} a2={a2}");
    }

    #[test]
    fn zero_base_means_no_wait() {
        let p = RetryPolicy {
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(1, 1, 3), Duration::ZERO);
    }

    #[test]
    fn validation_names_offending_field() {
        assert!(RetryPolicy::default().validate().is_ok());
        let bad = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        assert!(bad.validate().unwrap_err().contains("max_attempts"));
        let bad = RetryPolicy {
            base_backoff_ms: 10,
            max_backoff_ms: 5,
            ..RetryPolicy::default()
        };
        assert!(bad.validate().unwrap_err().contains("base_backoff_ms"));
        let bad = RetryPolicy {
            attempt_deadline_ms: 0,
            ..RetryPolicy::default()
        };
        assert!(bad.validate().unwrap_err().contains("attempt_deadline_ms"));
    }
}
