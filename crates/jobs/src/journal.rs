//! The write-ahead journal record codec.
//!
//! Each journal entry is one framed record (see [`crate::record`])
//! whose payload starts with a tag byte. The journal is the durable
//! truth for a job's state machine: replaying it left-to-right yields
//! the job's current state, quarantine set, and retry tally. Records
//! that fail to decode (unknown tag, short payload) are skipped rather
//! than fatal — a newer build must be able to replay an older journal.

use crate::record::{put_bytes, Cursor};
use crate::state::JobState;

const TAG_TRANSITION: u8 = 1;
const TAG_POINT_RETRY: u8 = 2;
const TAG_POINT_QUARANTINED: u8 = 3;
const TAG_CLEAR_QUARANTINE: u8 = 4;

/// One durable journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// The job entered `to` (reason is free text: `"submit"`,
    /// `"start"`, `"recovered"`, `"resume"`, `"cancel"`, …).
    Transition {
        /// New state.
        to: JobState,
        /// Why the transition happened.
        reason: String,
    },
    /// One attempt at a point failed and will be retried.
    PointRetry {
        /// Grid point index.
        index: u64,
        /// 0-based attempt number that failed.
        attempt: u32,
        /// The failure message.
        error: String,
    },
    /// A point exhausted its attempt budget (or failed permanently)
    /// and was quarantined.
    PointQuarantined {
        /// Grid point index.
        index: u64,
        /// Attempts consumed.
        attempts: u32,
        /// The final failure message.
        error: String,
    },
    /// `resume` cleared the quarantine set for a fresh attempt budget.
    ClearQuarantine,
}

impl JournalRecord {
    /// Encodes the record as a journal payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            JournalRecord::Transition { to, reason } => {
                out.push(TAG_TRANSITION);
                out.push(to.as_u8());
                put_bytes(&mut out, reason.as_bytes());
            }
            JournalRecord::PointRetry {
                index,
                attempt,
                error,
            } => {
                out.push(TAG_POINT_RETRY);
                out.extend_from_slice(&index.to_le_bytes());
                out.extend_from_slice(&attempt.to_le_bytes());
                put_bytes(&mut out, error.as_bytes());
            }
            JournalRecord::PointQuarantined {
                index,
                attempts,
                error,
            } => {
                out.push(TAG_POINT_QUARANTINED);
                out.extend_from_slice(&index.to_le_bytes());
                out.extend_from_slice(&attempts.to_le_bytes());
                put_bytes(&mut out, error.as_bytes());
            }
            JournalRecord::ClearQuarantine => out.push(TAG_CLEAR_QUARANTINE),
        }
        out
    }

    /// Decodes a journal payload; `None` for unknown or short records.
    pub fn decode(payload: &[u8]) -> Option<JournalRecord> {
        let mut c = Cursor::new(payload);
        match c.u8()? {
            TAG_TRANSITION => Some(JournalRecord::Transition {
                to: JobState::from_u8(c.u8()?)?,
                reason: c.string()?,
            }),
            TAG_POINT_RETRY => Some(JournalRecord::PointRetry {
                index: c.u64()?,
                attempt: c.u32()?,
                error: c.string()?,
            }),
            TAG_POINT_QUARANTINED => Some(JournalRecord::PointQuarantined {
                index: c.u64()?,
                attempts: c.u32()?,
                error: c.string()?,
            }),
            TAG_CLEAR_QUARANTINE => Some(JournalRecord::ClearQuarantine),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips() {
        let records = [
            JournalRecord::Transition {
                to: JobState::Running,
                reason: "start".into(),
            },
            JournalRecord::PointRetry {
                index: 6_212,
                attempt: 1,
                error: "transient: injected".into(),
            },
            JournalRecord::PointQuarantined {
                index: 6_212,
                attempts: 3,
                error: "poison".into(),
            },
            JournalRecord::ClearQuarantine,
        ];
        for r in &records {
            assert_eq!(JournalRecord::decode(&r.encode()).as_ref(), Some(r));
        }
    }

    #[test]
    fn unknown_or_truncated_records_decode_to_none() {
        assert_eq!(JournalRecord::decode(&[]), None);
        assert_eq!(JournalRecord::decode(&[99, 0, 0]), None);
        let mut good = JournalRecord::Transition {
            to: JobState::Done,
            reason: "x".into(),
        }
        .encode();
        good.truncate(good.len() - 1);
        assert_eq!(JournalRecord::decode(&good), None);
    }
}
