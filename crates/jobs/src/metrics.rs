//! Job metrics, registered into a shared `rumor-obs` [`Registry`].
//!
//! The embedding service passes its own registry so job series render
//! on the same `/metrics` page as the request counters; tests use
//! [`JobsMetrics::standalone`] to get an isolated block.

use rumor_obs::{Counter, Gauge, Registry};
use std::sync::Arc;

/// Counters and gauges describing the durable job subsystem.
pub struct JobsMetrics {
    /// Jobs accepted by `submit`.
    pub submitted: Arc<Counter>,
    /// Jobs re-queued by the startup recovery scan.
    pub recovered: Arc<Counter>,
    /// Jobs that finished `done`.
    pub done: Arc<Counter>,
    /// Jobs that finished `partial`.
    pub partial: Arc<Counter>,
    /// Jobs that finished `failed`.
    pub failed: Arc<Counter>,
    /// Jobs that finished `cancelled`.
    pub cancelled: Arc<Counter>,
    /// Points completed successfully.
    pub points_completed: Arc<Counter>,
    /// Point attempts that failed and were retried.
    pub points_retried: Arc<Counter>,
    /// Points quarantined after exhausting their attempt budget.
    pub points_quarantined: Arc<Counter>,
    /// Jobs currently executing.
    pub running: Arc<Gauge>,
}

impl JobsMetrics {
    /// Registers every job series (in stable order) into `registry`.
    pub fn register(registry: &mut Registry) -> Arc<JobsMetrics> {
        Arc::new(JobsMetrics {
            submitted: registry.counter("rumor_jobs_submitted_total"),
            recovered: registry.counter("rumor_jobs_recovered_total"),
            done: registry.counter("rumor_jobs_finished_total{state=\"done\"}"),
            partial: registry.counter("rumor_jobs_finished_total{state=\"partial\"}"),
            failed: registry.counter("rumor_jobs_finished_total{state=\"failed\"}"),
            cancelled: registry.counter("rumor_jobs_finished_total{state=\"cancelled\"}"),
            points_completed: registry.counter("rumor_jobs_points_completed_total"),
            points_retried: registry.counter("rumor_jobs_points_retried_total"),
            points_quarantined: registry.counter("rumor_jobs_points_quarantined_total"),
            running: registry.gauge("rumor_jobs_running"),
        })
    }

    /// A metrics block backed by a private registry (for tests and
    /// embedders without a shared page).
    pub fn standalone() -> Arc<JobsMetrics> {
        let mut registry = Registry::new();
        JobsMetrics::register(&mut registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_in_stable_order() {
        let mut r = Registry::new();
        let m = JobsMetrics::register(&mut r);
        m.submitted.add(2);
        m.points_retried.inc();
        m.running.set(1);
        let page = r.render();
        let submitted = page.find("rumor_jobs_submitted_total 2").unwrap();
        let recovered = page.find("rumor_jobs_recovered_total 0").unwrap();
        let retried = page.find("rumor_jobs_points_retried_total 1").unwrap();
        let running = page.find("rumor_jobs_running 1").unwrap();
        assert!(submitted < recovered && recovered < retried && retried < running);
    }
}
