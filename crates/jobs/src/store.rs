//! On-disk layout of one job and the replay that reconstructs it.
//!
//! ```text
//! <jobs_dir>/<job-id>/
//!   spec.bin        written once at submit (atomic rename + fsync)
//!   journal.log     framed CRC records; every state transition fsynced
//!   results.log     framed CRC records: [index u64 LE][payload…]
//!   checkpoint.bin  atomic-rename progress + warm-start bytes
//! ```
//!
//! Replay order on open: spec → journal (state machine, quarantine,
//! retries) → results (completed point set, torn tail truncated) →
//! checkpoint (warm-start bytes). A job found `Running` was interrupted
//! by a crash; the manager re-queues it and execution continues at the
//! first point without a result record — never from zero.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::journal::JournalRecord;
use crate::record::{self, RecordWriter};
use crate::spec::{Checkpoint, JobSpec};
use crate::state::JobState;
use crate::JobsError;

/// File names inside a job directory.
pub const SPEC_FILE: &str = "spec.bin";
/// Journal log file name.
pub const JOURNAL_FILE: &str = "journal.log";
/// Results log file name.
pub const RESULTS_FILE: &str = "results.log";
/// Checkpoint file name.
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";

/// Everything replayed from a job directory.
pub struct LoadedJob {
    /// The durable spec.
    pub spec: JobSpec,
    /// State after journal replay (`Queued` if the journal is empty).
    pub state: JobState,
    /// Quarantined point indices (after any `ClearQuarantine`).
    pub quarantined: BTreeSet<u64>,
    /// Per-point quarantine detail: `index -> (attempts, error)`,
    /// tracking `quarantined` exactly (cleared by `ClearQuarantine`).
    pub manifest: BTreeMap<u64, (u32, String)>,
    /// Total retry records seen.
    pub retries: u64,
    /// Most recent point failure message, if any.
    pub last_error: Option<String>,
    /// Completed point indices present in the results log.
    pub completed: BTreeSet<u64>,
    /// Warm-start bytes from the checkpoint file (empty if none).
    pub warm: Vec<u8>,
    /// Bytes dropped from torn tails during replay (journal + results).
    pub torn_bytes: u64,
}

/// Encodes one results-log payload.
pub fn encode_result(index: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&index.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes one results-log payload into `(index, payload)`.
pub fn decode_result(payload: &[u8]) -> Option<(u64, &[u8])> {
    let idx = payload.get(..8)?;
    Some((
        u64::from_le_bytes(idx.try_into().expect("8 bytes")),
        &payload[8..],
    ))
}

fn io_err(context: &str, path: &Path, e: std::io::Error) -> JobsError {
    JobsError::Io {
        context: format!("{context} ({})", path.display()),
        source: e,
    }
}

/// Creates a job directory and durably writes its spec.
pub fn create_job_dir(dir: &Path, spec: &JobSpec) -> Result<(), JobsError> {
    std::fs::create_dir_all(dir).map_err(|e| io_err("create job dir", dir, e))?;
    let spec_path = dir.join(SPEC_FILE);
    record::write_atomic(&spec_path, &spec.encode())
        .map_err(|e| io_err("write spec", &spec_path, e))
}

/// Opens the journal for appending (truncating any torn tail).
pub fn open_journal(dir: &Path) -> Result<RecordWriter, JobsError> {
    let path = dir.join(JOURNAL_FILE);
    RecordWriter::open(&path)
        .map(|(w, _)| w)
        .map_err(|e| io_err("open journal", &path, e))
}

/// Opens the results log for appending and returns the completed set.
pub fn open_results(dir: &Path) -> Result<(RecordWriter, BTreeSet<u64>), JobsError> {
    let path = dir.join(RESULTS_FILE);
    let (w, replayed) = RecordWriter::open(&path).map_err(|e| io_err("open results", &path, e))?;
    let mut completed = BTreeSet::new();
    for rec in &replayed.records {
        if let Some((idx, _)) = decode_result(rec) {
            completed.insert(idx);
        }
    }
    Ok((w, completed))
}

/// Reads the assembled results: `(index, payload)` sorted by index,
/// first record winning on duplicates (a crash between append and
/// checkpoint can legitimately re-run a point; payloads are
/// deterministic, but first-wins keeps assembly order-independent).
pub fn read_results(dir: &Path) -> Result<Vec<(u64, Vec<u8>)>, JobsError> {
    let path = dir.join(RESULTS_FILE);
    let replayed = record::replay(&path).map_err(|e| io_err("read results", &path, e))?;
    let mut seen = BTreeSet::new();
    let mut out: Vec<(u64, Vec<u8>)> = Vec::with_capacity(replayed.records.len());
    for rec in &replayed.records {
        if let Some((idx, payload)) = decode_result(rec) {
            if seen.insert(idx) {
                out.push((idx, payload.to_vec()));
            }
        }
    }
    out.sort_by_key(|&(idx, _)| idx);
    Ok(out)
}

/// Durably replaces the checkpoint file.
pub fn write_checkpoint(dir: &Path, ck: &Checkpoint) -> Result<(), JobsError> {
    let path = dir.join(CHECKPOINT_FILE);
    record::write_atomic(&path, &ck.encode()).map_err(|e| io_err("write checkpoint", &path, e))
}

/// Reads the checkpoint file; `None` if absent or undecodable (a
/// checkpoint is an optimization, so corruption degrades to a cold
/// warm-start, never an error).
pub fn read_checkpoint(dir: &Path) -> Result<Option<Checkpoint>, JobsError> {
    let path = dir.join(CHECKPOINT_FILE);
    Ok(record::read_atomic(&path)
        .map_err(|e| io_err("read checkpoint", &path, e))?
        .and_then(|b| Checkpoint::decode(&b)))
}

/// Replays a whole job directory.
pub fn load_job(dir: &Path) -> Result<LoadedJob, JobsError> {
    let spec_path = dir.join(SPEC_FILE);
    let spec_bytes = record::read_atomic(&spec_path)
        .map_err(|e| io_err("read spec", &spec_path, e))?
        .ok_or_else(|| JobsError::Corrupt(format!("{}: missing spec", dir.display())))?;
    let spec = JobSpec::decode(&spec_bytes)
        .ok_or_else(|| JobsError::Corrupt(format!("{}: undecodable spec", dir.display())))?;

    let journal_path = dir.join(JOURNAL_FILE);
    let journal =
        record::replay(&journal_path).map_err(|e| io_err("read journal", &journal_path, e))?;
    let mut state = JobState::Queued;
    let mut quarantined = BTreeSet::new();
    let mut manifest: BTreeMap<u64, (u32, String)> = BTreeMap::new();
    let mut retries = 0u64;
    let mut last_error = None;
    for rec in &journal.records {
        match JournalRecord::decode(rec) {
            Some(JournalRecord::Transition { to, .. }) => state = to,
            Some(JournalRecord::PointRetry { error, .. }) => {
                retries += 1;
                last_error = Some(error);
            }
            Some(JournalRecord::PointQuarantined {
                index,
                attempts,
                error,
            }) => {
                quarantined.insert(index);
                last_error = Some(error.clone());
                manifest.insert(index, (attempts, error));
            }
            Some(JournalRecord::ClearQuarantine) => {
                quarantined.clear();
                manifest.clear();
            }
            // Forward compatibility: skip records this build cannot read.
            None => {}
        }
    }

    let results_path = dir.join(RESULTS_FILE);
    let results =
        record::replay(&results_path).map_err(|e| io_err("read results", &results_path, e))?;
    let mut completed = BTreeSet::new();
    for rec in &results.records {
        if let Some((idx, _)) = decode_result(rec) {
            completed.insert(idx);
        }
    }

    let ck_path = dir.join(CHECKPOINT_FILE);
    let warm = record::read_atomic(&ck_path)
        .map_err(|e| io_err("read checkpoint", &ck_path, e))?
        .and_then(|b| Checkpoint::decode(&b))
        .map(|c| c.warm)
        .unwrap_or_default();

    Ok(LoadedJob {
        spec,
        state,
        quarantined,
        manifest,
        retries,
        last_error,
        completed,
        warm,
        torn_bytes: journal.torn_bytes + results.torn_bytes,
    })
}

/// Lists job directories under `root`, sorted by name (submission
/// order, since IDs embed a zero-padded sequence number).
pub fn list_job_dirs(root: &Path) -> Result<Vec<PathBuf>, JobsError> {
    let mut dirs = Vec::new();
    let entries = match std::fs::read_dir(root) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(dirs),
        Err(e) => return Err(io_err("list jobs dir", root, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err("list jobs dir", root, e))?;
        let path = entry.path();
        if path.is_dir() && path.join(SPEC_FILE).exists() {
            dirs.push(path);
        }
    }
    dirs.sort();
    Ok(dirs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::temp_dir;

    #[test]
    fn load_replays_journal_results_and_checkpoint() {
        let root = temp_dir("store-load");
        let dir = root.join("job-000001");
        let spec = JobSpec {
            kind: "threshold_sweep".into(),
            n_points: 5,
            payload: b"{}".to_vec(),
        };
        create_job_dir(&dir, &spec).unwrap();
        let mut journal = open_journal(&dir).unwrap();
        for rec in [
            JournalRecord::Transition {
                to: JobState::Queued,
                reason: "submit".into(),
            },
            JournalRecord::Transition {
                to: JobState::Running,
                reason: "start".into(),
            },
            JournalRecord::PointRetry {
                index: 3,
                attempt: 0,
                error: "flaky".into(),
            },
            JournalRecord::PointQuarantined {
                index: 3,
                attempts: 3,
                error: "poison".into(),
            },
        ] {
            journal.append_sync(&rec.encode()).unwrap();
        }
        let (mut results, completed) = open_results(&dir).unwrap();
        assert!(completed.is_empty());
        results.append_sync(&encode_result(0, b"r0")).unwrap();
        results.append_sync(&encode_result(1, b"r1")).unwrap();
        write_checkpoint(
            &dir,
            &Checkpoint {
                completed: 2,
                warm: vec![9, 9],
            },
        )
        .unwrap();

        let loaded = load_job(&dir).unwrap();
        assert_eq!(loaded.spec, spec);
        assert_eq!(loaded.state, JobState::Running, "interrupted mid-run");
        assert_eq!(loaded.completed.iter().copied().collect::<Vec<_>>(), [0, 1]);
        assert_eq!(loaded.quarantined.iter().copied().collect::<Vec<_>>(), [3]);
        assert_eq!(loaded.retries, 1);
        assert_eq!(loaded.warm, vec![9, 9]);
        assert_eq!(loaded.last_error.as_deref(), Some("poison"));
    }

    #[test]
    fn results_assembly_sorts_and_dedupes_first_wins() {
        let root = temp_dir("store-results");
        let dir = root.join("job-000001");
        create_job_dir(
            &dir,
            &JobSpec {
                kind: "k".into(),
                n_points: 3,
                payload: vec![],
            },
        )
        .unwrap();
        let (mut results, _) = open_results(&dir).unwrap();
        results.append(&encode_result(2, b"two")).unwrap();
        results.append(&encode_result(0, b"zero")).unwrap();
        results
            .append_sync(&encode_result(2, b"two-again"))
            .unwrap();
        let assembled = read_results(&dir).unwrap();
        assert_eq!(assembled, vec![(0, b"zero".to_vec()), (2, b"two".to_vec())]);
    }

    #[test]
    fn clear_quarantine_resets_the_set() {
        let root = temp_dir("store-clearq");
        let dir = root.join("job-000001");
        create_job_dir(
            &dir,
            &JobSpec {
                kind: "k".into(),
                n_points: 2,
                payload: vec![],
            },
        )
        .unwrap();
        let mut journal = open_journal(&dir).unwrap();
        journal
            .append_sync(
                &JournalRecord::PointQuarantined {
                    index: 1,
                    attempts: 3,
                    error: "x".into(),
                }
                .encode(),
            )
            .unwrap();
        journal
            .append_sync(&JournalRecord::ClearQuarantine.encode())
            .unwrap();
        let loaded = load_job(&dir).unwrap();
        assert!(loaded.quarantined.is_empty());
    }

    #[test]
    fn list_job_dirs_skips_non_jobs() {
        let root = temp_dir("store-list");
        std::fs::create_dir_all(root.join("not-a-job")).unwrap();
        std::fs::write(root.join("stray-file"), b"x").unwrap();
        for id in ["job-000002", "job-000001"] {
            create_job_dir(
                &root.join(id),
                &JobSpec {
                    kind: "k".into(),
                    n_points: 1,
                    payload: vec![],
                },
            )
            .unwrap();
        }
        let dirs = list_job_dirs(&root).unwrap();
        let names: Vec<_> = dirs
            .iter()
            .map(|d| d.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["job-000001", "job-000002"]);
    }
}
