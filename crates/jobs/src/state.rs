//! The job state machine.
//!
//! ```text
//!            submit            start
//!   (new) ──────────▶ Queued ────────▶ Running
//!                       ▲  ▲             │
//!                resume │  │ recovery    ├─▶ Done       (every point ok)
//!                       │  └─────────────┤
//!   Partial/Failed/─────┘                ├─▶ Partial    (quarantined points)
//!   Cancelled                            ├─▶ Failed     (no point succeeded)
//!                                        └─▶ Cancelled  (flag observed)
//! ```
//!
//! `Done` is the only terminal state a job cannot leave; the other
//! finished states can be re-queued with `resume`, which also clears
//! the quarantine set so poisoned points get a fresh attempt budget.
//! Every transition the manager performs is journaled and fsynced
//! before the in-memory state changes.

use std::fmt;

/// Lifecycle state of a campaign job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting for the executor.
    Queued,
    /// A worker is iterating its points.
    Running,
    /// Every point completed.
    Done,
    /// Finished, but some points are quarantined; results carry a
    /// manifest of what is missing.
    Partial,
    /// Finished with no successful point.
    Failed,
    /// Stopped by request before completion.
    Cancelled,
}

impl JobState {
    /// Stable wire/journal encoding.
    pub fn as_u8(self) -> u8 {
        match self {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Done => 2,
            JobState::Partial => 3,
            JobState::Failed => 4,
            JobState::Cancelled => 5,
        }
    }

    /// Decodes the journal encoding.
    pub fn from_u8(v: u8) -> Option<JobState> {
        Some(match v {
            0 => JobState::Queued,
            1 => JobState::Running,
            2 => JobState::Done,
            3 => JobState::Partial,
            4 => JobState::Failed,
            5 => JobState::Cancelled,
            _ => return None,
        })
    }

    /// The lowercase API spelling (`"queued"`, `"running"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Partial => "partial",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job has stopped executing (successfully or not).
    pub fn is_finished(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Partial | JobState::Failed | JobState::Cancelled
        )
    }

    /// Whether `self → to` is a legal transition for the manager to
    /// journal. Recovery (`Running → Queued`) and resume
    /// (`Partial/Failed/Cancelled → Queued`) are the only edges that
    /// point backwards.
    pub fn can_transition(self, to: JobState) -> bool {
        use JobState::*;
        matches!(
            (self, to),
            (Queued, Running)
                | (Queued, Cancelled)
                | (Running, Done)
                | (Running, Partial)
                | (Running, Failed)
                | (Running, Cancelled)
                | (Running, Queued)
                | (Partial, Queued)
                | (Failed, Queued)
                | (Cancelled, Queued)
        )
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_round_trips() {
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Partial,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            assert_eq!(JobState::from_u8(s.as_u8()), Some(s));
        }
        assert_eq!(JobState::from_u8(200), None);
    }

    #[test]
    fn legal_edges() {
        use JobState::*;
        assert!(Queued.can_transition(Running));
        assert!(Running.can_transition(Done));
        assert!(Running.can_transition(Queued), "recovery edge");
        assert!(Partial.can_transition(Queued), "resume edge");
        assert!(!Done.can_transition(Queued), "done is terminal");
        assert!(!Queued.can_transition(Done), "cannot skip running");
        assert!(!Failed.can_transition(Running));
    }

    #[test]
    fn finished_classification() {
        assert!(!JobState::Queued.is_finished());
        assert!(!JobState::Running.is_finished());
        assert!(JobState::Done.is_finished());
        assert!(JobState::Partial.is_finished());
        assert!(JobState::Failed.is_finished());
        assert!(JobState::Cancelled.is_finished());
    }
}
