//! The durable job manager: submission, execution, recovery, retry,
//! cancellation, and resume.
//!
//! One background scheduler thread interleaves **checkpoint-sized
//! slices** across every runnable campaign in deficit-round-robin
//! order: each job in turn executes up to `checkpoint_interval` points
//! through the embedder-supplied [`PointRunner`], lands a durable
//! checkpoint, and yields the thread to the next runnable job. Two
//! concurrent campaigns therefore make proportional progress instead
//! of the second waiting for the first to drain (the fairness
//! contract; see DESIGN.md §13). Within a job, points still run
//! sequentially on purpose — optimize sweeps thread a warm-start
//! schedule from point to point, and the per-point engines already
//! parallelize internally; because each job's points execute in the
//! same order with the same warm chain as a FIFO drain, results stay
//! byte-identical.
//!
//! Durability contract (see the crate docs for the full argument):
//!
//! * every state transition is journaled and fsynced **before** the
//!   in-memory state changes;
//! * a completed point is appended to the results log before progress
//!   counters move; the log is fsynced at every checkpoint and at every
//!   transition, and its CRC framing makes a torn tail detectable;
//! * `kill -9` at any instant loses at most the work since the last
//!   checkpoint — replay re-queues the job and execution continues at
//!   the first point without a result record.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use rumor_obs::FieldValue;

use crate::journal::JournalRecord;
use crate::metrics::JobsMetrics;
use crate::record::RecordWriter;
use crate::retry::RetryPolicy;
use crate::spec::{Checkpoint, JobSpec};
use crate::state::JobState;
use crate::store;
use crate::JobsError;

/// What happened when the runner executed one point.
pub enum PointOutcome {
    /// The point succeeded; `payload` is its durable result and `warm`
    /// (if any) replaces the warm-start bytes handed to later points.
    Ok {
        /// Serialized point result, stored verbatim in the results log.
        payload: Vec<u8>,
        /// Updated warm-start bytes, or `None` to keep the current ones.
        warm: Option<Vec<u8>>,
    },
    /// The attempt failed but retrying may help (timeouts, transient
    /// numerical trouble). Retried with backoff up to the attempt
    /// budget, then quarantined.
    Transient(String),
    /// The point can never succeed (invalid parameters for this grid
    /// point). Quarantined immediately.
    Permanent(String),
}

/// Executes campaign points. Implemented by the embedding service;
/// must be deterministic in `(spec, index)` for the byte-identical
/// recovery guarantee to hold.
pub trait PointRunner: Send + Sync {
    /// Runs point `index` of `spec`. `attempt` is 0-based; `warm`
    /// carries the warm-start bytes produced by the most recent
    /// successful point (surviving restarts via the checkpoint file).
    fn run_point(
        &self,
        spec: &JobSpec,
        index: u64,
        attempt: u32,
        warm: Option<&[u8]>,
    ) -> PointOutcome;
}

impl<F> PointRunner for F
where
    F: Fn(&JobSpec, u64, u32, Option<&[u8]>) -> PointOutcome + Send + Sync,
{
    fn run_point(
        &self,
        spec: &JobSpec,
        index: u64,
        attempt: u32,
        warm: Option<&[u8]>,
    ) -> PointOutcome {
        self(spec, index, attempt, warm)
    }
}

/// Manager configuration.
#[derive(Debug, Clone)]
pub struct JobManagerConfig {
    /// Root directory holding one subdirectory per job.
    pub root: PathBuf,
    /// Retry/backoff policy applied to every point.
    pub retry: RetryPolicy,
    /// Points between durable checkpoints (results fsync + checkpoint
    /// rename). Smaller = less work lost to `kill -9`, more I/O. Also
    /// the round-robin quantum: a running job yields the scheduler
    /// thread to other runnable jobs after this many points.
    pub checkpoint_interval: u64,
}

impl JobManagerConfig {
    /// A config with default retry policy and checkpoint interval.
    pub fn new(root: impl Into<PathBuf>) -> JobManagerConfig {
        JobManagerConfig {
            root: root.into(),
            retry: RetryPolicy::default(),
            checkpoint_interval: 32,
        }
    }
}

/// One quarantined point in a job's partial-result manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// The quarantined point index.
    pub point: u64,
    /// Attempts consumed before quarantine.
    pub attempts: u32,
    /// The final attempt's error message.
    pub error: String,
}

/// A point-in-time view of one job, including its partial-result
/// manifest (`quarantined` detail + `missing`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// Job ID (`job-NNNNNN`).
    pub id: String,
    /// Campaign kind label from the spec.
    pub kind: String,
    /// Current state.
    pub state: JobState,
    /// Total points in the campaign.
    pub total: u64,
    /// Points with durable results.
    pub completed: u64,
    /// Quarantined point indices, ascending.
    pub quarantined: Vec<u64>,
    /// Per-point quarantine detail, ascending by point. Rebuilt from
    /// the journal on recovery, so it is identical whether or not the
    /// process crashed in between.
    pub manifest: Vec<QuarantineEntry>,
    /// Retried attempts so far.
    pub retries: u64,
    /// Most recent point failure, if any.
    pub last_error: Option<String>,
}

impl JobStatus {
    /// Points neither completed nor quarantined.
    pub fn missing(&self) -> u64 {
        self.total
            .saturating_sub(self.completed)
            .saturating_sub(self.quarantined.len() as u64)
    }
}

struct JobInner {
    state: JobState,
    completed: u64,
    quarantined: BTreeSet<u64>,
    manifest: BTreeMap<u64, (u32, String)>,
    retries: u64,
    last_error: Option<String>,
}

struct JobEntry {
    id: String,
    seq: u64,
    dir: PathBuf,
    spec: JobSpec,
    cancel: AtomicBool,
    inner: Mutex<JobInner>,
}

impl JobEntry {
    fn status(&self) -> JobStatus {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        JobStatus {
            id: self.id.clone(),
            kind: self.spec.kind.clone(),
            state: inner.state,
            total: self.spec.n_points,
            completed: inner.completed,
            quarantined: inner.quarantined.iter().copied().collect(),
            manifest: inner
                .manifest
                .iter()
                .map(|(&point, (attempts, error))| QuarantineEntry {
                    point,
                    attempts: *attempts,
                    error: error.clone(),
                })
                .collect(),
            retries: inner.retries,
            last_error: inner.last_error.clone(),
        }
    }
}

/// Execution state of one job held across scheduler slices: the open
/// journal/results writers and the point cursor, so a yield costs one
/// checkpoint, not a reopen-and-replay of the whole directory.
struct ActiveRun {
    entry: Arc<JobEntry>,
    journal: RecordWriter,
    results: RecordWriter,
    completed: BTreeSet<u64>,
    quarantined: BTreeSet<u64>,
    warm: Option<Vec<u8>>,
    next_index: u64,
    /// Spans the whole run, across slices; ends when the run retires.
    _span: rumor_obs::Span,
}

/// How a scheduler slice ended.
enum SliceEnd {
    /// Quantum exhausted with work remaining; checkpointed and yielded.
    Yielded,
    /// All points visited (or the job was cancelled); a terminal
    /// transition was journaled.
    Finished,
    /// The stop flag was observed; the job was parked back to `queued`.
    Parked,
}

/// The durable job manager. Construct with [`JobManager::open`]; share
/// behind the returned `Arc`.
pub struct JobManager {
    config: JobManagerConfig,
    runner: Arc<dyn PointRunner>,
    metrics: Arc<JobsMetrics>,
    jobs: Mutex<HashMap<String, Arc<JobEntry>>>,
    tx: Mutex<Option<Sender<String>>>,
    stop: AtomicBool,
    worker: Mutex<Option<JoinHandle<()>>>,
    next_seq: AtomicU64,
}

impl JobManager {
    /// Opens (creating if needed) the jobs directory, replays every job
    /// found there, re-queues interrupted and queued work, and starts
    /// the worker.
    ///
    /// # Errors
    ///
    /// [`JobsError::InvalidConfig`] for a bad retry policy or zero
    /// checkpoint interval; [`JobsError::Io`] if the directory cannot
    /// be created or scanned. Individual corrupt job directories are
    /// skipped (with a `jobs.corrupt` event), not fatal.
    pub fn open(
        config: JobManagerConfig,
        runner: Arc<dyn PointRunner>,
        metrics: Arc<JobsMetrics>,
    ) -> Result<Arc<JobManager>, JobsError> {
        config.retry.validate().map_err(JobsError::InvalidConfig)?;
        if config.checkpoint_interval == 0 {
            return Err(JobsError::InvalidConfig(
                "checkpoint_interval must be at least 1".into(),
            ));
        }
        std::fs::create_dir_all(&config.root).map_err(|e| JobsError::Io {
            context: format!("create jobs dir ({})", config.root.display()),
            source: e,
        })?;

        let mut jobs = HashMap::new();
        let mut to_enqueue: Vec<(u64, String)> = Vec::new();
        let mut max_seq = 0u64;
        for dir in store::list_job_dirs(&config.root)? {
            let id = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let seq = id
                .strip_prefix("job-")
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0);
            max_seq = max_seq.max(seq);
            let loaded = match store::load_job(&dir) {
                Ok(l) => l,
                Err(e) => {
                    rumor_obs::event(
                        "jobs.corrupt",
                        &[
                            ("job", FieldValue::from(id.as_str())),
                            ("error", FieldValue::from(e.to_string())),
                        ],
                    );
                    continue;
                }
            };
            let mut state = loaded.state;
            if state == JobState::Running {
                // Interrupted by a crash: journal the recovery edge so
                // the on-disk state machine is consistent again.
                let mut journal = store::open_journal(&dir)?;
                journal
                    .append_sync(
                        &JournalRecord::Transition {
                            to: JobState::Queued,
                            reason: "recovered".into(),
                        }
                        .encode(),
                    )
                    .map_err(|e| JobsError::Io {
                        context: format!("journal recovery ({})", dir.display()),
                        source: e,
                    })?;
                state = JobState::Queued;
                metrics.recovered.inc();
                rumor_obs::add("jobs.recovered", 1);
                rumor_obs::event(
                    "jobs.recovered",
                    &[
                        ("job", FieldValue::from(id.as_str())),
                        ("completed", FieldValue::from(loaded.completed.len())),
                        ("total", FieldValue::from(loaded.spec.n_points)),
                    ],
                );
            }
            if state == JobState::Queued {
                to_enqueue.push((seq, id.clone()));
            }
            let entry = Arc::new(JobEntry {
                id: id.clone(),
                seq,
                dir,
                spec: loaded.spec,
                cancel: AtomicBool::new(false),
                inner: Mutex::new(JobInner {
                    state,
                    completed: loaded.completed.len() as u64,
                    quarantined: loaded.quarantined,
                    manifest: loaded.manifest,
                    retries: loaded.retries,
                    last_error: loaded.last_error,
                }),
            });
            jobs.insert(id, entry);
        }

        let (tx, rx) = mpsc::channel::<String>();
        to_enqueue.sort();
        for (_, id) in &to_enqueue {
            let _ = tx.send(id.clone());
        }

        let manager = Arc::new(JobManager {
            config,
            runner,
            metrics,
            jobs: Mutex::new(jobs),
            tx: Mutex::new(Some(tx)),
            stop: AtomicBool::new(false),
            worker: Mutex::new(None),
            next_seq: AtomicU64::new(max_seq + 1),
        });
        let for_worker = Arc::clone(&manager);
        let handle = std::thread::Builder::new()
            .name("rumor-jobs-worker".into())
            .spawn(move || for_worker.scheduler_loop(&rx))
            .map_err(|e| JobsError::Io {
                context: "spawn jobs worker".into(),
                source: e,
            })?;
        *manager.worker.lock().unwrap_or_else(|e| e.into_inner()) = Some(handle);
        Ok(manager)
    }

    /// The metrics block this manager records into.
    pub fn metrics(&self) -> &JobsMetrics {
        &self.metrics
    }

    /// Submits a campaign; returns its job ID once the spec and the
    /// `queued` transition are durable.
    ///
    /// # Errors
    ///
    /// [`JobsError::InvalidConfig`] for an empty campaign;
    /// [`JobsError::Io`] if persistence fails (nothing is enqueued).
    pub fn submit(&self, spec: JobSpec) -> Result<String, JobsError> {
        if spec.n_points == 0 {
            return Err(JobsError::InvalidConfig(
                "a campaign needs at least one point".into(),
            ));
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let id = format!("job-{seq:06}");
        let dir = self.config.root.join(&id);
        store::create_job_dir(&dir, &spec)?;
        let mut journal = store::open_journal(&dir)?;
        journal
            .append_sync(
                &JournalRecord::Transition {
                    to: JobState::Queued,
                    reason: "submit".into(),
                }
                .encode(),
            )
            .map_err(|e| JobsError::Io {
                context: format!("journal submit ({})", dir.display()),
                source: e,
            })?;
        let entry = Arc::new(JobEntry {
            id: id.clone(),
            seq,
            dir,
            spec,
            cancel: AtomicBool::new(false),
            inner: Mutex::new(JobInner {
                state: JobState::Queued,
                completed: 0,
                quarantined: BTreeSet::new(),
                manifest: BTreeMap::new(),
                retries: 0,
                last_error: None,
            }),
        });
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id.clone(), entry);
        self.metrics.submitted.inc();
        rumor_obs::add("jobs.submitted", 1);
        rumor_obs::event(
            "jobs.transition",
            &[
                ("job", FieldValue::from(id.as_str())),
                ("to", FieldValue::from("queued")),
                ("reason", FieldValue::from("submit")),
            ],
        );
        self.enqueue(&id);
        Ok(id)
    }

    fn enqueue(&self, id: &str) {
        let guard = self.tx.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(tx) = guard.as_ref() {
            let _ = tx.send(id.to_string());
        }
    }

    fn entry(&self, id: &str) -> Option<Arc<JobEntry>> {
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(id)
            .cloned()
    }

    /// The status of one job, or `None` for an unknown ID.
    pub fn status(&self, id: &str) -> Option<JobStatus> {
        self.entry(id).map(|e| e.status())
    }

    /// Statuses of every known job, in submission order.
    pub fn list(&self) -> Vec<JobStatus> {
        let mut entries: Vec<Arc<JobEntry>> = self
            .jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .cloned()
            .collect();
        entries.sort_by_key(|e| e.seq);
        entries.iter().map(|e| e.status()).collect()
    }

    /// The durable results of a job: `(index, payload)` ascending.
    /// Available at any time; mid-run it returns the points completed
    /// so far.
    ///
    /// # Errors
    ///
    /// [`JobsError::UnknownJob`] / [`JobsError::Io`].
    pub fn results(&self, id: &str) -> Result<Vec<(u64, Vec<u8>)>, JobsError> {
        let entry = self
            .entry(id)
            .ok_or_else(|| JobsError::UnknownJob(id.to_string()))?;
        store::read_results(&entry.dir)
    }

    /// Requests cancellation. A queued job is cancelled immediately; a
    /// running one stops at its next point boundary. Returns the state
    /// observed at the time of the call.
    ///
    /// # Errors
    ///
    /// [`JobsError::UnknownJob`]; [`JobsError::InvalidTransition`] if
    /// the job already finished (cancelling a cancelled job is a no-op).
    pub fn cancel(&self, id: &str) -> Result<JobState, JobsError> {
        let entry = self
            .entry(id)
            .ok_or_else(|| JobsError::UnknownJob(id.to_string()))?;
        let mut inner = entry.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner.state {
            JobState::Queued => {
                let mut journal = store::open_journal(&entry.dir)?;
                journal
                    .append_sync(
                        &JournalRecord::Transition {
                            to: JobState::Cancelled,
                            reason: "cancel".into(),
                        }
                        .encode(),
                    )
                    .map_err(|e| JobsError::Io {
                        context: format!("journal cancel ({})", entry.dir.display()),
                        source: e,
                    })?;
                inner.state = JobState::Cancelled;
                entry.cancel.store(true, Ordering::Relaxed);
                self.metrics.cancelled.inc();
                rumor_obs::event(
                    "jobs.transition",
                    &[
                        ("job", FieldValue::from(id)),
                        ("to", FieldValue::from("cancelled")),
                        ("reason", FieldValue::from("cancel")),
                    ],
                );
                Ok(JobState::Cancelled)
            }
            JobState::Running => {
                entry.cancel.store(true, Ordering::Relaxed);
                Ok(JobState::Running)
            }
            JobState::Cancelled => Ok(JobState::Cancelled),
            other => Err(JobsError::InvalidTransition {
                from: other,
                to: JobState::Cancelled,
            }),
        }
    }

    /// Re-queues a `partial`, `failed`, or `cancelled` job: clears its
    /// quarantine set (journaled) so poisoned points get a fresh
    /// attempt budget, and completed points are kept — only missing
    /// work re-runs.
    ///
    /// # Errors
    ///
    /// [`JobsError::UnknownJob`]; [`JobsError::InvalidTransition`] from
    /// any other state (`done` has nothing to resume).
    pub fn resume(&self, id: &str) -> Result<(), JobsError> {
        let entry = self
            .entry(id)
            .ok_or_else(|| JobsError::UnknownJob(id.to_string()))?;
        {
            let mut inner = entry.inner.lock().unwrap_or_else(|e| e.into_inner());
            if !inner.state.can_transition(JobState::Queued) || inner.state == JobState::Running {
                return Err(JobsError::InvalidTransition {
                    from: inner.state,
                    to: JobState::Queued,
                });
            }
            let mut journal = store::open_journal(&entry.dir)?;
            journal
                .append(&JournalRecord::ClearQuarantine.encode())
                .and_then(|()| {
                    journal.append_sync(
                        &JournalRecord::Transition {
                            to: JobState::Queued,
                            reason: "resume".into(),
                        }
                        .encode(),
                    )
                })
                .map_err(|e| JobsError::Io {
                    context: format!("journal resume ({})", entry.dir.display()),
                    source: e,
                })?;
            inner.quarantined.clear();
            inner.manifest.clear();
            inner.state = JobState::Queued;
            entry.cancel.store(false, Ordering::Relaxed);
        }
        rumor_obs::event(
            "jobs.transition",
            &[
                ("job", FieldValue::from(id)),
                ("to", FieldValue::from("queued")),
                ("reason", FieldValue::from("resume")),
            ],
        );
        self.enqueue(id);
        Ok(())
    }

    /// Stops the worker at the next point boundary and joins it. An
    /// interrupted job is transitioned back to `queued` on disk, so the
    /// next `open` of the same directory picks it up.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        *self.tx.lock().unwrap_or_else(|e| e.into_inner()) = None;
        let handle = self.worker.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    /// Deficit-round-robin scheduler: every runnable job in turn runs
    /// one checkpoint-sized slice, lands a durable checkpoint, and goes
    /// to the back of the round. Submissions observed at a slice
    /// boundary join the round *before* the yielding job re-queues, so
    /// the interleave is the same whether a submission raced the slice
    /// or arrived ahead of it — the property the two-job fairness test
    /// pins.
    fn scheduler_loop(&self, rx: &Receiver<String>) {
        let mut round: VecDeque<ActiveRun> = VecDeque::new();
        loop {
            if self.stop.load(Ordering::Relaxed) {
                for run in round.drain(..) {
                    self.park(run);
                }
                return;
            }
            if round.is_empty() {
                // Idle: block until a submission arrives or shutdown
                // drops the sender.
                match rx.recv() {
                    Ok(id) => {
                        if let Some(run) = self.activate(&id) {
                            round.push_back(run);
                        }
                        continue; // re-check the stop flag first
                    }
                    Err(_) => return,
                }
            }
            let Some(mut run) = round.pop_front() else {
                continue;
            };
            let end = self.run_slice(&mut run);
            while let Ok(id) = rx.try_recv() {
                if let Some(next) = self.activate(&id) {
                    round.push_back(next);
                }
            }
            match end {
                Ok(SliceEnd::Yielded) => round.push_back(run),
                Ok(SliceEnd::Finished | SliceEnd::Parked) => self.retire(run),
                Err(e) => {
                    // Persistence failed mid-run; surface through
                    // status and leave the on-disk state for the next
                    // recovery scan.
                    {
                        let mut inner = run.entry.inner.lock().unwrap_or_else(|p| p.into_inner());
                        inner.last_error = Some(e.to_string());
                    }
                    rumor_obs::event(
                        "jobs.error",
                        &[
                            ("job", FieldValue::from(run.entry.id.as_str())),
                            ("error", FieldValue::from(e.to_string())),
                        ],
                    );
                    self.retire(run);
                }
            }
        }
    }

    /// Opens a runnable job's durable state for slicing: journals the
    /// `running` transition, opens the journal and results writers,
    /// and seeds the warm-start bytes from the last checkpoint.
    /// Returns `None` for stale queue entries (e.g. cancelled while
    /// queued) and records — without propagating — activation
    /// failures.
    fn activate(&self, id: &str) -> Option<ActiveRun> {
        let entry = self.entry(id)?;
        {
            let inner = entry.inner.lock().unwrap_or_else(|e| e.into_inner());
            if inner.state != JobState::Queued {
                return None;
            }
        }
        let mut span = rumor_obs::span("jobs.run");
        span.field("job", entry.id.as_str());
        span.field("points", entry.spec.n_points);
        let opened = (|| -> Result<_, JobsError> {
            let mut journal = store::open_journal(&entry.dir)?;
            journal_transition(&entry, &mut journal, JobState::Running, "start")?;
            let (results, completed) = store::open_results(&entry.dir)?;
            let warm = store::read_checkpoint(&entry.dir)?
                .map(|c| c.warm)
                .filter(|w| !w.is_empty());
            Ok((journal, results, completed, warm))
        })();
        match opened {
            Ok((journal, results, completed, warm)) => {
                let quarantined = entry
                    .inner
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .quarantined
                    .clone();
                self.metrics.running.inc();
                Some(ActiveRun {
                    entry,
                    journal,
                    results,
                    completed,
                    quarantined,
                    warm,
                    next_index: 0,
                    _span: span,
                })
            }
            Err(e) => {
                {
                    let mut inner = entry.inner.lock().unwrap_or_else(|p| p.into_inner());
                    inner.last_error = Some(e.to_string());
                }
                rumor_obs::event(
                    "jobs.error",
                    &[
                        ("job", FieldValue::from(entry.id.as_str())),
                        ("error", FieldValue::from(e.to_string())),
                    ],
                );
                None
            }
        }
    }

    /// Runs up to `checkpoint_interval` points of one job, then lands
    /// a durable checkpoint and yields. Already-completed (or
    /// quarantined) indices are skipped without charging the quantum,
    /// so a recovered job spends its slice on real work.
    fn run_slice(&self, run: &mut ActiveRun) -> Result<SliceEnd, JobsError> {
        let retry = self.config.retry;
        let deadline = retry.attempt_deadline();
        let mut budget = self.config.checkpoint_interval;

        while run.next_index < run.entry.spec.n_points {
            if self.stop.load(Ordering::Relaxed) {
                // Graceful shutdown: park the job back in the queue
                // durably; the next open re-enqueues it.
                self.checkpoint(run)?;
                journal_transition(&run.entry, &mut run.journal, JobState::Queued, "shutdown")?;
                return Ok(SliceEnd::Parked);
            }
            if run.entry.cancel.load(Ordering::Relaxed) {
                run.results.sync().map_err(|e| results_error(run, e))?;
                journal_transition(&run.entry, &mut run.journal, JobState::Cancelled, "cancel")?;
                self.metrics.cancelled.inc();
                return Ok(SliceEnd::Finished);
            }
            let index = run.next_index;
            if run.completed.contains(&index) || run.quarantined.contains(&index) {
                run.next_index += 1;
                continue;
            }
            if budget == 0 {
                self.checkpoint(run)?;
                return Ok(SliceEnd::Yielded);
            }
            budget -= 1;

            let mut attempt = 0u32;
            loop {
                let started = Instant::now();
                let outcome =
                    self.runner
                        .run_point(&run.entry.spec, index, attempt, run.warm.as_deref());
                let elapsed = started.elapsed();
                let outcome = if elapsed > deadline {
                    PointOutcome::Transient(format!(
                        "attempt exceeded its {} ms deadline ({} ms)",
                        retry.attempt_deadline_ms,
                        elapsed.as_millis()
                    ))
                } else {
                    outcome
                };
                match outcome {
                    PointOutcome::Ok { payload, warm: w } => {
                        run.results
                            .append(&store::encode_result(index, &payload))
                            .map_err(|e| results_error(run, e))?;
                        run.completed.insert(index);
                        if let Some(w) = w {
                            run.warm = Some(w);
                        }
                        self.metrics.points_completed.inc();
                        rumor_obs::add("jobs.points_completed", 1);
                        {
                            let mut inner =
                                run.entry.inner.lock().unwrap_or_else(|e| e.into_inner());
                            inner.completed = run.completed.len() as u64;
                        }
                        break;
                    }
                    PointOutcome::Transient(error) => {
                        run.journal
                            .append_sync(
                                &JournalRecord::PointRetry {
                                    index,
                                    attempt,
                                    error: error.clone(),
                                }
                                .encode(),
                            )
                            .map_err(|e| JobsError::Io {
                                context: format!("journal retry ({})", run.entry.dir.display()),
                                source: e,
                            })?;
                        self.metrics.points_retried.inc();
                        rumor_obs::add("jobs.points_retried", 1);
                        rumor_obs::event(
                            "jobs.retry",
                            &[
                                ("job", FieldValue::from(run.entry.id.as_str())),
                                ("point", FieldValue::from(index)),
                                ("attempt", FieldValue::from(attempt)),
                                ("error", FieldValue::from(error.as_str())),
                            ],
                        );
                        {
                            let mut inner =
                                run.entry.inner.lock().unwrap_or_else(|e| e.into_inner());
                            inner.retries += 1;
                            inner.last_error = Some(error.clone());
                        }
                        attempt += 1;
                        if attempt >= retry.max_attempts {
                            self.quarantine(
                                &run.entry,
                                &mut run.journal,
                                &mut run.quarantined,
                                index,
                                attempt,
                                error,
                            )?;
                            break;
                        }
                        std::thread::sleep(retry.backoff(run.entry.seq, index, attempt - 1));
                    }
                    PointOutcome::Permanent(error) => {
                        self.quarantine(
                            &run.entry,
                            &mut run.journal,
                            &mut run.quarantined,
                            index,
                            attempt + 1,
                            error,
                        )?;
                        break;
                    }
                }
            }
            run.next_index += 1;
        }

        self.checkpoint(run)?;
        let final_state = if run.entry.cancel.load(Ordering::Relaxed) {
            JobState::Cancelled
        } else if run.quarantined.is_empty()
            && run.completed.len() as u64 == run.entry.spec.n_points
        {
            JobState::Done
        } else if run.completed.is_empty() {
            JobState::Failed
        } else {
            JobState::Partial
        };
        journal_transition(&run.entry, &mut run.journal, final_state, "finished")?;
        match final_state {
            JobState::Done => self.metrics.done.inc(),
            JobState::Partial => self.metrics.partial.inc(),
            JobState::Failed => self.metrics.failed.inc(),
            JobState::Cancelled => self.metrics.cancelled.inc(),
            _ => {}
        }
        Ok(SliceEnd::Finished)
    }

    /// Fsyncs the results log and atomically replaces the checkpoint —
    /// the durable slice boundary.
    fn checkpoint(&self, run: &mut ActiveRun) -> Result<(), JobsError> {
        run.results.sync().map_err(|e| results_error(run, e))?;
        store::write_checkpoint(
            &run.entry.dir,
            &Checkpoint {
                completed: run.completed.len() as u64,
                warm: run.warm.clone().unwrap_or_default(),
            },
        )?;
        rumor_obs::add("jobs.checkpoints", 1);
        Ok(())
    }

    /// Parks an in-flight run durably back to `queued` ahead of
    /// shutdown; the next `open` of the directory re-enqueues it.
    fn park(&self, mut run: ActiveRun) {
        let parked = self.checkpoint(&mut run).and_then(|()| {
            journal_transition(&run.entry, &mut run.journal, JobState::Queued, "shutdown")
        });
        if let Err(e) = parked {
            let mut inner = run.entry.inner.lock().unwrap_or_else(|p| p.into_inner());
            inner.last_error = Some(e.to_string());
        }
        self.retire(run);
    }

    /// Drops a finished or parked run: closes its writers and span and
    /// releases its `running` gauge slot.
    fn retire(&self, run: ActiveRun) {
        self.metrics.running.dec();
        drop(run);
    }

    fn quarantine(
        &self,
        entry: &JobEntry,
        journal: &mut crate::record::RecordWriter,
        quarantined: &mut BTreeSet<u64>,
        index: u64,
        attempts: u32,
        error: String,
    ) -> Result<(), JobsError> {
        journal
            .append_sync(
                &JournalRecord::PointQuarantined {
                    index,
                    attempts,
                    error: error.clone(),
                }
                .encode(),
            )
            .map_err(|e| JobsError::Io {
                context: format!("journal quarantine ({})", entry.dir.display()),
                source: e,
            })?;
        quarantined.insert(index);
        self.metrics.points_quarantined.inc();
        rumor_obs::add("jobs.points_quarantined", 1);
        rumor_obs::event(
            "jobs.quarantine",
            &[
                ("job", FieldValue::from(entry.id.as_str())),
                ("point", FieldValue::from(index)),
                ("attempts", FieldValue::from(attempts)),
                ("error", FieldValue::from(error.as_str())),
            ],
        );
        let mut inner = entry.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.quarantined.insert(index);
        inner.manifest.insert(index, (attempts, error.clone()));
        inner.last_error = Some(error);
        Ok(())
    }
}

fn results_error(run: &ActiveRun, e: std::io::Error) -> JobsError {
    JobsError::Io {
        context: format!("append result ({})", run.entry.dir.display()),
        source: e,
    }
}

/// Journals a state transition (fsynced) and only then updates the
/// in-memory state — the write-ahead ordering the recovery argument
/// rests on.
fn journal_transition(
    entry: &JobEntry,
    journal: &mut crate::record::RecordWriter,
    to: JobState,
    reason: &str,
) -> Result<(), JobsError> {
    {
        let inner = entry.inner.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(
            inner.state.can_transition(to),
            "illegal transition {} -> {}",
            inner.state,
            to
        );
    }
    journal
        .append_sync(
            &JournalRecord::Transition {
                to,
                reason: reason.into(),
            }
            .encode(),
        )
        .map_err(|e| JobsError::Io {
            context: format!("journal transition ({})", entry.dir.display()),
            source: e,
        })?;
    let mut inner = entry.inner.lock().unwrap_or_else(|e| e.into_inner());
    inner.state = to;
    drop(inner);
    rumor_obs::add("jobs.transitions", 1);
    rumor_obs::event(
        "jobs.transition",
        &[
            ("job", FieldValue::from(entry.id.as_str())),
            ("to", FieldValue::from(to.as_str())),
            ("reason", FieldValue::from(reason)),
        ],
    );
    Ok(())
}
