//! # rumor-jobs
//!
//! Durable campaign jobs for the rumor-containment stack. The paper's
//! countermeasure workflow is not one solve but a campaign — thousands
//! of `(λ0, ε1max, ε2max)` grid points or ensemble replicas whose
//! cost-effectiveness comparisons only mean something if every point
//! completes *or is accounted for*. This crate makes campaigns survive
//! crashes:
//!
//! * **Write-ahead queue** — a job is durable (spec + `queued`
//!   journal record, fsynced) before `submit` returns ([`store`],
//!   [`manager`]).
//! * **CRC-checked journals** — every record is length- and
//!   CRC32-framed; replay truncates torn tails instead of failing
//!   ([`record`]).
//! * **Journaled state machine** — `queued → running →
//!   done/partial/failed/cancelled`, with recovery (`running → queued`)
//!   and resume edges; each transition hits the journal before memory
//!   ([`state`]).
//! * **Resumable checkpoints** — per-point results append to a log,
//!   and an atomic-rename checkpoint carries warm-start bytes (the
//!   FBSM watchdog checkpoint, externalized), so a sweep interrupted
//!   at point 6,212/10,000 restarts there ([`spec`], [`store`]).
//! * **Retry with quarantine** — bounded attempts, exponential backoff
//!   with deterministic jitter, per-attempt deadlines; poison points
//!   are quarantined and the campaign finishes `partial` with an
//!   explicit manifest of what is missing ([`retry`]).
//!
//! The crate is std-only and knows nothing about HTTP or the rumor
//! model: the embedding service supplies a [`PointRunner`] that
//! interprets the opaque spec payload, and (optionally) a shared
//! `rumor-obs` registry for the metrics block.

pub mod crc;
pub mod journal;
pub mod manager;
pub mod metrics;
pub mod record;
pub mod retry;
pub mod spec;
pub mod state;
pub mod store;

pub use manager::{
    JobManager, JobManagerConfig, JobStatus, PointOutcome, PointRunner, QuarantineEntry,
};
pub use metrics::JobsMetrics;
pub use retry::RetryPolicy;
pub use spec::{Checkpoint, JobSpec};
pub use state::JobState;

use std::fmt;

/// Failures from the durable job subsystem.
#[derive(Debug)]
pub enum JobsError {
    /// A configuration field was rejected.
    InvalidConfig(String),
    /// Persistence failed (the context names the file and operation).
    Io {
        /// What was being done to which path.
        context: String,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
    /// A durable structure could not be decoded.
    Corrupt(String),
    /// No job with the given ID.
    UnknownJob(String),
    /// The requested state change is not a legal edge.
    InvalidTransition {
        /// Current state.
        from: state::JobState,
        /// Requested state.
        to: state::JobState,
    },
}

impl fmt::Display for JobsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobsError::InvalidConfig(m) => write!(f, "invalid jobs configuration: {m}"),
            JobsError::Io { context, source } => write!(f, "jobs i/o failure: {context}: {source}"),
            JobsError::Corrupt(m) => write!(f, "corrupt job store: {m}"),
            JobsError::UnknownJob(id) => write!(f, "unknown job {id:?}"),
            JobsError::InvalidTransition { from, to } => {
                write!(f, "illegal job transition {from} -> {to}")
            }
        }
    }
}

impl std::error::Error for JobsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobsError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique, freshly created temporary directory for one test.
    pub fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("rumor-jobs-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }
}
