//! Length- and CRC-framed append-only record files.
//!
//! Both the transition journal and the per-point results log share one
//! on-disk framing: `[len: u32 LE][crc32(payload): u32 LE][payload]`.
//! A reader walks records until the file ends cleanly or it hits a torn
//! tail — a short header, a length running past end-of-file, or a CRC
//! mismatch — and reports the byte length of the valid prefix. Opening
//! for append truncates to that prefix first, so a crash mid-write
//! costs at most the record being written, never the records before it.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32;

/// Upper bound on a single record payload; anything larger on replay is
/// treated as tail corruption rather than allocated.
const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// The decoded contents of a record file: the valid records plus how
/// many trailing bytes were dropped as a torn tail.
pub struct Replay {
    /// Payloads of every intact record, in write order.
    pub records: Vec<Vec<u8>>,
    /// Byte length of the valid prefix.
    pub valid_len: u64,
    /// Bytes discarded after the valid prefix (0 on a clean file).
    pub torn_bytes: u64,
}

/// Reads and validates every record in `path`. A missing file replays
/// as empty.
pub fn replay(path: &Path) -> io::Result<Replay> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    let mut pos = 0usize;
    while let Some(header) = bytes.get(pos..pos + 8) {
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN {
            break;
        }
        let body_start = pos + 8;
        let Some(payload) = bytes.get(body_start..body_start + len as usize) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        records.push(payload.to_vec());
        pos = body_start + len as usize;
    }
    Ok(Replay {
        records,
        valid_len: pos as u64,
        torn_bytes: bytes.len() as u64 - pos as u64,
    })
}

/// An append handle to a record file, truncated to its valid prefix at
/// open time.
pub struct RecordWriter {
    file: File,
    path: PathBuf,
}

impl RecordWriter {
    /// Opens `path` for appending, first replaying it and truncating
    /// any torn tail. Returns the writer together with the replay.
    pub fn open(path: &Path) -> io::Result<(RecordWriter, Replay)> {
        let replayed = replay(path)?;
        // Never truncate on open: the valid prefix must survive; only
        // the torn tail (if any) is cut below via set_len.
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        if replayed.torn_bytes > 0 {
            file.set_len(replayed.valid_len)?;
        }
        let mut writer = RecordWriter {
            file,
            path: path.to_path_buf(),
        };
        // Position at the logical end (set_len does not move the cursor).
        writer.file.seek_end()?;
        Ok((writer, replayed))
    }

    /// Appends one framed record. Buffered by the OS; call [`sync`] to
    /// force it to stable storage.
    ///
    /// [`sync`]: RecordWriter::sync
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)
    }

    /// Appends one record and fsyncs the file.
    pub fn append_sync(&mut self, payload: &[u8]) -> io::Result<()> {
        self.append(payload)?;
        self.sync()
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// The path this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

trait SeekEnd {
    fn seek_end(&mut self) -> io::Result<()>;
}

impl SeekEnd for File {
    fn seek_end(&mut self) -> io::Result<()> {
        use std::io::Seek;
        self.seek(io::SeekFrom::End(0)).map(|_| ())
    }
}

/// Writes `bytes` to `path` atomically: a temporary sibling is written
/// and fsynced, renamed over the target, and the directory is fsynced
/// so the rename itself is durable. Readers see the old contents or the
/// new, never a mix.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_data();
    }
    Ok(())
}

/// Reads a file written by [`write_atomic`]; a missing file is `None`.
pub fn read_atomic(path: &Path) -> io::Result<Option<Vec<u8>>> {
    match std::fs::read(path) {
        Ok(b) => Ok(Some(b)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// A cursor over an encoded record payload, for the journal and spec
/// codecs. All integers are little-endian; byte strings are u32
/// length-prefixed.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wraps a payload.
    pub fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let out = self.bytes.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a u32 length-prefixed byte string.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a u32 length-prefixed UTF-8 string (lossy on bad bytes —
    /// the journal only ever writes valid UTF-8, but replay must not
    /// panic on corruption).
    pub fn string(&mut self) -> Option<String> {
        self.bytes()
            .map(|b| String::from_utf8_lossy(b).into_owned())
    }

    /// Whether every byte has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Appends a u32 length-prefixed byte string to `out`.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::temp_dir;

    #[test]
    fn round_trips_records() {
        let dir = temp_dir("record-roundtrip");
        let path = dir.join("log");
        {
            let (mut w, rep) = RecordWriter::open(&path).unwrap();
            assert!(rep.records.is_empty());
            w.append(b"alpha").unwrap();
            w.append(b"").unwrap();
            w.append_sync(b"beta").unwrap();
        }
        let rep = replay(&path).unwrap();
        assert_eq!(
            rep.records,
            vec![b"alpha".to_vec(), vec![], b"beta".to_vec()]
        );
        assert_eq!(rep.torn_bytes, 0);
    }

    #[test]
    fn torn_tail_is_truncated_on_reopen() {
        let dir = temp_dir("record-torn");
        let path = dir.join("log");
        {
            let (mut w, _) = RecordWriter::open(&path).unwrap();
            w.append_sync(b"keep me").unwrap();
        }
        // Simulate a crash mid-append: a partial header.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[9, 0, 0]).unwrap();
        }
        let (mut w, rep) = RecordWriter::open(&path).unwrap();
        assert_eq!(rep.records, vec![b"keep me".to_vec()]);
        assert_eq!(rep.torn_bytes, 3);
        w.append_sync(b"after recovery").unwrap();
        let rep = replay(&path).unwrap();
        assert_eq!(
            rep.records,
            vec![b"keep me".to_vec(), b"after recovery".to_vec()]
        );
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let dir = temp_dir("record-crc");
        let path = dir.join("log");
        {
            let (mut w, _) = RecordWriter::open(&path).unwrap();
            w.append(b"first").unwrap();
            w.append_sync(b"second").unwrap();
        }
        // Flip one payload byte of the second record.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let rep = replay(&path).unwrap();
        assert_eq!(rep.records, vec![b"first".to_vec()]);
        assert!(rep.torn_bytes > 0);
    }

    #[test]
    fn atomic_write_round_trips() {
        let dir = temp_dir("record-atomic");
        let path = dir.join("state.bin");
        assert_eq!(read_atomic(&path).unwrap(), None);
        write_atomic(&path, b"v1").unwrap();
        assert_eq!(read_atomic(&path).unwrap(), Some(b"v1".to_vec()));
        write_atomic(&path, b"v2-longer").unwrap();
        assert_eq!(read_atomic(&path).unwrap(), Some(b"v2-longer".to_vec()));
    }

    #[test]
    fn cursor_codec_round_trips() {
        let mut buf = Vec::new();
        buf.push(7u8);
        buf.extend_from_slice(&42u32.to_le_bytes());
        buf.extend_from_slice(&7_000_000_000u64.to_le_bytes());
        put_bytes(&mut buf, b"payload");
        let mut c = Cursor::new(&buf);
        assert_eq!(c.u8(), Some(7));
        assert_eq!(c.u32(), Some(42));
        assert_eq!(c.u64(), Some(7_000_000_000));
        assert_eq!(c.bytes(), Some(&b"payload"[..]));
        assert!(c.at_end());
        assert_eq!(c.u8(), None);
    }
}
