//! The homogeneous (degree-blind) SIR baseline.
//!
//! Collapses the network to a single effective class with contact rate
//! `β` — exactly what the paper criticizes existing work for doing. The
//! ablation benchmark compares its predictions against the
//! degree-resolved model on the same aggregate quantities.

use rumor_core::control::ControlSchedule;
use rumor_ode::system::OdeSystem;

/// The homogeneous SIR rumor model with countermeasures:
///
/// ```text
/// dS/dt = α − β S I − ε1(t) S
/// dI/dt = β S I − ε2(t) I
/// dR/dt = ε1(t) S + ε2(t) I − α
/// ```
///
/// (the inflow is recycled from `R` as in the heterogeneous model's
/// conserving convention). State layout: `[S, I, R]`.
#[derive(Debug, Clone)]
pub struct HomogeneousSir<C> {
    /// Inflow rate of newly susceptible users.
    pub alpha: f64,
    /// Effective contact/acceptance rate.
    pub beta: f64,
    /// Countermeasure schedule.
    pub control: C,
}

impl<C: ControlSchedule> HomogeneousSir<C> {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `alpha < 0` or `beta < 0` (configuration error).
    pub fn new(alpha: f64, beta: f64, control: C) -> Self {
        assert!(alpha >= 0.0 && beta >= 0.0, "rates must be non-negative");
        HomogeneousSir {
            alpha,
            beta,
            control,
        }
    }

    /// The homogeneous threshold analogue `r0 = α β / (ε1 ε2)` (set
    /// `⟨k⟩`-scaled `β` to compare with the heterogeneous threshold).
    pub fn r0(&self, eps1: f64, eps2: f64) -> f64 {
        self.alpha * self.beta / (eps1 * eps2)
    }
}

impl<C: ControlSchedule> OdeSystem for HomogeneousSir<C> {
    fn dim(&self) -> usize {
        3
    }

    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        let (s, i) = (y[0], y[1]);
        let eps1 = self.control.eps1(t);
        let eps2 = self.control.eps2(t);
        let force = self.beta * s * i;
        dydt[0] = self.alpha - force - eps1 * s;
        dydt[1] = force - eps2 * i;
        dydt[2] = eps1 * s + eps2 * i - self.alpha;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::control::ConstantControl;
    use rumor_ode::integrator::Adaptive;

    #[test]
    fn mass_conserved() {
        let m = HomogeneousSir::new(0.01, 0.5, ConstantControl::new(0.1, 0.05));
        let sol = Adaptive::new()
            .integrate(&m, 0.0, &[0.9, 0.1, 0.0], 50.0)
            .unwrap();
        let y = sol.last_state();
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-7);
    }

    #[test]
    fn strong_blocking_extinguishes() {
        let m = HomogeneousSir::new(0.01, 0.3, ConstantControl::new(0.2, 0.5));
        assert!(m.r0(0.2, 0.5) < 1.0);
        let sol = Adaptive::new()
            .integrate(&m, 0.0, &[0.9, 0.1, 0.0], 200.0)
            .unwrap();
        assert!(sol.last_state()[1] < 1e-4, "I = {}", sol.last_state()[1]);
    }

    #[test]
    fn weak_countermeasures_sustain_rumor() {
        let m = HomogeneousSir::new(0.05, 2.0, ConstantControl::new(0.05, 0.02));
        assert!(m.r0(0.05, 0.02) > 1.0);
        let sol = Adaptive::new()
            .integrate(&m, 0.0, &[0.9, 0.1, 0.0], 500.0)
            .unwrap();
        assert!(sol.last_state()[1] > 1e-3, "I = {}", sol.last_state()[1]);
    }

    #[test]
    fn no_infection_without_contact() {
        let m = HomogeneousSir::new(0.0, 0.0, ConstantControl::none());
        let mut d = [0.0; 3];
        m.rhs(0.0, &[0.9, 0.1, 0.0], &mut d);
        assert_eq!(d, [0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_panics() {
        let _ = HomogeneousSir::new(-0.1, 0.5, ConstantControl::none());
    }
}
