//! The Maki–Thompson rumor model (1973) — the "MK model" of the paper's
//! Section III.
//!
//! Differs from Daley–Kendall in the stifling mechanism: when a spreader
//! contacts another spreader, only the *initiating* spreader stifles, so
//! the pairwise stifling term loses its factor of 2 relative to DK (in
//! mean field the `Y²` coefficient halves):
//!
//! ```text
//! dX/dt = −k β X Y
//! dY/dt =  k β X Y − k γ Y (Y + Z)      (initiator-only stifling)
//! dZ/dt =  k γ Y (Y + Z)
//! ```
//!
//! In the mean-field limit the DK and MT equations coincide up to the
//! stifling coefficient; we expose that coefficient so both variants are
//! distinguishable and testable.

use rumor_ode::system::OdeSystem;

/// The mean-field Maki–Thompson system. State layout: `[X, Y, Z]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MakiThompson {
    /// Contact rate `k`.
    pub contact_rate: f64,
    /// Transmission probability on ignorant–spreader contact.
    pub beta: f64,
    /// Stifling probability; applied once per contact (initiator only),
    /// which in mean field halves the effective pair-stifling relative
    /// to Daley–Kendall.
    pub gamma: f64,
}

impl MakiThompson {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if any rate is negative (configuration error).
    pub fn new(contact_rate: f64, beta: f64, gamma: f64) -> Self {
        assert!(
            contact_rate >= 0.0 && beta >= 0.0 && gamma >= 0.0,
            "rates must be non-negative"
        );
        MakiThompson {
            contact_rate,
            beta,
            gamma,
        }
    }
}

impl OdeSystem for MakiThompson {
    fn dim(&self) -> usize {
        3
    }

    fn rhs(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
        let (x, yy, z) = (y[0], y[1], y[2]);
        let k = self.contact_rate;
        let spread = k * self.beta * x * yy;
        // Initiator-only stifling: spreader-spreader pairs stifle one
        // member, spreader-stifler contacts stifle the spreader.
        let stifle = k * self.gamma * yy * (0.5 * yy + z);
        dydt[0] = -spread;
        dydt[1] = spread - stifle;
        dydt[2] = stifle;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dk::DaleyKendall;
    use rumor_ode::integrator::Adaptive;

    #[test]
    fn mass_conserved() {
        let m = MakiThompson::new(1.0, 1.0, 1.0);
        let sol = Adaptive::new()
            .integrate(&m, 0.0, &[0.95, 0.05, 0.0], 100.0)
            .unwrap();
        assert!((sol.last_state().iter().sum::<f64>() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn rumor_terminates() {
        let m = MakiThompson::new(1.0, 1.0, 1.0);
        let sol = Adaptive::new()
            .integrate(&m, 0.0, &[0.95, 0.05, 0.0], 500.0)
            .unwrap();
        assert!(sol.last_state()[1] < 1e-6);
    }

    #[test]
    fn weaker_stifling_spreads_further_than_dk() {
        // MT stifles less per contact, so fewer ignorants remain.
        let y0 = [0.99, 0.01, 0.0];
        let dk = DaleyKendall::new(1.0, 1.0, 1.0);
        let mt = MakiThompson::new(1.0, 1.0, 1.0);
        let xf_dk = Adaptive::new()
            .integrate(&dk, 0.0, &y0, 1000.0)
            .unwrap()
            .last_state()[0];
        let xf_mt = Adaptive::new()
            .integrate(&mt, 0.0, &y0, 1000.0)
            .unwrap()
            .last_state()[0];
        assert!(
            xf_mt < xf_dk,
            "mt final ignorants {xf_mt} should be below dk {xf_dk}"
        );
    }

    #[test]
    fn no_dynamics_without_spreaders() {
        let m = MakiThompson::new(1.0, 1.0, 1.0);
        let mut d = [0.0; 3];
        m.rhs(0.0, &[0.7, 0.0, 0.3], &mut d);
        assert_eq!(d, [0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_panics() {
        let _ = MakiThompson::new(1.0, 1.0, -1.0);
    }
}
