//! Heterogeneous SIS with nonlinear infectivity (Zhu–Fu–Chen 2012) —
//! the model family the paper borrows its saturating `ω(k)` from.
//!
//! Per degree class `i`:
//!
//! ```text
//! dI_i/dt = λ(k_i) (1 − I_i) Θ(t) − δ I_i
//! Θ(t)    = (1/⟨k⟩) Σ_j ω(k_j) P(k_j) I_j
//! ```
//!
//! Unlike SIR, recovered nodes return to susceptibility, so the model
//! has a genuine endemic steady state whenever the effective spreading
//! strength exceeds the recovery rate.

use rumor_core::params::ModelParams;
use rumor_ode::system::OdeSystem;

/// The heterogeneous SIS system. State layout: `[I_0..I_{n-1}]`
/// (susceptible densities are implicit as `1 − I_i`).
#[derive(Debug, Clone)]
pub struct HeterogeneousSis<'p> {
    params: &'p ModelParams,
    /// Recovery (curing) rate `δ`.
    pub delta: f64,
}

impl<'p> HeterogeneousSis<'p> {
    /// Creates the model, reusing the SIR parameter bundle for the
    /// degree partition, `λ(·)` and `ω(·)` (the SIR inflow `α` is
    /// ignored — SIS has no demography).
    ///
    /// # Panics
    ///
    /// Panics if `delta <= 0` (configuration error).
    pub fn new(params: &'p ModelParams, delta: f64) -> Self {
        assert!(delta > 0.0, "recovery rate must be positive");
        HeterogeneousSis { params, delta }
    }

    /// The SIS epidemic threshold: spreading sustains when
    /// `Σ λ_i ϕ_i / (⟨k⟩ δ) > 1` (linearization at `I = 0`).
    pub fn threshold(&self) -> f64 {
        self.params.lambda_phi_sum() / (self.params.mean_degree() * self.delta)
    }
}

impl OdeSystem for HeterogeneousSis<'_> {
    fn dim(&self) -> usize {
        self.params.n_classes()
    }

    fn rhs(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
        let n = self.params.n_classes();
        let lambda = self.params.lambda();
        let phi = self.params.phi();
        let theta: f64 =
            phi.iter().zip(y).map(|(p, i)| p * i).sum::<f64>() / self.params.mean_degree();
        for j in 0..n {
            dydt[j] = lambda[j] * (1.0 - y[j]) * theta - self.delta * y[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::functions::{AcceptanceRate, Infectivity};
    use rumor_net::degree::DegreeClasses;
    use rumor_ode::integrator::Adaptive;

    fn params(lambda0: f64) -> ModelParams {
        let classes = DegreeClasses::from_degrees(&[1, 1, 2, 2, 3, 6]).unwrap();
        ModelParams::builder(classes)
            .alpha(0.0)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap()
    }

    #[test]
    fn subthreshold_extinction() {
        let p = params(0.01);
        let m = HeterogeneousSis::new(&p, 0.5);
        assert!(m.threshold() < 1.0);
        let sol = Adaptive::new()
            .integrate(&m, 0.0, &[0.2; 4], 200.0)
            .unwrap();
        assert!(sol.last_state().iter().all(|&i| i < 1e-6));
    }

    #[test]
    fn suprathreshold_endemic_state() {
        let p = params(2.0);
        let m = HeterogeneousSis::new(&p, 0.05);
        assert!(m.threshold() > 1.0);
        let sol = Adaptive::new()
            .integrate(&m, 0.0, &[0.01; 4], 500.0)
            .unwrap();
        let y = sol.last_state();
        assert!(y.iter().all(|&i| i > 0.01), "endemic: {y:?}");
        // Steady state: derivative nearly zero.
        let mut d = vec![0.0; 4];
        m.rhs(0.0, y, &mut d);
        assert!(d.iter().all(|&v| v.abs() < 1e-6));
    }

    #[test]
    fn higher_degree_class_has_higher_prevalence() {
        let p = params(1.0);
        let m = HeterogeneousSis::new(&p, 0.1);
        let sol = Adaptive::new()
            .integrate(&m, 0.0, &[0.01; 4], 500.0)
            .unwrap();
        let y = sol.last_state();
        assert!(
            y[0] < y[1] && y[1] < y[2] && y[2] < y[3],
            "prevalence ordering {y:?}"
        );
    }

    #[test]
    fn densities_stay_in_unit_interval() {
        let p = params(5.0);
        let m = HeterogeneousSis::new(&p, 0.01);
        let sol = Adaptive::new()
            .integrate(&m, 0.0, &[0.99; 4], 100.0)
            .unwrap();
        for state in sol.states() {
            for &i in state {
                assert!((-1e-9..=1.0 + 1e-9).contains(&i));
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_delta_panics() {
        let p = params(1.0);
        let _ = HeterogeneousSis::new(&p, 0.0);
    }
}
