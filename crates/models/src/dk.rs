//! The Daley–Kendall rumor model (1965) — the lineage root the paper
//! cites as the "DK model".
//!
//! Population splits into ignorants `X`, spreaders `Y` and stiflers `Z`.
//! Spreading happens on ignorant–spreader contact; a spreader who meets
//! another spreader or a stifler stifles:
//!
//! ```text
//! dX/dt = −k β X Y
//! dY/dt =  k β X Y − k γ Y (Y + Z)
//! dZ/dt =  k γ Y (Y + Z)
//! ```
//!
//! with contact rate `k`, transmission probability `β`, stifling
//! probability `γ`. Densities satisfy `X + Y + Z = 1`.

use rumor_ode::system::OdeSystem;

/// The mean-field Daley–Kendall system. State layout: `[X, Y, Z]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DaleyKendall {
    /// Contact rate `k`.
    pub contact_rate: f64,
    /// Transmission probability `β` on ignorant–spreader contact.
    pub beta: f64,
    /// Stifling probability `γ` on spreader–(spreader|stifler) contact.
    pub gamma: f64,
}

impl DaleyKendall {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if any rate is negative (configuration error).
    pub fn new(contact_rate: f64, beta: f64, gamma: f64) -> Self {
        assert!(
            contact_rate >= 0.0 && beta >= 0.0 && gamma >= 0.0,
            "rates must be non-negative"
        );
        DaleyKendall {
            contact_rate,
            beta,
            gamma,
        }
    }

    /// The classic final-size transcendental relation predicts that, for
    /// `β = γ`, roughly 20.3% of the population never hears the rumor.
    /// Exposed for tests and the ablation bench.
    pub fn classic_final_ignorant() -> f64 {
        // Solution of x = exp(-2(1-x)) in (0, 1).
        0.203_187_869_979_980_66
    }
}

impl OdeSystem for DaleyKendall {
    fn dim(&self) -> usize {
        3
    }

    fn rhs(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
        let (x, yy, z) = (y[0], y[1], y[2]);
        let k = self.contact_rate;
        let spread = k * self.beta * x * yy;
        let stifle = k * self.gamma * yy * (yy + z);
        dydt[0] = -spread;
        dydt[1] = spread - stifle;
        dydt[2] = stifle;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_ode::integrator::Adaptive;

    #[test]
    fn mass_conserved() {
        let m = DaleyKendall::new(1.0, 1.0, 1.0);
        let sol = Adaptive::new()
            .integrate(&m, 0.0, &[0.99, 0.01, 0.0], 100.0)
            .unwrap();
        assert!((sol.last_state().iter().sum::<f64>() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn rumor_dies_out_with_stiflers_remaining() {
        let m = DaleyKendall::new(1.0, 1.0, 1.0);
        let sol = Adaptive::new()
            .integrate(&m, 0.0, &[0.99, 0.01, 0.0], 200.0)
            .unwrap();
        let y = sol.last_state();
        assert!(y[1] < 1e-6, "spreaders must vanish, got {}", y[1]);
        assert!(y[2] > 0.5, "most should have heard and stifled");
    }

    #[test]
    fn classic_final_size_fraction() {
        // ~20.3% never hear the rumor in the classic parameterization.
        let m = DaleyKendall::new(1.0, 1.0, 1.0);
        let sol = Adaptive::new()
            .integrate(&m, 0.0, &[1.0 - 1e-5, 1e-5, 0.0], 2000.0)
            .unwrap();
        let x_final = sol.last_state()[0];
        assert!(
            (x_final - DaleyKendall::classic_final_ignorant()).abs() < 0.01,
            "final ignorant fraction {x_final}"
        );
    }

    #[test]
    fn no_dynamics_without_spreaders() {
        let m = DaleyKendall::new(1.0, 1.0, 1.0);
        let mut d = [0.0; 3];
        m.rhs(0.0, &[1.0, 0.0, 0.0], &mut d);
        assert_eq!(d, [0.0, 0.0, 0.0]);
    }

    #[test]
    fn ignorants_monotone_decreasing() {
        let m = DaleyKendall::new(2.0, 0.8, 0.5);
        let sol = Adaptive::new()
            .integrate(&m, 0.0, &[0.9, 0.1, 0.0], 50.0)
            .unwrap();
        let xs = sol.component(0);
        for w in xs.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_panics() {
        let _ = DaleyKendall::new(1.0, -0.5, 1.0);
    }
}
