//! Degree-dependent tie-strength variant of the paper model.
//!
//! Onnela et al.'s weighted-network observation — high-degree hubs
//! spread over *weaker* ties — enters the mean-field model as a
//! multiplicative modulation of the acceptance rate:
//! `λ_eff(k) = λ(k)·k^(−β)`, with `β ≥ 0` the tie-strength exponent.
//! At `β = 0` the modulation is exactly `1.0` for every class
//! (`k^0 = 1` bitwise in IEEE 754), so the variant degrades to the
//! paper model **bit for bit** — pinned in the tests below.
//!
//! Structurally this is still a 3-compartment S/I/R system with the
//! paper's two control channels, so the variant is simply a
//! [`PaperSir`] constructor: everything downstream (simulation,
//! multi-control FBSM, serve handlers) works unchanged.

use rumor_compartments::paper::PaperSir;
use rumor_compartments::CoreError;
use rumor_core::params::ModelParams;

type Result<T> = std::result::Result<T, CoreError>;

/// Builds the tie-strength variant: the paper model with acceptance
/// rates modulated by `k^(−beta)`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for a negative or non-finite
/// `beta`, and propagates [`PaperSir::from_parts`] validation.
pub fn tie_strength_model(params: &ModelParams, beta: f64, c1: f64, c2: f64) -> Result<PaperSir> {
    if !(beta >= 0.0) || !beta.is_finite() {
        return Err(CoreError::InvalidParameter {
            name: "beta",
            message: format!("tie-strength exponent must be non-negative and finite, got {beta}"),
        });
    }
    let lambda_eff: Vec<f64> = params
        .lambda()
        .iter()
        .zip(params.classes().degrees())
        .map(|(&l, &k)| l * (k as f64).powf(-beta))
        .collect();
    PaperSir::from_parts(
        lambda_eff,
        params.theta_weights().to_vec(),
        params.alpha(),
        c1,
        c2,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_compartments::model::CompartmentModel;
    use rumor_core::functions::{AcceptanceRate, Infectivity};
    use rumor_net::degree::DegreeClasses;

    fn params() -> ModelParams {
        let classes = DegreeClasses::from_degrees(&[1, 2, 2, 3, 6, 9]).unwrap();
        ModelParams::builder(classes)
            .alpha(0.002)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.02 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap()
    }

    #[test]
    fn beta_zero_is_bit_identical_to_the_paper_model() {
        let p = params();
        let paper = PaperSir::from_params(&p, 5.0, 10.0).unwrap();
        let tied = tie_strength_model(&p, 0.0, 5.0, 10.0).unwrap();
        for (a, b) in paper.lambda().iter().zip(tied.lambda()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let n = p.n_classes();
        let mut y = vec![0.0; 3 * n];
        for j in 0..n {
            y[j] = 0.9;
            y[n + j] = 0.1;
        }
        let mut d_paper = vec![0.0; 3 * n];
        let mut d_tied = vec![0.0; 3 * n];
        paper.rhs(&y, &[0.1, 0.05], None, &mut d_paper);
        tied.rhs(&y, &[0.1, 0.05], None, &mut d_tied);
        for (a, b) in d_paper.iter().zip(&d_tied) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn positive_beta_weakens_hub_acceptance() {
        let p = params();
        let paper = PaperSir::from_params(&p, 5.0, 10.0).unwrap();
        let tied = tie_strength_model(&p, 0.7, 5.0, 10.0).unwrap();
        // Every class with k > 1 is weakened; the modulation grows with
        // degree.
        let degrees = p.classes().degrees();
        for (j, (&l_paper, &l_tied)) in paper.lambda().iter().zip(tied.lambda()).enumerate() {
            if degrees[j] > 1 {
                assert!(l_tied < l_paper, "class {j} not weakened");
            } else {
                assert!((l_tied - l_paper).abs() < 1e-15);
            }
        }
        let ratios: Vec<f64> = paper
            .lambda()
            .iter()
            .zip(tied.lambda())
            .map(|(&a, &b)| b / a)
            .collect();
        for w in ratios.windows(2) {
            assert!(w[1] <= w[0] + 1e-15, "modulation must fall with degree");
        }
    }

    #[test]
    fn validation_rejects_bad_beta() {
        let p = params();
        assert!(tie_strength_model(&p, -0.1, 5.0, 10.0).is_err());
        assert!(tie_strength_model(&p, f64::NAN, 5.0, 10.0).is_err());
        assert!(tie_strength_model(&p, f64::INFINITY, 5.0, 10.0).is_err());
    }
}
