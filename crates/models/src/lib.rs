//! Baseline propagation models.
//!
//! The paper positions its heterogeneous SIR model against two
//! traditions: classical rumor models (Daley–Kendall 1965 and
//! Maki–Thompson 1973, its Section III lineage) and mean-field epidemic
//! models that ignore degree structure. This crate implements those
//! baselines so the ablation benchmarks can quantify what the
//! heterogeneity and the saturating infectivity actually buy:
//!
//! * [`homogeneous`] — the degree-blind SIR with the same countermeasure
//!   channels (the direct ablation of network heterogeneity).
//! * [`dk`] — the Daley–Kendall ignorant/spreader/stifler model.
//! * [`mt`] — the Maki–Thompson variant.
//! * [`sis`] — a heterogeneous SIS model with nonlinear infectivity
//!   (Zhu–Fu–Chen 2012), the reference the paper borrows its `ω(k)`
//!   family from.
//!
//! Beyond the baselines, two *scenario* models ride on the generalized
//! compartment abstraction of `rumor-compartments`:
//!
//! * [`two_rumor`] — competing two-rumor dynamics: a rumor and a truth
//!   campaign racing for shared susceptibles, with truth-seeding and
//!   blocking control channels for the multi-control FBSM.
//! * [`tie_strength`] — the paper model with degree-dependent
//!   tie-strength modulation `λ_eff(k) = λ(k)·k^(−β)`.
//!
//! The baseline models implement [`rumor_ode::system::OdeSystem`] and
//! integrate with any driver from `rumor-ode`; the scenario models
//! implement `rumor_compartments::model::CompartmentModel`.

// Deliberate idioms throughout this workspace:
// * `!(x > 0.0)` rejects NaN alongside non-positive values, which the
//   suggested `x <= 0.0` would silently accept;
// * index-based loops mirror the mathematical stencils of the numeric
//   kernels more directly than iterator chains.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod dk;
pub mod homogeneous;
pub mod mt;
pub mod sis;
pub mod tie_strength;
pub mod two_rumor;
