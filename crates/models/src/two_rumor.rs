//! Competing two-rumor dynamics: a rumor and a truth campaign racing
//! for the same susceptible population (after Zan's double-rumor
//! models and the truth/rumor competition line of arXiv:1709.01726),
//! lifted onto the degree-class mean-field machinery of the paper.
//!
//! Four compartments per degree class `[S, I1, I2, R]`:
//!
//! * `S` — ignorant of both stories,
//! * `I1` — spreading the rumor (contact force `λ1(k)·S·Θ1`),
//! * `I2` — spreading the truth (contact force `λ2(k)·S·Θ2`), which
//!   also *converts* rumor spreaders on contact (`μ·λ2(k)·I1·Θ2` — a
//!   debunked spreader switches sides),
//! * `R` — stifled, spreading nothing.
//!
//! Two countermeasure channels compete for budget in the optimal
//! control problem:
//!
//! * `u1` — **truth seeding**: directly recruits susceptibles into the
//!   truth campaign (`S → I2` at rate `u1`), cost `c1·u1²·ΣS_j²`;
//! * `u2` — **blocking**: silences rumor spreaders (`I1 → R` at rate
//!   `u2`), cost `c2·u2²·ΣI1_j²` — the paper's ε2 channel.
//!
//! The objective is `w·ΣI1(tf) + ∫(c1u1²ΣS² + c2u2²ΣI1²)dt`: suppress
//! the rumor, not the truth. Three costate bands `[ψ, φ, χ]` (the `R`
//! costate vanishes identically) drive the multi-control FBSM in
//! `rumor_control::multi`.
//!
//! All Θ reductions and adjoint couplings route through the partitioned
//! `rumor_core::kernels`, and the element-wise bodies shard over the
//! same `PART_CHUNK` grid as the S/I/R kernels, so trajectories and
//! sweeps are bit-identical at every inner-thread count.

use rumor_compartments::model::CompartmentModel;
use rumor_compartments::CoreError;
use rumor_core::functions::AcceptanceRate;
use rumor_core::kernels;
use rumor_core::params::ModelParams;
use rumor_par::InnerPool;

type Result<T> = std::result::Result<T, CoreError>;

/// The competing two-rumor model: 4 compartments `[S, I1, I2, R]`,
/// 2 controls `[u1 (truth seeding), u2 (blocking)]`, 3 costates
/// `[ψ, φ, χ]`.
#[derive(Debug, Clone)]
pub struct TwoRumorModel {
    /// Rumor acceptance `λ1(k_j)` per class.
    lambda1: Vec<f64>,
    /// Truth acceptance `λ2(k_j)` per class.
    lambda2: Vec<f64>,
    /// Fused `ϕ_j/⟨k⟩` table shared by both Θ reductions.
    theta_w: Vec<f64>,
    /// Churn rate (class-uniform inflow of fresh susceptibles).
    alpha: f64,
    /// Spontaneous rumor stifling rate `I1 → R`.
    gamma1: f64,
    /// Truth-campaign fatigue rate `I2 → R`.
    gamma2: f64,
    /// Debunking efficiency: rumor spreaders convert to truth spreaders
    /// at `μ·λ2(k)·I1·Θ2`.
    mu: f64,
    /// Cost weight of the truth-seeding channel.
    c1: f64,
    /// Cost weight of the blocking channel.
    c2: f64,
}

impl TwoRumorModel {
    /// Builds the model on the paper's calibrated degree-class tables:
    /// `λ1` and Θ weights from `params`, `λ2` from a linear-in-degree
    /// acceptance with scale `lambda20`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a non-finite or
    /// negative rate, non-positive cost weight, or `mu` outside
    /// `[0, 1]`.
    #[allow(clippy::too_many_arguments)]
    pub fn from_params(
        params: &ModelParams,
        lambda20: f64,
        gamma1: f64,
        gamma2: f64,
        mu: f64,
        c1: f64,
        c2: f64,
    ) -> Result<Self> {
        if !(lambda20 > 0.0) || !lambda20.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "lambda20",
                message: format!(
                    "truth acceptance scale must be positive and finite, got {lambda20}"
                ),
            });
        }
        let accept2 = AcceptanceRate::LinearInDegree { lambda0: lambda20 };
        let lambda2: Vec<f64> = params
            .classes()
            .degrees()
            .iter()
            .map(|&k| accept2.eval(k))
            .collect();
        Self::from_parts(
            params.lambda().to_vec(),
            lambda2,
            params.theta_weights().to_vec(),
            params.alpha(),
            gamma1,
            gamma2,
            mu,
            c1,
            c2,
        )
    }

    /// Builds a model from raw per-class tables.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] for empty or mismatched
    /// tables and [`CoreError::InvalidParameter`] for bad scalars.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        lambda1: Vec<f64>,
        lambda2: Vec<f64>,
        theta_w: Vec<f64>,
        alpha: f64,
        gamma1: f64,
        gamma2: f64,
        mu: f64,
        c1: f64,
        c2: f64,
    ) -> Result<Self> {
        if lambda1.is_empty() || lambda1.len() != theta_w.len() || lambda2.len() != theta_w.len() {
            return Err(CoreError::DimensionMismatch {
                expected: lambda1.len().max(1),
                found: lambda2.len().min(theta_w.len()),
            });
        }
        for (name, v) in [("alpha", alpha), ("gamma1", gamma1), ("gamma2", gamma2)] {
            if !(v >= 0.0) || !v.is_finite() {
                return Err(CoreError::InvalidParameter {
                    name: "rate",
                    message: format!("{name} must be non-negative and finite, got {v}"),
                });
            }
        }
        if !(0.0..=1.0).contains(&mu) || !mu.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "mu",
                message: format!("debunking efficiency must lie in [0, 1], got {mu}"),
            });
        }
        for (name, w) in [("c1", c1), ("c2", c2)] {
            if !(w > 0.0) || !w.is_finite() {
                return Err(CoreError::InvalidParameter {
                    name: "cost_weight",
                    message: format!("{name} must be positive and finite, got {w}"),
                });
            }
        }
        Ok(TwoRumorModel {
            lambda1,
            lambda2,
            theta_w,
            alpha,
            gamma1,
            gamma2,
            mu,
            c1,
            c2,
        })
    }

    /// The rumor acceptance table `λ1(k_j)`.
    pub fn lambda1(&self) -> &[f64] {
        &self.lambda1
    }

    /// The truth acceptance table `λ2(k_j)`.
    pub fn lambda2(&self) -> &[f64] {
        &self.lambda2
    }

    /// The two contact forces `(Θ1, Θ2)` at a flat state.
    pub fn thetas(&self, y: &[f64], pool: Option<&InnerPool>) -> (f64, f64) {
        let n = self.theta_w.len();
        let i1 = &y[n..2 * n];
        let i2 = &y[2 * n..3 * n];
        match pool {
            Some(pool) => (
                kernels::dot_pooled(pool, &self.theta_w, i1),
                kernels::dot_pooled(pool, &self.theta_w, i2),
            ),
            None => (
                kernels::dot_partitioned(&self.theta_w, i1),
                kernels::dot_partitioned(&self.theta_w, i2),
            ),
        }
    }

    /// Element-wise forward stencil on one class range `[lo, hi)`. The
    /// pooled path scatters this same function over `PART_CHUNK` chunks,
    /// so sharding never changes per-element arithmetic.
    #[allow(clippy::too_many_arguments)]
    fn rhs_chunk(
        &self,
        lo: usize,
        hi: usize,
        s: &[f64],
        i1: &[f64],
        i2: &[f64],
        theta1: f64,
        theta2: f64,
        u1: f64,
        u2: f64,
        ds: &mut [f64],
        di1: &mut [f64],
        di2: &mut [f64],
        dr: &mut [f64],
    ) {
        for j in lo..hi {
            let o = j - lo;
            let force1 = self.lambda1[j] * s[o] * theta1;
            let force2 = self.lambda2[j] * s[o] * theta2;
            let convert = self.mu * self.lambda2[j] * i1[o] * theta2;
            ds[o] = self.alpha - force1 - force2 - u1 * s[o];
            di1[o] = force1 - self.gamma1 * i1[o] - u2 * i1[o] - convert;
            di2[o] = force2 + u1 * s[o] + convert - self.gamma2 * i2[o];
            dr[o] = self.gamma1 * i1[o] + u2 * i1[o] + self.gamma2 * i2[o] - self.alpha;
        }
    }

    /// Element-wise adjoint stencil on one class range `[lo, hi)`.
    #[allow(clippy::too_many_arguments)]
    fn adjoint_chunk(
        &self,
        lo: usize,
        hi: usize,
        s: &[f64],
        i1: &[f64],
        psi: &[f64],
        phi: &[f64],
        chi: &[f64],
        theta1: f64,
        theta2: f64,
        coupling1: f64,
        coupling_a: f64,
        coupling_b: f64,
        c1u1sq2: f64,
        c2u2sq2: f64,
        u1: f64,
        u2: f64,
        dpsi: &mut [f64],
        dphi: &mut [f64],
        dchi: &mut [f64],
    ) {
        for j in lo..hi {
            let o = j - lo;
            let l1t1 = self.lambda1[j] * theta1;
            let l2t2 = self.lambda2[j] * theta2;
            dpsi[o] = -c1u1sq2 * s[o] + psi[o] * (l1t1 + l2t2 + u1)
                - phi[o] * l1t1
                - chi[o] * (l2t2 + u1);
            dphi[o] = -c2u2sq2 * i1[o]
                + self.theta_w[j] * coupling1
                + phi[o] * (self.gamma1 + u2 + self.mu * l2t2)
                - chi[o] * self.mu * l2t2;
            dchi[o] = self.theta_w[j] * (coupling_a + self.mu * coupling_b) + chi[o] * self.gamma2;
        }
    }
}

impl CompartmentModel for TwoRumorModel {
    fn n_classes(&self) -> usize {
        self.theta_w.len()
    }

    fn n_compartments(&self) -> usize {
        4
    }

    fn n_controls(&self) -> usize {
        2
    }

    fn n_costates(&self) -> usize {
        3
    }

    fn compartment_names(&self) -> &'static [&'static str] {
        &["s", "i1", "i2", "r"]
    }

    fn control_names(&self) -> &'static [&'static str] {
        &["truth", "blocking"]
    }

    fn rhs(&self, y: &[f64], u: &[f64], pool: Option<&InnerPool>, dydt: &mut [f64]) {
        let n = self.theta_w.len();
        let (u1, u2) = (u[0], u[1]);
        let (theta1, theta2) = self.thetas(y, pool);
        let (s, rest) = y.split_at(n);
        let (i1, i2) = (&rest[..n], &rest[n..2 * n]);
        let (ds, rest) = dydt.split_at_mut(n);
        let (di1, rest) = rest.split_at_mut(n);
        let (di2, dr) = rest.split_at_mut(n);
        let chunked = match pool {
            Some(pool) if pool.threads() > 1 && kernels::partition_count(n) > 1 => Some(pool),
            _ => None,
        };
        match chunked {
            Some(pool) => {
                #[allow(clippy::type_complexity)]
                let chunks: Vec<(&mut [f64], &mut [f64], &mut [f64], &mut [f64])> = ds
                    .chunks_mut(kernels::PART_CHUNK)
                    .zip(di1.chunks_mut(kernels::PART_CHUNK))
                    .zip(di2.chunks_mut(kernels::PART_CHUNK))
                    .zip(dr.chunks_mut(kernels::PART_CHUNK))
                    .map(|(((a, b), c), d)| (a, b, c, d))
                    .collect();
                pool.scatter(chunks, |c, (ds_c, di1_c, di2_c, dr_c)| {
                    let (lo, hi) = rumor_par::chunk_bounds(n, kernels::PART_CHUNK, c);
                    self.rhs_chunk(
                        lo,
                        hi,
                        &s[lo..hi],
                        &i1[lo..hi],
                        &i2[lo..hi],
                        theta1,
                        theta2,
                        u1,
                        u2,
                        ds_c,
                        di1_c,
                        di2_c,
                        dr_c,
                    );
                });
            }
            None => {
                self.rhs_chunk(0, n, s, i1, i2, theta1, theta2, u1, u2, ds, di1, di2, dr);
            }
        }
    }

    fn adjoint_rhs(
        &self,
        state: &[f64],
        p: &[f64],
        u: &[f64],
        pool: Option<&InnerPool>,
        dpdt: &mut [f64],
    ) {
        let n = self.theta_w.len();
        let (u1, u2) = (u[0], u[1]);
        let (theta1, theta2) = self.thetas(state, pool);
        let s = &state[..n];
        let i1 = &state[n..2 * n];
        let (psi, rest) = p.split_at(n);
        let (phi, chi) = (&rest[..n], &rest[n..2 * n]);
        // Cross-Θ couplings: the rumor's debunked spreaders and both
        // stories' shared susceptibles tie every class to every other.
        let (coupling1, coupling_a, coupling_b) = match pool {
            Some(pool) => (
                kernels::coupling_sum_pooled(pool, psi, phi, &self.lambda1, s),
                kernels::coupling_sum_pooled(pool, psi, chi, &self.lambda2, s),
                kernels::coupling_sum_pooled(pool, phi, chi, &self.lambda2, i1),
            ),
            None => (
                kernels::coupling_sum_partitioned(psi, phi, &self.lambda1, s),
                kernels::coupling_sum_partitioned(psi, chi, &self.lambda2, s),
                kernels::coupling_sum_partitioned(phi, chi, &self.lambda2, i1),
            ),
        };
        let c1u1sq2 = 2.0 * self.c1 * u1 * u1;
        let c2u2sq2 = 2.0 * self.c2 * u2 * u2;
        let (dpsi, rest) = dpdt.split_at_mut(n);
        let (dphi, dchi) = rest.split_at_mut(n);
        let chunked = match pool {
            Some(pool) if pool.threads() > 1 && kernels::partition_count(n) > 1 => Some(pool),
            _ => None,
        };
        match chunked {
            Some(pool) => {
                let chunks: Vec<(&mut [f64], &mut [f64], &mut [f64])> = dpsi
                    .chunks_mut(kernels::PART_CHUNK)
                    .zip(dphi.chunks_mut(kernels::PART_CHUNK))
                    .zip(dchi.chunks_mut(kernels::PART_CHUNK))
                    .map(|((a, b), c)| (a, b, c))
                    .collect();
                pool.scatter(chunks, |c, (dpsi_c, dphi_c, dchi_c)| {
                    let (lo, hi) = rumor_par::chunk_bounds(n, kernels::PART_CHUNK, c);
                    self.adjoint_chunk(
                        lo,
                        hi,
                        &s[lo..hi],
                        &i1[lo..hi],
                        &psi[lo..hi],
                        &phi[lo..hi],
                        &chi[lo..hi],
                        theta1,
                        theta2,
                        coupling1,
                        coupling_a,
                        coupling_b,
                        c1u1sq2,
                        c2u2sq2,
                        u1,
                        u2,
                        dpsi_c,
                        dphi_c,
                        dchi_c,
                    );
                });
            }
            None => {
                self.adjoint_chunk(
                    0, n, s, i1, psi, phi, chi, theta1, theta2, coupling1, coupling_a, coupling_b,
                    c1u1sq2, c2u2sq2, u1, u2, dpsi, dphi, dchi,
                );
            }
        }
    }

    fn terminal_condition(&self, weight: f64, out: &mut [f64]) {
        let n = self.theta_w.len();
        // Only the rumor band enters the terminal objective: ψ = χ = 0,
        // φ = w.
        for v in out[..n].iter_mut() {
            *v = 0.0;
        }
        for v in out[n..2 * n].iter_mut() {
            *v = weight;
        }
        for v in out[2 * n..3 * n].iter_mut() {
            *v = 0.0;
        }
    }

    fn stationary_controls(&self, state: &[f64], p: &[f64], out: &mut [f64]) {
        let n = self.theta_w.len();
        let (s, i1) = (&state[..n], &state[n..2 * n]);
        let (psi, phi, chi) = (&p[..n], &p[n..2 * n], &p[2 * n..3 * n]);
        let s2 = kernels::dot(s, s);
        let i1sq = kernels::dot(i1, i1);
        // ∂H/∂u1 = 0: u1 = Σ(ψ−χ)S / (2 c1 ΣS²).
        out[0] = if s2 > 0.0 {
            (kernels::dot(psi, s) - kernels::dot(chi, s)) / (2.0 * self.c1 * s2)
        } else {
            0.0
        };
        // ∂H/∂u2 = 0: u2 = ΣφI1 / (2 c2 ΣI1²).
        out[1] = if i1sq > 0.0 {
            kernels::dot(phi, i1) / (2.0 * self.c2 * i1sq)
        } else {
            0.0
        };
    }

    fn running_cost(&self, state: &[f64], u: &[f64], out: &mut [f64]) {
        let n = self.theta_w.len();
        let s2: f64 = state[..n].iter().map(|x| x * x).sum();
        let i1sq: f64 = state[n..2 * n].iter().map(|x| x * x).sum();
        out[0] = self.c1 * u[0] * u[0] * s2;
        out[1] = self.c2 * u[1] * u[1] * i1sq;
    }

    fn terminal_objective(&self, state: &[f64]) -> f64 {
        let n = self.theta_w.len();
        state[n..2 * n].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_compartments::schedule::ConstantMultiControl;
    use rumor_compartments::simulate::{simulate_compartments, CompartmentSimOptions};
    use std::sync::Arc;

    fn model(n: usize) -> TwoRumorModel {
        let lambda1: Vec<f64> = (0..n).map(|j| 0.02 * (1 + j % 40) as f64).collect();
        let lambda2: Vec<f64> = (0..n).map(|j| 0.03 * (1 + j % 40) as f64).collect();
        let theta_w: Vec<f64> = (0..n).map(|j| 0.01 + 0.002 * (j % 7) as f64).collect();
        TwoRumorModel::from_parts(lambda1, lambda2, theta_w, 0.002, 0.05, 0.08, 0.5, 5.0, 10.0)
            .unwrap()
    }

    fn y0(n: usize) -> Vec<f64> {
        let mut y = vec![0.0; 4 * n];
        for j in 0..n {
            y[j] = 0.88;
            y[n + j] = 0.1;
            y[2 * n + j] = 0.02;
        }
        y
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        let ok = model(3);
        assert_eq!(ok.n_compartments(), 4);
        assert_eq!(ok.n_costates(), 3);
        assert_eq!(ok.state_dim(), 12);
        assert_eq!(ok.costate_dim(), 9);
        assert!(
            TwoRumorModel::from_parts(vec![], vec![], vec![], 0.0, 0.0, 0.0, 0.5, 1.0, 1.0)
                .is_err()
        );
        assert!(TwoRumorModel::from_parts(
            vec![0.1],
            vec![0.1, 0.2],
            vec![0.1],
            0.0,
            0.0,
            0.0,
            0.5,
            1.0,
            1.0
        )
        .is_err());
        for (alpha, gamma1, gamma2, mu, c1, c2) in [
            (-0.1, 0.0, 0.0, 0.5, 1.0, 1.0),
            (0.0, f64::NAN, 0.0, 0.5, 1.0, 1.0),
            (0.0, 0.0, -1.0, 0.5, 1.0, 1.0),
            (0.0, 0.0, 0.0, 1.5, 1.0, 1.0),
            (0.0, 0.0, 0.0, 0.5, 0.0, 1.0),
            (0.0, 0.0, 0.0, 0.5, 1.0, -2.0),
        ] {
            assert!(TwoRumorModel::from_parts(
                vec![0.1],
                vec![0.1],
                vec![0.1],
                alpha,
                gamma1,
                gamma2,
                mu,
                c1,
                c2
            )
            .is_err());
        }
    }

    #[test]
    fn rhs_conserves_mass_per_class() {
        let m = model(6);
        let y = y0(6);
        let mut d = vec![0.0; 24];
        m.rhs(&y, &[0.1, 0.2], None, &mut d);
        for j in 0..6 {
            let total = d[j] + d[6 + j] + d[12 + j] + d[18 + j];
            assert!(total.abs() < 1e-15, "class {j}: {total}");
        }
    }

    #[test]
    fn truth_campaign_suppresses_the_rumor() {
        // With an aggressive truth campaign the rumor's final prevalence
        // drops relative to the uncontrolled run.
        let m = model(6);
        let opts = CompartmentSimOptions {
            n_out: 41,
            ..Default::default()
        };
        let free =
            simulate_compartments(&m, ConstantMultiControl::none(2), &y0(6), 30.0, &opts, None)
                .unwrap();
        let seeded = simulate_compartments(
            &m,
            ConstantMultiControl::new(vec![0.3, 0.0]),
            &y0(6),
            30.0,
            &opts,
            None,
        )
        .unwrap();
        let free_i1: f64 = free.total_series(1).last().copied().unwrap();
        let seeded_i1: f64 = seeded.total_series(1).last().copied().unwrap();
        assert!(
            seeded_i1 < free_i1,
            "truth seeding did not suppress the rumor: {seeded_i1} vs {free_i1}"
        );
        // Mass stays conserved along the trajectory.
        let last = free.last_state();
        for j in 0..6 {
            let mass = last[j] + last[6 + j] + last[12 + j] + last[18 + j];
            assert!((mass - 1.0).abs() < 1e-6, "class {j}: mass {mass}");
        }
    }

    #[test]
    fn pooled_rhs_and_adjoint_are_bit_identical() {
        for n in [7usize, 264, 848] {
            let m = model(n);
            let y = y0(n);
            let mut p = vec![0.0; 3 * n];
            for j in 0..3 * n {
                p[j] = 0.1 + 0.001 * (j % 13) as f64;
            }
            let mut d_serial = vec![0.0; 4 * n];
            let mut a_serial = vec![0.0; 3 * n];
            m.rhs(&y, &[0.15, 0.07], None, &mut d_serial);
            m.adjoint_rhs(&y, &p, &[0.15, 0.07], None, &mut a_serial);
            for threads in [2usize, 4] {
                let pool = Arc::new(InnerPool::new(threads));
                let mut d_pooled = vec![0.0; 4 * n];
                let mut a_pooled = vec![0.0; 3 * n];
                m.rhs(&y, &[0.15, 0.07], Some(&pool), &mut d_pooled);
                m.adjoint_rhs(&y, &p, &[0.15, 0.07], Some(&pool), &mut a_pooled);
                for (a, b) in d_serial.iter().zip(&d_pooled) {
                    assert_eq!(a.to_bits(), b.to_bits(), "rhs n = {n}, threads = {threads}");
                }
                for (a, b) in a_serial.iter().zip(&a_pooled) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "adjoint n = {n}, threads = {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn stationary_controls_and_terminal_shape() {
        let m = model(2);
        let mut term = vec![f64::NAN; 6];
        m.terminal_condition(3.0, &mut term);
        assert_eq!(term, vec![0.0, 0.0, 3.0, 3.0, 0.0, 0.0]);
        let state = [0.5, 0.5, 0.2, 0.2, 0.1, 0.1, 0.2, 0.2];
        assert!((m.terminal_objective(&state) - 0.4).abs() < 1e-15);
        // Degenerate denominators fall back to zero.
        let zero_state = [0.0; 8];
        let p = [1.0; 6];
        let mut u = [f64::NAN; 2];
        m.stationary_controls(&zero_state, &p, &mut u);
        assert_eq!(u, [0.0, 0.0]);
    }
}
