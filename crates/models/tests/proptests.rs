//! Property-based tests of the baseline models.

use proptest::prelude::*;
use rumor_core::control::ConstantControl;
use rumor_core::functions::{AcceptanceRate, Infectivity};
use rumor_core::params::ModelParams;
use rumor_models::dk::DaleyKendall;
use rumor_models::homogeneous::HomogeneousSir;
use rumor_models::mt::MakiThompson;
use rumor_models::sis::HeterogeneousSis;
use rumor_net::degree::DegreeClasses;
use rumor_ode::integrator::Adaptive;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dk_and_mt_conserve_mass_and_terminate(
        k in 0.2..3.0_f64,
        beta in 0.2..1.0_f64,
        gamma in 0.2..1.0_f64,
        y0 in 0.005..0.2_f64,
    ) {
        let init = [1.0 - y0, y0, 0.0];
        for model_kind in 0..2 {
            let sol = if model_kind == 0 {
                Adaptive::new()
                    .integrate(&DaleyKendall::new(k, beta, gamma), 0.0, &init, 800.0)
                    .unwrap()
            } else {
                Adaptive::new()
                    .integrate(&MakiThompson::new(k, beta, gamma), 0.0, &init, 800.0)
                    .unwrap()
            };
            let y = sol.last_state();
            prop_assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-6);
            // Spreaders always die out in DK/MT (no reseeding).
            prop_assert!(y[1] < 1e-3, "spreaders {}", y[1]);
            // All compartments stay in [0, 1].
            for state in sol.states() {
                for &v in state {
                    prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v));
                }
            }
        }
    }

    #[test]
    fn mt_informs_at_least_as_many_as_dk(
        k in 0.5..2.0_f64,
        y0 in 0.005..0.05_f64,
    ) {
        // MT stifles less per contact, so its final ignorant fraction is
        // never above DK's (equal parameters).
        let init = [1.0 - y0, y0, 0.0];
        let dk = Adaptive::new()
            .integrate(&DaleyKendall::new(k, 1.0, 1.0), 0.0, &init, 1500.0)
            .unwrap();
        let mt = Adaptive::new()
            .integrate(&MakiThompson::new(k, 1.0, 1.0), 0.0, &init, 1500.0)
            .unwrap();
        prop_assert!(mt.last_state()[0] <= dk.last_state()[0] + 1e-6);
    }

    #[test]
    fn homogeneous_threshold_separates_outcomes(
        alpha in 0.005..0.05_f64,
        beta in 0.1..2.0_f64,
    ) {
        // Pick countermeasures on either side of r0 = αβ/(ε1ε2) = 1.
        let strong = (alpha * beta * 4.0).sqrt();
        let weak = (alpha * beta / 16.0).sqrt().max(1e-4);
        let sub = HomogeneousSir::new(alpha, beta, ConstantControl::new(strong, strong));
        prop_assert!(sub.r0(strong, strong) < 1.0);
        let sol = Adaptive::new().integrate(&sub, 0.0, &[0.9, 0.1, 0.0], 2000.0).unwrap();
        prop_assert!(sol.last_state()[1] < 1e-2, "subcritical I = {}", sol.last_state()[1]);

        let sup = HomogeneousSir::new(alpha, beta, ConstantControl::new(weak, weak));
        prop_assert!(sup.r0(weak, weak) > 1.0);
        let sol = Adaptive::new().integrate(&sup, 0.0, &[0.9, 0.1, 0.0], 2000.0).unwrap();
        prop_assert!(sol.last_state()[1] > 1e-4, "supercritical I = {}", sol.last_state()[1]);
    }

    #[test]
    fn sis_threshold_separates_extinction_from_endemicity(
        lambda0 in 0.005..2.0_f64,
    ) {
        let classes = DegreeClasses::from_degrees(&[1, 1, 2, 2, 3, 6]).unwrap();
        let p = ModelParams::builder(classes)
            .alpha(0.0)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap();
        let m = HeterogeneousSis::new(&p, 0.1);
        let sol = Adaptive::new()
            .integrate(&m, 0.0, &vec![0.05; p.n_classes()], 2000.0)
            .unwrap();
        let endemic = sol.last_state().iter().any(|&i| i > 1e-4);
        if m.threshold() < 0.9 {
            prop_assert!(!endemic, "should die below threshold {}", m.threshold());
        }
        if m.threshold() > 1.1 {
            prop_assert!(endemic, "should persist above threshold {}", m.threshold());
        }
    }
}
