//! Guarded integration: a stepper fallback chain with bounded retries.
//!
//! The plain [`Adaptive`] driver turns any
//! numerical trouble — a non-finite right-hand side, a step-size
//! underflow, an exhausted step budget — into a hard error, which is the
//! right default for a library but the wrong behavior for a production
//! sweep over thousands of parameter sets. [`Guarded`] instead treats
//! such failures as *recoverable segments*:
//!
//! 1. The primary driver (Dormand–Prince 5(4)) integrates as far as it
//!    can; every accepted step is retained.
//! 2. On failure, a **trouble window** past the last good state is
//!    crossed with a fallback chain: fixed-step RK4 with step-size
//!    backoff (halving), then implicit Euler for stiff segments.
//! 3. If every stepper fails, the window is optionally **quarantined**:
//!    the state is held constant across it (zero-order hold), the span
//!    is recorded, and integration resumes on the far side.
//! 4. The primary driver takes over again after each rescued window.
//!
//! Every engagement is logged in a [`RecoveryReport`], and the total
//! number of engagements is bounded by [`RecoveryPolicy::max_fallbacks`]
//! so a pathological system cannot spin forever.

use crate::integrator::{Adaptive, AdaptiveConfig, FixedStep};
use crate::solution::Solution;
use crate::steppers::{ImplicitEuler, Rk4};
use crate::system::OdeSystem;
use crate::{OdeError, Result};

/// Which link of the fallback chain handled (or failed to handle) a
/// troubled segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackStage {
    /// Fixed-step classic RK4 with step-size backoff.
    Rk4Backoff,
    /// Fixed-step implicit (backward) Euler, for stiff segments.
    ImplicitEuler,
    /// Zero-order hold across the window (last resort).
    Quarantine,
}

impl std::fmt::Display for FallbackStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FallbackStage::Rk4Backoff => write!(f, "rk4-backoff"),
            FallbackStage::ImplicitEuler => write!(f, "implicit-euler"),
            FallbackStage::Quarantine => write!(f, "quarantine"),
        }
    }
}

/// One fallback engagement: what failed, where, and what rescued it.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// Time of the primary driver's failure.
    pub t_fail: f64,
    /// The error the primary driver reported.
    pub failure: OdeError,
    /// The trouble window `(from, to)` the chain attempted to cross.
    pub window: (f64, f64),
    /// The stage that crossed the window, or `None` if the whole chain
    /// failed on this window (the run then ends incomplete).
    pub rescued_by: Option<FallbackStage>,
}

/// Structured account of everything the guard did during one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// One entry per fallback engagement, in time order.
    pub events: Vec<RecoveryEvent>,
    /// Spans crossed by zero-order hold; non-empty means parts of the
    /// trajectory are *extrapolated*, not integrated.
    pub quarantined: Vec<(f64, f64)>,
    /// Whether the run reached the requested final time.
    pub completed: bool,
}

impl RecoveryReport {
    /// `true` when the primary driver handled the whole run alone.
    pub fn is_clean(&self) -> bool {
        self.events.is_empty() && self.completed
    }

    /// `true` when any window had to be quarantined (the result is
    /// degraded: valid, but partially extrapolated).
    pub fn degraded(&self) -> bool {
        !self.quarantined.is_empty() || !self.completed
    }

    /// One-line human-readable summary for logs and CLI output.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return "clean run (no fallbacks engaged)".to_string();
        }
        let rescued = self
            .events
            .iter()
            .filter(|e| e.rescued_by.is_some())
            .count();
        format!(
            "{} fallback engagement(s), {} rescued, {} window(s) quarantined, completed: {}",
            self.events.len(),
            rescued,
            self.quarantined.len(),
            self.completed
        )
    }
}

/// Tuning knobs of the fallback chain.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Total fallback engagements allowed per run.
    pub max_fallbacks: usize,
    /// RK4 substeps used to cross a trouble window at backoff level 0.
    pub rk4_substeps: usize,
    /// Number of step-halving levels the RK4 stage tries.
    pub rk4_backoff_levels: usize,
    /// Implicit-Euler substeps used to cross a trouble window.
    pub implicit_substeps: usize,
    /// Trouble-window length as a fraction of the full span.
    pub window_fraction: f64,
    /// Whether the zero-order-hold quarantine stage is allowed.
    pub quarantine: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_fallbacks: 8,
            rk4_substeps: 64,
            rk4_backoff_levels: 3,
            implicit_substeps: 48,
            window_fraction: 0.04,
            quarantine: true,
        }
    }
}

impl RecoveryPolicy {
    /// Validates every field, mirroring [`AdaptiveConfig::validate`].
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        let bad =
            |field: &'static str, reason: String| Err(OdeError::InvalidConfig { field, reason });
        if self.max_fallbacks == 0 {
            return bad("max_fallbacks", "must be at least 1".into());
        }
        if self.rk4_substeps == 0 {
            return bad("rk4_substeps", "must be at least 1".into());
        }
        if self.implicit_substeps == 0 {
            return bad("implicit_substeps", "must be at least 1".into());
        }
        if !(self.window_fraction > 0.0 && self.window_fraction <= 0.5) {
            return bad(
                "window_fraction",
                format!("must lie in (0, 0.5], got {}", self.window_fraction),
            );
        }
        Ok(())
    }
}

/// The outcome of a guarded run: the stitched trajectory plus the
/// recovery report. The solution is always non-empty and ends at the
/// last time the guard could reach (equal to the requested final time
/// iff `report.completed`).
#[derive(Debug, Clone, PartialEq)]
pub struct GuardedRun {
    /// The stitched trajectory.
    pub solution: Solution,
    /// What the guard had to do to produce it.
    pub report: RecoveryReport,
}

/// Is this failure worth engaging the fallback chain for (as opposed to
/// a caller bug such as a dimension mismatch)?
fn recoverable(e: &OdeError) -> bool {
    matches!(
        e,
        OdeError::NonFiniteState { .. }
            | OdeError::StepSizeUnderflow { .. }
            | OdeError::TooManySteps { .. }
            | OdeError::NewtonFailed { .. }
            | OdeError::Numerics(_)
    )
}

/// Adaptive integration hardened by the fallback chain.
///
/// # Example
///
/// ```
/// use rumor_ode::fault::{FaultSchedule, FaultyRhs};
/// use rumor_ode::recovery::Guarded;
/// use rumor_ode::system::FnSystem;
///
/// # fn main() -> Result<(), rumor_ode::OdeError> {
/// let decay = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = -y[0]);
/// // Corrupt the RHS with a NaN window mid-run; the guard quarantines it.
/// let faulty = FaultyRhs::new(&decay, FaultSchedule::new().nan_at(0.5, 0.05));
/// let run = Guarded::new().run(&faulty, 0.0, &[1.0], 2.0)?;
/// assert!(run.report.completed);
/// assert!(!run.report.events.is_empty());
/// assert!((run.solution.last_state()[0] - (-2.0_f64).exp()).abs() < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Guarded {
    config: AdaptiveConfig,
    policy: RecoveryPolicy,
}

impl Guarded {
    /// A guard with default tolerances and policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// A guard with explicit integrator tolerances and fallback policy.
    pub fn with_config(config: AdaptiveConfig, policy: RecoveryPolicy) -> Self {
        Guarded { config, policy }
    }

    /// The active integrator configuration.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// The active recovery policy.
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// Integrates `(t0, y0) → tf`, engaging the fallback chain as
    /// needed, and returns the trajectory with its [`RecoveryReport`].
    ///
    /// The returned run may be *incomplete* (`report.completed ==
    /// false`) when the retry budget is exhausted; use
    /// [`Guarded::integrate`] to turn that into a hard error instead.
    ///
    /// # Errors
    ///
    /// Only non-recoverable failures are returned as errors: invalid
    /// configuration or policy, and an invalid initial state.
    pub fn run(
        &mut self,
        sys: &(impl OdeSystem + ?Sized),
        t0: f64,
        y0: &[f64],
        tf: f64,
    ) -> Result<GuardedRun> {
        let mut sp = rumor_obs::span("ode.guarded");
        let result = self.run_inner(sys, t0, y0, tf);
        if let Ok(run) = &result {
            if sp.active() {
                sp.field("engagements", run.report.events.len());
                sp.field("quarantined", run.report.quarantined.len());
                sp.field("completed", run.report.completed);
            }
            rumor_obs::add("ode.fallback_engagements", run.report.events.len() as u64);
            rumor_obs::add(
                "ode.quarantined_windows",
                run.report.quarantined.len() as u64,
            );
        }
        result
    }

    fn run_inner(
        &mut self,
        sys: &(impl OdeSystem + ?Sized),
        t0: f64,
        y0: &[f64],
        tf: f64,
    ) -> Result<GuardedRun> {
        self.config.validate()?;
        self.policy.validate()?;

        let span = tf - t0;
        let mut solution = Solution::new();
        solution.push(t0, y0);
        let mut report = RecoveryReport::default();
        if span == 0.0 {
            report.completed = true;
            return Ok(GuardedRun { solution, report });
        }
        let dir = span.signum();
        let tiny = 1e-12 * span.abs().max(1.0);
        let base_window = span.abs() * self.policy.window_fraction;

        let mut t_c = t0;
        let mut y_c = y0.to_vec();
        let mut consecutive_stalls: u32 = 0;
        let mut last_fail_t = f64::NAN;

        while (tf - t_c) * dir > tiny {
            // Primary driver, recording every accepted step as it goes so
            // progress survives a mid-run failure.
            let mut checkpoint_t = t_c;
            let mut checkpoint_y = y_c.clone();
            let failure = {
                let mut recorder = |t: f64, y: &[f64]| {
                    solution.push(t, y);
                    checkpoint_t = t;
                    checkpoint_y.clear();
                    checkpoint_y.extend_from_slice(y);
                    false
                };
                Adaptive::with_config(self.config)
                    .run(&sys, t_c, &y_c, tf, Some(&mut recorder))
                    .err()
            };
            let Some(failure) = failure else {
                report.completed = true;
                return Ok(GuardedRun { solution, report });
            };
            if !recoverable(&failure) {
                return Err(failure);
            }
            if report.events.len() >= self.policy.max_fallbacks {
                report.completed = false;
                // Record the failure that broke the budget so the report
                // explains where the trajectory ends.
                report.events.push(RecoveryEvent {
                    t_fail: checkpoint_t,
                    failure,
                    window: (checkpoint_t, checkpoint_t),
                    rescued_by: None,
                });
                return Ok(GuardedRun { solution, report });
            }

            // Repeated failures without progress widen the window
            // geometrically so a fault region larger than one window is
            // eventually jumped in a bounded number of engagements.
            if (checkpoint_t - last_fail_t).abs() <= tiny {
                consecutive_stalls += 1;
            } else {
                consecutive_stalls = 0;
            }
            last_fail_t = checkpoint_t;
            let widen = f64::from(2u32.saturating_pow(consecutive_stalls.min(16)));
            let window = (base_window * widen).min((tf - checkpoint_t).abs());
            let t_w = checkpoint_t + dir * window;
            let t_w = if (tf - t_w) * dir < 0.0 { tf } else { t_w };

            let rescued_by = self.cross_window(
                sys,
                checkpoint_t,
                &checkpoint_y,
                t_w,
                &mut solution,
                &mut report,
            );
            rumor_obs::event(
                "ode.fallback",
                &[
                    ("t_fail", checkpoint_t.into()),
                    (
                        "stage",
                        rescued_by
                            .map_or_else(|| "none".to_string(), |s| s.to_string())
                            .into(),
                    ),
                ],
            );
            report.events.push(RecoveryEvent {
                t_fail: checkpoint_t,
                failure,
                window: (checkpoint_t, t_w),
                rescued_by,
            });
            if rescued_by.is_none() {
                report.completed = false;
                return Ok(GuardedRun { solution, report });
            }
            t_c = solution.last_time();
            y_c = solution.last_state().to_vec();
        }
        report.completed = true;
        Ok(GuardedRun { solution, report })
    }

    /// Like [`Guarded::run`] but incomplete runs become
    /// [`OdeError::RecoveryExhausted`], for callers that need a plain
    /// [`Solution`] with classical error semantics.
    ///
    /// # Errors
    ///
    /// Everything [`Guarded::run`] returns, plus
    /// [`OdeError::RecoveryExhausted`] when the fallback budget ran out.
    pub fn integrate(
        &mut self,
        sys: &(impl OdeSystem + ?Sized),
        t0: f64,
        y0: &[f64],
        tf: f64,
    ) -> Result<Solution> {
        let run = self.run(sys, t0, y0, tf)?;
        if !run.report.completed {
            return Err(OdeError::RecoveryExhausted {
                t: run.solution.last_time(),
                attempts: run.report.events.len(),
            });
        }
        Ok(run.solution)
    }

    /// Tries each link of the fallback chain across `[t_from, t_to]`.
    /// On success appends the crossed segment to `solution` (skipping
    /// the duplicated first point) and returns the rescuing stage.
    fn cross_window(
        &self,
        sys: &(impl OdeSystem + ?Sized),
        t_from: f64,
        y_from: &[f64],
        t_to: f64,
        solution: &mut Solution,
        report: &mut RecoveryReport,
    ) -> Option<FallbackStage> {
        let width = (t_to - t_from).abs();
        if width == 0.0 {
            return None;
        }

        // Stage 1: fixed-step RK4, halving the step on each retry.
        for level in 0..=self.policy.rk4_backoff_levels {
            let n = self.policy.rk4_substeps << level;
            let h = width / n as f64;
            if let Ok(seg) = FixedStep::new(Rk4::new(), h).integrate(&sys, t_from, y_from, t_to) {
                append_segment(solution, &seg);
                return Some(FallbackStage::Rk4Backoff);
            }
        }

        // Stage 2: implicit Euler, unconditionally stable for the stiff
        // case the explicit steppers choke on.
        let h = width / self.policy.implicit_substeps as f64;
        if let Ok(seg) =
            FixedStep::new(ImplicitEuler::new(), h).integrate(&sys, t_from, y_from, t_to)
        {
            append_segment(solution, &seg);
            return Some(FallbackStage::ImplicitEuler);
        }

        // Stage 3: quarantine — hold the last finite state across the
        // window and resume on the far side.
        if self.policy.quarantine {
            solution.push(t_from + 0.5 * (t_to - t_from), y_from);
            solution.push(t_to, y_from);
            report.quarantined.push((t_from, t_to));
            return Some(FallbackStage::Quarantine);
        }
        None
    }
}

/// Appends `segment` to `solution`, skipping the first record (which
/// duplicates the current last point of `solution`).
fn append_segment(solution: &mut Solution, segment: &Solution) {
    solution.extend_from(segment, 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultSchedule, FaultyRhs};
    use crate::system::FnSystem;

    fn decay() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = -y[0])
    }

    #[test]
    fn clean_system_reports_clean() {
        let run = Guarded::new().run(&decay(), 0.0, &[1.0], 2.0).unwrap();
        assert!(run.report.is_clean());
        assert!(!run.report.degraded());
        assert!((run.solution.last_state()[0] - (-2.0_f64).exp()).abs() < 1e-7);
        assert_eq!(run.solution.last_time(), 2.0);
        assert!(run.report.summary().contains("clean"));
    }

    /// With the default `h_max = ∞`, the adaptive driver's steps grow
    /// large enough on smooth decay that every DOPRI5 stage abscissa can
    /// clear a 2%-wide fault window without ever evaluating inside it —
    /// so tests that require the fault to fire must bound the step.
    fn nan_probing_config() -> AdaptiveConfig {
        AdaptiveConfig {
            h_max: 0.01,
            ..Default::default()
        }
    }

    #[test]
    fn nan_window_is_rescued_with_report() {
        let faulty = FaultyRhs::new(decay(), FaultSchedule::new().nan_at(1.0, 0.02));
        let run = Guarded::with_config(nan_probing_config(), RecoveryPolicy::default())
            .run(&faulty, 0.0, &[1.0], 2.0)
            .unwrap();
        assert!(run.report.completed);
        assert!(!run.report.events.is_empty(), "fallback must engage");
        let ev = &run.report.events[0];
        assert!(matches!(ev.failure, OdeError::NonFiniteState { .. }));
        assert!(
            ev.t_fail < 1.02,
            "failure near the NaN window, got {}",
            ev.t_fail
        );
        assert!(ev.rescued_by.is_some());
        // A ~2% quarantined window costs a few percent accuracy at most.
        let exact = (-2.0_f64).exp();
        assert!((run.solution.last_state()[0] - exact).abs() < 0.1 * exact.max(0.1));
    }

    #[test]
    fn stiff_spike_is_rescued_by_sturdier_stepper() {
        // A spike stiff enough to exhaust a small step budget.
        let faulty = FaultyRhs::new(
            decay(),
            FaultSchedule::new().stiffness_spike(1.0, 0.05, 1e7),
        );
        let cfg = AdaptiveConfig {
            max_steps: 4_000,
            ..Default::default()
        };
        let run = Guarded::with_config(cfg, RecoveryPolicy::default())
            .run(&faulty, 0.0, &[1.0], 2.0)
            .unwrap();
        assert!(run.report.completed);
        assert!(!run.report.events.is_empty());
        // The rescue must come from an actual integrator, not quarantine:
        // the RHS stays finite, it is merely stiff.
        assert!(run
            .report
            .events
            .iter()
            .all(|e| e.rescued_by != Some(FallbackStage::Quarantine)));
        assert!(run.report.quarantined.is_empty());
    }

    #[test]
    fn perturbation_burst_passes_through() {
        // A bounded burst is integrable without fallbacks — the guard
        // must not fire spuriously.
        let faulty = FaultyRhs::new(
            decay(),
            FaultSchedule::new().perturbation_burst(0.5, 0.2, 0.5, 40.0),
        );
        let run = Guarded::new().run(&faulty, 0.0, &[1.0], 2.0).unwrap();
        assert!(run.report.is_clean());
    }

    #[test]
    fn genuine_blowup_exhausts_gracefully() {
        // y' = y² reaches infinity at t = 1; no stepper can cross it and
        // quarantine is disabled, so the run ends incomplete — without
        // panicking, and with the partial trajectory intact.
        let blowup = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = y[0] * y[0]);
        let policy = RecoveryPolicy {
            quarantine: false,
            max_fallbacks: 3,
            ..Default::default()
        };
        let run = Guarded::with_config(AdaptiveConfig::default(), policy)
            .run(&blowup, 0.0, &[1.0], 2.0)
            .unwrap();
        assert!(!run.report.completed);
        assert!(run.report.degraded());
        assert!(run.solution.last_time() < 1.05);
        assert!(run.solution.last_state()[0].is_finite());
    }

    #[test]
    fn integrate_turns_incomplete_into_error() {
        let blowup = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = y[0] * y[0]);
        let policy = RecoveryPolicy {
            quarantine: false,
            max_fallbacks: 2,
            ..Default::default()
        };
        let r = Guarded::with_config(AdaptiveConfig::default(), policy).integrate(
            &blowup,
            0.0,
            &[1.0],
            2.0,
        );
        assert!(matches!(r, Err(OdeError::RecoveryExhausted { .. })));
    }

    #[test]
    fn backward_runs_are_guarded_too() {
        let faulty = FaultyRhs::new(decay(), FaultSchedule::new().nan_at(0.95, 0.02));
        let run = Guarded::new().run(&faulty, 2.0, &[0.5], 0.0).unwrap();
        assert!(run.report.completed);
        assert_eq!(run.solution.last_time(), 0.0);
        assert!(!run.report.events.is_empty());
    }

    #[test]
    fn zero_span_is_identity() {
        let run = Guarded::new().run(&decay(), 1.0, &[3.0], 1.0).unwrap();
        assert!(run.report.is_clean());
        assert_eq!(run.solution.len(), 1);
    }

    #[test]
    fn dimension_mismatch_is_not_swallowed() {
        let r = Guarded::new().run(&decay(), 0.0, &[1.0, 2.0], 1.0);
        assert!(matches!(r, Err(OdeError::DimensionMismatch { .. })));
    }

    #[test]
    fn invalid_policy_rejected_up_front() {
        let policy = RecoveryPolicy {
            window_fraction: 0.0,
            ..Default::default()
        };
        let r =
            Guarded::with_config(AdaptiveConfig::default(), policy).run(&decay(), 0.0, &[1.0], 1.0);
        assert!(matches!(
            r,
            Err(OdeError::InvalidConfig {
                field: "window_fraction",
                ..
            })
        ));
    }

    #[test]
    fn invalid_adaptive_config_rejected_up_front() {
        let cfg = AdaptiveConfig {
            rtol: f64::NAN,
            ..Default::default()
        };
        let r =
            Guarded::with_config(cfg, RecoveryPolicy::default()).run(&decay(), 0.0, &[1.0], 1.0);
        assert!(matches!(
            r,
            Err(OdeError::InvalidConfig { field: "rtol", .. })
        ));
    }

    #[test]
    fn report_summary_mentions_engagements() {
        let faulty = FaultyRhs::new(decay(), FaultSchedule::new().nan_at(1.0, 0.02));
        let run = Guarded::with_config(nan_probing_config(), RecoveryPolicy::default())
            .run(&faulty, 0.0, &[1.0], 2.0)
            .unwrap();
        let s = run.report.summary();
        assert!(s.contains("engagement"), "{s}");
    }
}
