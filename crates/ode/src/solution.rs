//! Recorded ODE trajectories.

use crate::OdeError;

/// A trajectory recorded by an integrator: a sequence of `(t, y)` pairs in
/// integration order (monotone increasing `t` for forward runs, monotone
/// decreasing for backward runs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Solution {
    times: Vec<f64>,
    states: Vec<Vec<f64>>,
}

impl Solution {
    /// Creates an empty solution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solution with pre-allocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        Solution {
            times: Vec::with_capacity(n),
            states: Vec::with_capacity(n),
        }
    }

    /// Appends a `(t, y)` record.
    pub fn push(&mut self, t: f64, y: Vec<f64>) {
        self.times.push(t);
        self.states.push(y);
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The recorded times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The recorded states (parallel to [`Solution::times`]).
    pub fn states(&self) -> &[Vec<f64>] {
        &self.states
    }

    /// The state at record `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn state(&self, i: usize) -> &[f64] {
        &self.states[i]
    }

    /// The final recorded time.
    ///
    /// # Panics
    ///
    /// Panics if the solution is empty.
    pub fn last_time(&self) -> f64 {
        *self.times.last().expect("empty solution")
    }

    /// The final recorded state.
    ///
    /// # Panics
    ///
    /// Panics if the solution is empty.
    pub fn last_state(&self) -> &[f64] {
        self.states.last().expect("empty solution")
    }

    /// Extracts component `j` across all records as a time series.
    ///
    /// # Panics
    ///
    /// Panics if any state is shorter than `j + 1`.
    pub fn component(&self, j: usize) -> Vec<f64> {
        self.states.iter().map(|s| s[j]).collect()
    }

    /// Linearly interpolates the state at time `t`.
    ///
    /// Works for both forward and backward trajectories; `t` outside the
    /// recorded range clamps to the nearest endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::InvalidStep`] if the solution is empty.
    pub fn sample(&self, t: f64) -> Result<Vec<f64>, OdeError> {
        if self.is_empty() {
            return Err(OdeError::InvalidStep(
                "cannot sample an empty solution".into(),
            ));
        }
        if self.len() == 1 {
            return Ok(self.states[0].clone());
        }
        let forward = self.times[0] <= *self.times.last().expect("non-empty");
        // Normalize to a forward search by mapping times through a sign.
        let key = |x: f64| if forward { x } else { -x };
        let tq = key(t);
        if tq <= key(self.times[0]) {
            return Ok(self.states[0].clone());
        }
        if tq >= key(*self.times.last().expect("non-empty")) {
            return Ok(self.states.last().expect("non-empty").clone());
        }
        // Find segment via binary search on the (sign-normalized) times.
        let idx = self
            .times
            .partition_point(|&x| key(x) <= tq)
            .saturating_sub(1)
            .min(self.len() - 2);
        let (t0, t1) = (self.times[idx], self.times[idx + 1]);
        let w = if t1 == t0 { 0.0 } else { (t - t0) / (t1 - t0) };
        Ok(self.states[idx]
            .iter()
            .zip(&self.states[idx + 1])
            .map(|(a, b)| a + w * (b - a))
            .collect())
    }

    /// Samples the solution at every time in `grid`.
    ///
    /// # Errors
    ///
    /// Propagates [`Solution::sample`] errors.
    pub fn sample_grid(&self, grid: &[f64]) -> Result<Vec<Vec<f64>>, OdeError> {
        grid.iter().map(|&t| self.sample(t)).collect()
    }

    /// Iterates over `(t, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &[f64])> {
        self.times
            .iter()
            .copied()
            .zip(self.states.iter().map(Vec::as_slice))
    }
}

impl FromIterator<(f64, Vec<f64>)> for Solution {
    fn from_iter<T: IntoIterator<Item = (f64, Vec<f64>)>>(iter: T) -> Self {
        let mut sol = Solution::new();
        for (t, y) in iter {
            sol.push(t, y);
        }
        sol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_solution() -> Solution {
        // y(t) = (t, 2t) sampled at t = 0, 1, 2.
        (0..3)
            .map(|i| (i as f64, vec![i as f64, 2.0 * i as f64]))
            .collect()
    }

    #[test]
    fn push_and_accessors() {
        let sol = linear_solution();
        assert_eq!(sol.len(), 3);
        assert!(!sol.is_empty());
        assert_eq!(sol.last_time(), 2.0);
        assert_eq!(sol.last_state(), &[2.0, 4.0]);
        assert_eq!(sol.state(1), &[1.0, 2.0]);
        assert_eq!(sol.component(1), vec![0.0, 2.0, 4.0]);
        assert_eq!(sol.iter().count(), 3);
    }

    #[test]
    fn sample_interpolates_linearly() {
        let sol = linear_solution();
        let y = sol.sample(0.5).unwrap();
        assert_eq!(y, vec![0.5, 1.0]);
        let y = sol.sample(1.75).unwrap();
        assert!((y[0] - 1.75).abs() < 1e-15);
    }

    #[test]
    fn sample_clamps_out_of_range() {
        let sol = linear_solution();
        assert_eq!(sol.sample(-1.0).unwrap(), vec![0.0, 0.0]);
        assert_eq!(sol.sample(99.0).unwrap(), vec![2.0, 4.0]);
    }

    #[test]
    fn sample_exact_nodes() {
        let sol = linear_solution();
        assert_eq!(sol.sample(1.0).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn sample_backward_trajectory() {
        // Times decreasing: a costate sweep from tf = 2 down to 0.
        let sol: Solution = (0..3)
            .map(|i| {
                let t = 2.0 - i as f64;
                (t, vec![t * 10.0])
            })
            .collect();
        let y = sol.sample(1.5).unwrap();
        assert!((y[0] - 15.0).abs() < 1e-12);
        assert_eq!(sol.sample(5.0).unwrap(), vec![20.0]); // clamps to t = 2 end
        assert_eq!(sol.sample(-1.0).unwrap(), vec![0.0]); // clamps to t = 0 end
    }

    #[test]
    fn sample_empty_errors() {
        let sol = Solution::new();
        assert!(sol.sample(0.0).is_err());
    }

    #[test]
    fn sample_single_point() {
        let mut sol = Solution::new();
        sol.push(1.0, vec![7.0]);
        assert_eq!(sol.sample(0.0).unwrap(), vec![7.0]);
        assert_eq!(sol.sample(2.0).unwrap(), vec![7.0]);
    }

    #[test]
    fn sample_grid_maps_each_time() {
        let sol = linear_solution();
        let grid = [0.0, 0.5, 1.0, 2.0];
        let samples = sol.sample_grid(&grid).unwrap();
        assert_eq!(samples.len(), 4);
        assert_eq!(samples[1], vec![0.5, 1.0]);
    }

    #[test]
    fn with_capacity_starts_empty() {
        let sol = Solution::with_capacity(16);
        assert!(sol.is_empty());
    }
}
