//! Recorded ODE trajectories.

use crate::OdeError;

/// A trajectory recorded by an integrator: a sequence of `(t, y)` pairs in
/// integration order (monotone increasing `t` for forward runs, monotone
/// decreasing for backward runs).
///
/// States are stored in one flat, contiguous buffer (`len × dim`,
/// row-major) rather than one heap allocation per record, so recording an
/// accepted step is a bounds-checked `memcpy` into the tail of a growing
/// vector — the integration hot path performs no per-step allocation
/// beyond the amortized growth of the buffer itself.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Solution {
    times: Vec<f64>,
    /// Flat state storage: record `i` occupies `data[i*dim .. (i+1)*dim]`.
    data: Vec<f64>,
    /// State dimension; fixed by the first [`Solution::push`].
    dim: usize,
}

impl Solution {
    /// Creates an empty solution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solution with pre-allocated capacity for `n` records
    /// (state storage is reserved on the first push, once the dimension
    /// is known).
    pub fn with_capacity(n: usize) -> Self {
        Solution {
            times: Vec::with_capacity(n),
            data: Vec::new(),
            dim: 0,
        }
    }

    /// Appends a `(t, y)` record by copying `y` into the flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `y` is empty, or if its length differs from the
    /// dimension established by the first push.
    pub fn push(&mut self, t: f64, y: &[f64]) {
        if self.times.is_empty() {
            assert!(!y.is_empty(), "cannot record a zero-dimensional state");
            self.dim = y.len();
            // Honor a with_capacity() hint now that the dimension is known.
            if self.data.capacity() < self.times.capacity() * self.dim {
                self.data
                    .reserve(self.times.capacity() * self.dim - self.data.capacity());
            }
        } else {
            assert_eq!(y.len(), self.dim, "state dimension changed mid-trajectory");
        }
        self.times.push(t);
        self.data.extend_from_slice(y);
    }

    /// The state dimension (0 while empty).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The recorded times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Iterates over the recorded states in order (parallel to
    /// [`Solution::times`]), each as a `&[f64]` slice of the flat buffer.
    pub fn states(&self) -> std::slice::ChunksExact<'_, f64> {
        self.data.chunks_exact(self.dim.max(1))
    }

    /// The entire flat state buffer (`len × dim`, row-major) — the
    /// zero-copy view batch consumers and FFI-style exporters want.
    pub fn flat_states(&self) -> &[f64] {
        &self.data
    }

    /// The state at record `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn state(&self, i: usize) -> &[f64] {
        assert!(i < self.len(), "record index {i} out of bounds");
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The final recorded time.
    ///
    /// # Panics
    ///
    /// Panics if the solution is empty.
    pub fn last_time(&self) -> f64 {
        *self.times.last().expect("empty solution")
    }

    /// The final recorded state.
    ///
    /// # Panics
    ///
    /// Panics if the solution is empty.
    pub fn last_state(&self) -> &[f64] {
        assert!(!self.is_empty(), "empty solution");
        self.state(self.len() - 1)
    }

    /// Extracts component `j` across all records as a time series.
    ///
    /// # Panics
    ///
    /// Panics if `j >= dim`.
    pub fn component(&self, j: usize) -> Vec<f64> {
        assert!(j < self.dim, "component index {j} out of bounds");
        self.states().map(|s| s[j]).collect()
    }

    /// Linearly interpolates the state at time `t`.
    ///
    /// Works for both forward and backward trajectories; `t` outside the
    /// recorded range clamps to the nearest endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::InvalidStep`] if the solution is empty.
    pub fn sample(&self, t: f64) -> Result<Vec<f64>, OdeError> {
        let mut out = vec![0.0; self.dim];
        self.sample_into(t, &mut out)?;
        Ok(out)
    }

    /// Allocation-free variant of [`Solution::sample`]: interpolates the
    /// state at `t` into the caller's buffer. This is the hot-path entry
    /// used by the co-state right-hand side, which samples the forward
    /// trajectory on every RHS evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::InvalidStep`] if the solution is empty or
    /// `out.len() != dim`.
    pub fn sample_into(&self, t: f64, out: &mut [f64]) -> Result<(), OdeError> {
        if self.is_empty() {
            return Err(OdeError::InvalidStep(
                "cannot sample an empty solution".into(),
            ));
        }
        if out.len() != self.dim {
            return Err(OdeError::InvalidStep(format!(
                "sample buffer has length {}, state dimension is {}",
                out.len(),
                self.dim
            )));
        }
        if self.len() == 1 {
            out.copy_from_slice(self.state(0));
            return Ok(());
        }
        let forward = self.times[0] <= *self.times.last().expect("non-empty");
        // Normalize to a forward search by mapping times through a sign.
        let key = |x: f64| if forward { x } else { -x };
        let tq = key(t);
        if tq <= key(self.times[0]) {
            out.copy_from_slice(self.state(0));
            return Ok(());
        }
        if tq >= key(*self.times.last().expect("non-empty")) {
            out.copy_from_slice(self.last_state());
            return Ok(());
        }
        // Find segment via binary search on the (sign-normalized) times.
        let idx = self
            .times
            .partition_point(|&x| key(x) <= tq)
            .saturating_sub(1)
            .min(self.len() - 2);
        let (t0, t1) = (self.times[idx], self.times[idx + 1]);
        let w = if t1 == t0 { 0.0 } else { (t - t0) / (t1 - t0) };
        let (a, b) = (self.state(idx), self.state(idx + 1));
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = x + w * (y - x);
        }
        Ok(())
    }

    /// Samples the solution at every time in `grid`.
    ///
    /// # Errors
    ///
    /// Propagates [`Solution::sample`] errors.
    pub fn sample_grid(&self, grid: &[f64]) -> Result<Vec<Vec<f64>>, OdeError> {
        grid.iter().map(|&t| self.sample(t)).collect()
    }

    /// Appends every record of `other` from `from` onward (an index into
    /// `other`); used to stitch trajectory segments without re-copying
    /// through intermediate `Vec<f64>` states.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ (and both are non-empty).
    pub fn extend_from(&mut self, other: &Solution, from: usize) {
        for (t, y) in other.times.iter().zip(other.states()).skip(from) {
            self.push(*t, y);
        }
    }

    /// Iterates over `(t, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &[f64])> {
        self.times.iter().copied().zip(self.states())
    }
}

impl FromIterator<(f64, Vec<f64>)> for Solution {
    fn from_iter<T: IntoIterator<Item = (f64, Vec<f64>)>>(iter: T) -> Self {
        let mut sol = Solution::new();
        for (t, y) in iter {
            sol.push(t, &y);
        }
        sol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_solution() -> Solution {
        // y(t) = (t, 2t) sampled at t = 0, 1, 2.
        (0..3)
            .map(|i| (i as f64, vec![i as f64, 2.0 * i as f64]))
            .collect()
    }

    #[test]
    fn push_and_accessors() {
        let sol = linear_solution();
        assert_eq!(sol.len(), 3);
        assert!(!sol.is_empty());
        assert_eq!(sol.dim(), 2);
        assert_eq!(sol.last_time(), 2.0);
        assert_eq!(sol.last_state(), &[2.0, 4.0]);
        assert_eq!(sol.state(1), &[1.0, 2.0]);
        assert_eq!(sol.component(1), vec![0.0, 2.0, 4.0]);
        assert_eq!(sol.iter().count(), 3);
        assert_eq!(sol.states().count(), 3);
        assert_eq!(sol.flat_states(), &[0.0, 0.0, 1.0, 2.0, 2.0, 4.0]);
    }

    #[test]
    fn sample_interpolates_linearly() {
        let sol = linear_solution();
        let y = sol.sample(0.5).unwrap();
        assert_eq!(y, vec![0.5, 1.0]);
        let y = sol.sample(1.75).unwrap();
        assert!((y[0] - 1.75).abs() < 1e-15);
    }

    #[test]
    fn sample_clamps_out_of_range() {
        let sol = linear_solution();
        assert_eq!(sol.sample(-1.0).unwrap(), vec![0.0, 0.0]);
        assert_eq!(sol.sample(99.0).unwrap(), vec![2.0, 4.0]);
    }

    #[test]
    fn sample_exact_nodes() {
        let sol = linear_solution();
        assert_eq!(sol.sample(1.0).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn sample_into_matches_sample_without_allocating_per_call() {
        let sol = linear_solution();
        let mut buf = [0.0; 2];
        for t in [-1.0, 0.0, 0.3, 1.0, 1.9, 5.0] {
            sol.sample_into(t, &mut buf).unwrap();
            assert_eq!(buf.to_vec(), sol.sample(t).unwrap(), "t = {t}");
        }
        let mut wrong = [0.0; 3];
        assert!(sol.sample_into(0.5, &mut wrong).is_err());
    }

    #[test]
    fn sample_backward_trajectory() {
        // Times decreasing: a costate sweep from tf = 2 down to 0.
        let sol: Solution = (0..3)
            .map(|i| {
                let t = 2.0 - i as f64;
                (t, vec![t * 10.0])
            })
            .collect();
        let y = sol.sample(1.5).unwrap();
        assert!((y[0] - 15.0).abs() < 1e-12);
        assert_eq!(sol.sample(5.0).unwrap(), vec![20.0]); // clamps to t = 2 end
        assert_eq!(sol.sample(-1.0).unwrap(), vec![0.0]); // clamps to t = 0 end
    }

    #[test]
    fn sample_empty_errors() {
        let sol = Solution::new();
        assert!(sol.sample(0.0).is_err());
        assert!(sol.sample_into(0.0, &mut []).is_err());
    }

    #[test]
    fn sample_single_point() {
        let mut sol = Solution::new();
        sol.push(1.0, &[7.0]);
        assert_eq!(sol.sample(0.0).unwrap(), vec![7.0]);
        assert_eq!(sol.sample(2.0).unwrap(), vec![7.0]);
    }

    #[test]
    fn sample_grid_maps_each_time() {
        let sol = linear_solution();
        let grid = [0.0, 0.5, 1.0, 2.0];
        let samples = sol.sample_grid(&grid).unwrap();
        assert_eq!(samples.len(), 4);
        assert_eq!(samples[1], vec![0.5, 1.0]);
    }

    #[test]
    fn with_capacity_starts_empty() {
        let sol = Solution::with_capacity(16);
        assert!(sol.is_empty());
        assert_eq!(sol.dim(), 0);
    }

    #[test]
    fn extend_from_skips_prefix() {
        let a = linear_solution();
        let mut b = Solution::new();
        b.push(0.0, &[0.0, 0.0]);
        b.extend_from(&a, 1);
        assert_eq!(b.len(), 3);
        assert_eq!(b.state(1), &[1.0, 2.0]);
        assert_eq!(b.last_state(), &[2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "dimension changed")]
    fn ragged_push_panics() {
        let mut sol = Solution::new();
        sol.push(0.0, &[1.0, 2.0]);
        sol.push(1.0, &[1.0]);
    }
}
