use std::fmt;

/// Errors produced by the ODE drivers and steppers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OdeError {
    /// The initial state length did not match the system dimension.
    DimensionMismatch {
        /// System dimension.
        expected: usize,
        /// Provided state length.
        found: usize,
    },
    /// A step size or tolerance was non-positive or non-finite.
    InvalidStep(String),
    /// The adaptive controller shrank the step below its minimum without
    /// meeting the error tolerance.
    StepSizeUnderflow {
        /// Time at which the failure occurred.
        t: f64,
        /// The step size that was rejected.
        h: f64,
    },
    /// The driver exceeded its maximum number of steps.
    TooManySteps {
        /// The step budget that was exhausted.
        max_steps: usize,
        /// Time reached when the budget ran out.
        t: f64,
    },
    /// The right-hand side produced a non-finite value.
    NonFiniteState {
        /// Time at which the non-finite value appeared.
        t: f64,
    },
    /// The implicit stepper's Newton iteration failed to converge.
    NewtonFailed {
        /// Time of the failed step.
        t: f64,
        /// Iterations attempted.
        iterations: usize,
    },
    /// A driver or recovery-policy configuration field was rejected up
    /// front (non-finite, out of range, or inconsistent with another
    /// field) before any integration ran.
    InvalidConfig {
        /// The offending field, e.g. `"rtol"`.
        field: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// The guarded integrator exhausted its fallback chain and retry
    /// budget without crossing a troubled segment.
    RecoveryExhausted {
        /// Time up to which a valid trajectory exists.
        t: f64,
        /// Fallback engagements attempted before giving up.
        attempts: usize,
    },
    /// An underlying linear-algebra operation failed.
    Numerics(rumor_numerics::NumericsError),
}

impl fmt::Display for OdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OdeError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "state dimension mismatch: system has {expected}, state has {found}"
                )
            }
            OdeError::InvalidStep(msg) => write!(f, "invalid step configuration: {msg}"),
            OdeError::StepSizeUnderflow { t, h } => {
                write!(f, "step size underflow at t = {t} (h = {h})")
            }
            OdeError::TooManySteps { max_steps, t } => {
                write!(f, "exceeded {max_steps} steps at t = {t}")
            }
            OdeError::NonFiniteState { t } => write!(f, "non-finite state at t = {t}"),
            OdeError::NewtonFailed { t, iterations } => {
                write!(
                    f,
                    "newton iteration failed at t = {t} after {iterations} iterations"
                )
            }
            OdeError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration field {field}: {reason}")
            }
            OdeError::RecoveryExhausted { t, attempts } => {
                write!(
                    f,
                    "recovery exhausted after {attempts} fallback attempt(s); valid trajectory ends at t = {t}"
                )
            }
            OdeError::Numerics(e) => write!(f, "numerics error: {e}"),
        }
    }
}

impl std::error::Error for OdeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OdeError::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rumor_numerics::NumericsError> for OdeError {
    fn from(e: rumor_numerics::NumericsError) -> Self {
        OdeError::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::OdeError;

    #[test]
    fn display_nonempty() {
        let errs = [
            OdeError::DimensionMismatch {
                expected: 3,
                found: 2,
            },
            OdeError::InvalidStep("h must be positive".into()),
            OdeError::StepSizeUnderflow { t: 1.0, h: 1e-18 },
            OdeError::TooManySteps {
                max_steps: 10,
                t: 0.5,
            },
            OdeError::NonFiniteState { t: 2.0 },
            OdeError::NewtonFailed {
                t: 0.1,
                iterations: 25,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn numerics_error_converts_and_sources() {
        use std::error::Error;
        let e: OdeError = rumor_numerics::NumericsError::SingularMatrix.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OdeError>();
    }
}
