//! The Dormand–Prince 5(4) embedded Runge–Kutta pair.
//!
//! This is the stepper behind the adaptive driver
//! [`crate::integrator::Adaptive`]: a 7-stage pair producing a 5th-order
//! solution together with a 4th-order error estimate, with the FSAL
//! (first-same-as-last) property.

use super::{ensure_len, Stepper};
use crate::system::OdeSystem;

// Butcher tableau of DOPRI5 (Dormand & Prince, 1980).
const C: [f64; 7] = [0.0, 1.0 / 5.0, 3.0 / 10.0, 4.0 / 5.0, 8.0 / 9.0, 1.0, 1.0];
const A: [[f64; 6]; 7] = [
    [0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [1.0 / 5.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0, 0.0],
    [44.0 / 45.0, -56.0 / 15.0, 32.0 / 9.0, 0.0, 0.0, 0.0],
    [
        19372.0 / 6561.0,
        -25360.0 / 2187.0,
        64448.0 / 6561.0,
        -212.0 / 729.0,
        0.0,
        0.0,
    ],
    [
        9017.0 / 3168.0,
        -355.0 / 33.0,
        46732.0 / 5247.0,
        49.0 / 176.0,
        -5103.0 / 18656.0,
        0.0,
    ],
    [
        35.0 / 384.0,
        0.0,
        500.0 / 1113.0,
        125.0 / 192.0,
        -2187.0 / 6784.0,
        11.0 / 84.0,
    ],
];
/// 5th-order weights (same as the last row of `A` thanks to FSAL).
const B5: [f64; 7] = [
    35.0 / 384.0,
    0.0,
    500.0 / 1113.0,
    125.0 / 192.0,
    -2187.0 / 6784.0,
    11.0 / 84.0,
    0.0,
];
/// 4th-order (embedded) weights.
const B4: [f64; 7] = [
    5179.0 / 57600.0,
    0.0,
    7571.0 / 16695.0,
    393.0 / 640.0,
    -92097.0 / 339200.0,
    187.0 / 2100.0,
    1.0 / 40.0,
];

/// Dormand–Prince 5(4) stepper with an embedded error estimate.
#[derive(Debug, Clone, Default)]
pub struct Dopri5 {
    k: [Vec<f64>; 7],
    tmp: Vec<f64>,
    /// Scratch for the error estimate when driven through the plain
    /// [`Stepper::step`] interface, so that path allocates only once.
    err_scratch: Vec<f64>,
}

impl Dopri5 {
    /// Creates a new DOPRI5 stepper.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances one step and additionally writes the component-wise
    /// difference between the 5th- and 4th-order solutions into `err`,
    /// which adaptive drivers use for step-size control.
    ///
    /// # Panics
    ///
    /// Panics if `y`, `out` or `err` are shorter than `sys.dim()`.
    pub fn step_with_error(
        &mut self,
        sys: &dyn OdeSystem,
        t: f64,
        y: &[f64],
        h: f64,
        out: &mut [f64],
        err: &mut [f64],
    ) {
        let n = sys.dim();
        for k in &mut self.k {
            ensure_len(k, n);
        }
        ensure_len(&mut self.tmp, n);

        sys.rhs(t, y, &mut self.k[0][..n]);
        for s in 1..7 {
            for i in 0..n {
                let mut acc = 0.0;
                for (j, kj) in self.k.iter().enumerate().take(s) {
                    let a = A[s][j];
                    if a != 0.0 {
                        acc += a * kj[i];
                    }
                }
                self.tmp[i] = y[i] + h * acc;
            }
            let (head, tail) = self.k.split_at_mut(s);
            let _ = head;
            sys.rhs(t + C[s] * h, &self.tmp[..n], &mut tail[0][..n]);
        }
        for i in 0..n {
            let mut y5 = 0.0;
            let mut y4 = 0.0;
            for (s, ks) in self.k.iter().enumerate() {
                y5 += B5[s] * ks[i];
                y4 += B4[s] * ks[i];
            }
            out[i] = y[i] + h * y5;
            err[i] = h * (y5 - y4);
        }
    }
}

impl Stepper for Dopri5 {
    fn step(&mut self, sys: &dyn OdeSystem, t: f64, y: &[f64], h: f64, out: &mut [f64]) {
        let n = sys.dim();
        let mut err = std::mem::take(&mut self.err_scratch);
        ensure_len(&mut err, n);
        self.step_with_error(sys, t, y, h, out, &mut err);
        self.err_scratch = err;
    }

    fn order(&self) -> usize {
        5
    }

    fn name(&self) -> &'static str {
        "dopri5"
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{decay, empirical_order, oscillator};
    use super::*;

    #[test]
    fn tableau_rows_sum_to_c() {
        // Consistency condition: Σ_j a_sj = c_s.
        for s in 0..7 {
            let row_sum: f64 = A[s].iter().sum();
            assert!((row_sum - C[s]).abs() < 1e-14, "row {s}");
        }
    }

    #[test]
    fn weights_sum_to_one() {
        assert!((B5.iter().sum::<f64>() - 1.0).abs() < 1e-14);
        assert!((B4.iter().sum::<f64>() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn fifth_order_convergence() {
        let p = empirical_order(&mut Dopri5::new(), 0.2);
        assert!(p > 4.5 && p < 5.7, "observed order {p}");
    }

    #[test]
    fn error_estimate_tracks_true_error_scale() {
        let sys = decay();
        let mut s = Dopri5::new();
        let mut out = [0.0];
        let mut err = [0.0];
        s.step_with_error(&sys, 0.0, &[1.0], 0.1, &mut out, &mut err);
        let true_err = (out[0] - (-0.1_f64).exp()).abs();
        // The estimate must be a sane magnitude: neither zero nor wildly off.
        assert!(err[0].abs() > 0.0);
        assert!(err[0].abs() < 1e-4);
        assert!(true_err < 1e-8);
    }

    #[test]
    fn single_step_oscillator_accuracy() {
        let sys = oscillator();
        let mut s = Dopri5::new();
        let mut out = [0.0; 2];
        let mut err = [0.0; 2];
        let h = 0.2;
        s.step_with_error(&sys, 0.0, &[1.0, 0.0], h, &mut out, &mut err);
        assert!((out[0] - h.cos()).abs() < 1e-7);
        assert!((out[1] + h.sin()).abs() < 1e-7);
    }
}
