//! Single-step integration methods.
//!
//! All steppers advance a state by one step of size `h`; `h` may be
//! negative, which the drivers use for backward (co-state) integration.
//! Steppers own their scratch buffers, so repeated calls after the first
//! are allocation-free.

mod dopri5;
mod euler;
mod heun;
mod implicit;
mod rk4;

pub use dopri5::Dopri5;
pub use euler::Euler;
pub use heun::Heun;
pub use implicit::ImplicitEuler;
pub use rk4::Rk4;

use crate::system::OdeSystem;
use crate::OdeError;

/// A fixed-step single-step method.
///
/// Implementations must tolerate `h < 0` (backward steps).
pub trait Stepper {
    /// Advances the state from `(t, y)` by one step of size `h`, writing
    /// `y(t + h)` into `out`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `y.len()` or `out.len()` differ from
    /// `sys.dim()`; the drivers validate dimensions before stepping.
    fn step(&mut self, sys: &dyn OdeSystem, t: f64, y: &[f64], h: f64, out: &mut [f64]);

    /// Fallible variant of [`Stepper::step`]. Explicit methods cannot
    /// fail and use the default pass-through; methods with an inner
    /// solve (e.g. [`ImplicitEuler`]) override this to surface failure
    /// as an error instead of a panic. The drivers step through this
    /// method so a failed inner solve is always recoverable.
    ///
    /// # Errors
    ///
    /// Implementation-specific; the default never errors.
    fn fallible_step(
        &mut self,
        sys: &dyn OdeSystem,
        t: f64,
        y: &[f64],
        h: f64,
        out: &mut [f64],
    ) -> Result<(), OdeError> {
        self.step(sys, t, y, h, out);
        Ok(())
    }

    /// Classical order of accuracy of the method (e.g. 4 for RK4).
    fn order(&self) -> usize;

    /// Human-readable method name, used in diagnostics.
    fn name(&self) -> &'static str;
}

/// Grows `buf` to length `n`, zero-filling, without shrinking.
pub(crate) fn ensure_len(buf: &mut Vec<f64>, n: usize) {
    if buf.len() < n {
        buf.resize(n, 0.0);
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use crate::system::FnSystem;

    /// dy/dt = -y with y(0) = 1: solution e^{-t}.
    pub fn decay() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = -y[0])
    }

    /// Harmonic oscillator: y0'' = -y0 written first-order; energy
    /// y0² + y1² is conserved.
    pub fn oscillator() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(2, |_t, y: &[f64], d: &mut [f64]| {
            d[0] = y[1];
            d[1] = -y[0];
        })
    }

    /// Nonautonomous: dy/dt = t, solution y = y0 + t²/2.
    pub fn ramp() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, |t, _y: &[f64], d: &mut [f64]| d[0] = t)
    }

    /// Empirical order of convergence of a stepper on the decay problem:
    /// integrates to t = 1 with steps h and h/2 and returns
    /// log2(err_h / err_{h/2}).
    pub fn empirical_order(stepper: &mut dyn super::Stepper, h: f64) -> f64 {
        let sys = decay();
        let exact = (-1.0_f64).exp();
        let run = |stepper: &mut dyn super::Stepper, h: f64| {
            let n = (1.0 / h).round() as usize;
            let mut y = vec![1.0];
            let mut out = vec![0.0];
            let mut t = 0.0;
            for _ in 0..n {
                stepper.step(&sys, t, &y, h, &mut out);
                y.copy_from_slice(&out);
                t += h;
            }
            (y[0] - exact).abs()
        };
        let e1 = run(stepper, h);
        let e2 = run(stepper, h / 2.0);
        (e1 / e2).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_len_grows_but_never_shrinks() {
        let mut v = vec![1.0, 2.0];
        ensure_len(&mut v, 4);
        assert_eq!(v.len(), 4);
        ensure_len(&mut v, 2);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn names_and_orders() {
        assert_eq!(Euler::new().order(), 1);
        assert_eq!(Heun::new().order(), 2);
        assert_eq!(Rk4::new().order(), 4);
        assert_eq!(ImplicitEuler::new().order(), 1);
        for name in [
            Euler::new().name(),
            Heun::new().name(),
            Rk4::new().name(),
            ImplicitEuler::new().name(),
        ] {
            assert!(!name.is_empty());
        }
    }
}
