//! Forward (explicit) Euler — first order.

use super::{ensure_len, Stepper};
use crate::system::OdeSystem;

/// The explicit Euler method: `y_{n+1} = y_n + h f(t_n, y_n)`.
///
/// First-order accurate; used as the cheap baseline in the solver
/// ablation benchmarks and inside the heuristic controller where speed
/// matters more than accuracy.
#[derive(Debug, Clone, Default)]
pub struct Euler {
    k: Vec<f64>,
}

impl Euler {
    /// Creates a new Euler stepper.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Stepper for Euler {
    fn step(&mut self, sys: &dyn OdeSystem, t: f64, y: &[f64], h: f64, out: &mut [f64]) {
        let n = sys.dim();
        ensure_len(&mut self.k, n);
        sys.rhs(t, y, &mut self.k[..n]);
        for i in 0..n {
            out[i] = y[i] + h * self.k[i];
        }
    }

    fn order(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "euler"
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{decay, empirical_order};
    use super::*;

    #[test]
    fn single_step_matches_formula() {
        let mut s = Euler::new();
        let mut out = [0.0];
        s.step(&decay(), 0.0, &[1.0], 0.1, &mut out);
        assert!((out[0] - 0.9).abs() < 1e-15);
    }

    #[test]
    fn first_order_convergence() {
        let p = empirical_order(&mut Euler::new(), 0.01);
        assert!((p - 1.0).abs() < 0.1, "observed order {p}");
    }

    #[test]
    fn backward_step_inverts_forward_to_first_order() {
        let sys = decay();
        let mut s = Euler::new();
        let mut mid = [0.0];
        let mut back = [0.0];
        s.step(&sys, 0.0, &[1.0], 0.001, &mut mid);
        s.step(&sys, 0.001, &mid, -0.001, &mut back);
        assert!((back[0] - 1.0).abs() < 1e-5);
    }
}
