//! Heun's method (explicit trapezoid) — second order.

use super::{ensure_len, Stepper};
use crate::system::OdeSystem;

/// Heun's predictor–corrector method:
/// `y_{n+1} = y_n + h/2 (f(t_n, y_n) + f(t_n + h, y_n + h f(t_n, y_n)))`.
#[derive(Debug, Clone, Default)]
pub struct Heun {
    k1: Vec<f64>,
    k2: Vec<f64>,
    pred: Vec<f64>,
}

impl Heun {
    /// Creates a new Heun stepper.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Stepper for Heun {
    fn step(&mut self, sys: &dyn OdeSystem, t: f64, y: &[f64], h: f64, out: &mut [f64]) {
        let n = sys.dim();
        ensure_len(&mut self.k1, n);
        ensure_len(&mut self.k2, n);
        ensure_len(&mut self.pred, n);
        sys.rhs(t, y, &mut self.k1[..n]);
        for i in 0..n {
            self.pred[i] = y[i] + h * self.k1[i];
        }
        sys.rhs(t + h, &self.pred[..n], &mut self.k2[..n]);
        for i in 0..n {
            out[i] = y[i] + 0.5 * h * (self.k1[i] + self.k2[i]);
        }
    }

    fn order(&self) -> usize {
        2
    }

    fn name(&self) -> &'static str {
        "heun"
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{empirical_order, ramp};
    use super::*;

    #[test]
    fn exact_for_linear_in_t() {
        // dy/dt = t integrates exactly under the trapezoid rule.
        let mut s = Heun::new();
        let mut out = [0.0];
        s.step(&ramp(), 0.0, &[0.0], 1.0, &mut out);
        assert!((out[0] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn second_order_convergence() {
        let p = empirical_order(&mut Heun::new(), 0.02);
        assert!((p - 2.0).abs() < 0.1, "observed order {p}");
    }
}
