//! The classic fourth-order Runge–Kutta method.

use super::{ensure_len, Stepper};
use crate::system::OdeSystem;

/// The classical RK4 method — the workhorse fixed-step integrator used by
/// the forward–backward sweep in `rumor-control`, where state and co-state
/// must be evaluated on a shared uniform grid.
#[derive(Debug, Clone, Default)]
pub struct Rk4 {
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    tmp: Vec<f64>,
}

impl Rk4 {
    /// Creates a new RK4 stepper.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Stepper for Rk4 {
    fn step(&mut self, sys: &dyn OdeSystem, t: f64, y: &[f64], h: f64, out: &mut [f64]) {
        let n = sys.dim();
        ensure_len(&mut self.k1, n);
        ensure_len(&mut self.k2, n);
        ensure_len(&mut self.k3, n);
        ensure_len(&mut self.k4, n);
        ensure_len(&mut self.tmp, n);

        sys.rhs(t, y, &mut self.k1[..n]);
        for i in 0..n {
            self.tmp[i] = y[i] + 0.5 * h * self.k1[i];
        }
        sys.rhs(t + 0.5 * h, &self.tmp[..n], &mut self.k2[..n]);
        for i in 0..n {
            self.tmp[i] = y[i] + 0.5 * h * self.k2[i];
        }
        sys.rhs(t + 0.5 * h, &self.tmp[..n], &mut self.k3[..n]);
        for i in 0..n {
            self.tmp[i] = y[i] + h * self.k3[i];
        }
        sys.rhs(t + h, &self.tmp[..n], &mut self.k4[..n]);
        for i in 0..n {
            out[i] =
                y[i] + h / 6.0 * (self.k1[i] + 2.0 * self.k2[i] + 2.0 * self.k3[i] + self.k4[i]);
        }
    }

    fn order(&self) -> usize {
        4
    }

    fn name(&self) -> &'static str {
        "rk4"
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{decay, empirical_order, oscillator};
    use super::*;

    #[test]
    fn high_accuracy_single_step() {
        let mut s = Rk4::new();
        let mut out = [0.0];
        s.step(&decay(), 0.0, &[1.0], 0.1, &mut out);
        assert!((out[0] - (-0.1_f64).exp()).abs() < 1e-6);
    }

    #[test]
    fn fourth_order_convergence() {
        let p = empirical_order(&mut Rk4::new(), 0.1);
        assert!((p - 4.0).abs() < 0.2, "observed order {p}");
    }

    #[test]
    fn oscillator_energy_nearly_conserved() {
        let sys = oscillator();
        let mut s = Rk4::new();
        let mut y = vec![1.0, 0.0];
        let mut out = vec![0.0; 2];
        let h = 0.01;
        for i in 0..1000 {
            s.step(&sys, i as f64 * h, &y, h, &mut out);
            y.copy_from_slice(&out);
        }
        let energy = y[0] * y[0] + y[1] * y[1];
        assert!((energy - 1.0).abs() < 1e-8, "energy drift {energy}");
    }

    #[test]
    fn backward_integration_recovers_initial_state() {
        let sys = decay();
        let mut s = Rk4::new();
        let h = 0.05;
        let mut y = vec![1.0];
        let mut out = vec![0.0];
        for i in 0..20 {
            s.step(&sys, i as f64 * h, &y, h, &mut out);
            y.copy_from_slice(&out);
        }
        for i in (0..20).rev() {
            s.step(&sys, (i + 1) as f64 * h, &y, -h, &mut out);
            y.copy_from_slice(&out);
        }
        assert!((y[0] - 1.0).abs() < 1e-6);
    }
}
