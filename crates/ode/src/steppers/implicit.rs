//! Backward (implicit) Euler with a damped Newton inner solve.
//!
//! The rumor ODE system is non-stiff at the paper's parameter settings,
//! but the blocking rate `ε2` can be driven large by the optimizer, which
//! stiffens the infected-compartment dynamics. The implicit stepper is
//! provided for those regimes and for the solver-ablation benchmarks.

use super::{ensure_len, Stepper};
use crate::system::OdeSystem;
use crate::OdeError;
use rumor_numerics::lu::Lu;
use rumor_numerics::matrix::Matrix;

/// Backward Euler: solves `y_{n+1} = y_n + h f(t_{n+1}, y_{n+1})` with a
/// Newton iteration using a finite-difference Jacobian.
#[derive(Debug, Clone)]
pub struct ImplicitEuler {
    /// Newton convergence tolerance on the update's infinity norm.
    pub newton_tol: f64,
    /// Maximum Newton iterations per step.
    pub max_newton_iter: usize,
    f: Vec<f64>,
    f_pert: Vec<f64>,
    yk: Vec<f64>,
}

impl Default for ImplicitEuler {
    fn default() -> Self {
        ImplicitEuler {
            newton_tol: 1e-10,
            max_newton_iter: 25,
            f: Vec::new(),
            f_pert: Vec::new(),
            yk: Vec::new(),
        }
    }
}

impl ImplicitEuler {
    /// Creates a stepper with default Newton settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a stepper with a custom Newton tolerance and iteration cap.
    pub fn with_newton(newton_tol: f64, max_newton_iter: usize) -> Self {
        ImplicitEuler {
            newton_tol,
            max_newton_iter,
            ..Self::default()
        }
    }

    /// Fallible step: advances `(t, y)` by `h`, writing into `out`.
    ///
    /// # Errors
    ///
    /// * [`OdeError::NewtonFailed`] if the Newton iteration does not
    ///   converge within the configured budget.
    /// * [`OdeError::Numerics`] if the Newton matrix is singular.
    pub fn try_step(
        &mut self,
        sys: &dyn OdeSystem,
        t: f64,
        y: &[f64],
        h: f64,
        out: &mut [f64],
    ) -> Result<(), OdeError> {
        let n = sys.dim();
        ensure_len(&mut self.f, n);
        ensure_len(&mut self.f_pert, n);
        ensure_len(&mut self.yk, n);
        let tn = t + h;

        // Predictor: explicit Euler.
        sys.rhs(t, y, &mut self.f[..n]);
        for i in 0..n {
            self.yk[i] = y[i] + h * self.f[i];
        }

        for iter in 0..self.max_newton_iter {
            // Residual G(yk) = yk - y - h f(tn, yk).
            sys.rhs(tn, &self.yk[..n], &mut self.f[..n]);
            let mut residual = vec![0.0; n];
            let mut rnorm = 0.0_f64;
            for i in 0..n {
                residual[i] = self.yk[i] - y[i] - h * self.f[i];
                rnorm = rnorm.max(residual[i].abs());
            }
            if rnorm <= self.newton_tol {
                out[..n].copy_from_slice(&self.yk[..n]);
                return Ok(());
            }

            // Finite-difference Jacobian of G: I - h ∂f/∂y.
            let mut jac = Matrix::identity(n);
            let base_f = self.f[..n].to_vec();
            for j in 0..n {
                let yj = self.yk[j];
                let dy = (yj.abs() * 1e-8).max(1e-10);
                self.yk[j] = yj + dy;
                sys.rhs(tn, &self.yk[..n], &mut self.f_pert[..n]);
                self.yk[j] = yj;
                for i in 0..n {
                    jac[(i, j)] -= h * (self.f_pert[i] - base_f[i]) / dy;
                }
            }

            let delta = Lu::decompose(&jac)?.solve(&residual)?;
            let mut dnorm = 0.0_f64;
            for i in 0..n {
                self.yk[i] -= delta[i];
                dnorm = dnorm.max(delta[i].abs());
            }
            if dnorm <= self.newton_tol {
                out[..n].copy_from_slice(&self.yk[..n]);
                return Ok(());
            }
            let _ = iter;
        }
        Err(OdeError::NewtonFailed {
            t,
            iterations: self.max_newton_iter,
        })
    }
}

impl Stepper for ImplicitEuler {
    /// Infallible [`Stepper`] interface.
    ///
    /// # Panics
    ///
    /// Panics if the Newton iteration fails; use
    /// [`ImplicitEuler::try_step`] to handle that case gracefully.
    fn step(&mut self, sys: &dyn OdeSystem, t: f64, y: &[f64], h: f64, out: &mut [f64]) {
        self.try_step(sys, t, y, h, out)
            .expect("implicit euler newton iteration failed; use try_step for fallible stepping");
    }

    fn fallible_step(
        &mut self,
        sys: &dyn OdeSystem,
        t: f64,
        y: &[f64],
        h: f64,
        out: &mut [f64],
    ) -> Result<(), OdeError> {
        self.try_step(sys, t, y, h, out)
    }

    fn order(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "implicit-euler"
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{decay, empirical_order};
    use super::*;
    use crate::system::FnSystem;

    #[test]
    fn solves_linear_decay_implicitly() {
        // Backward Euler on y' = -y gives y1 = y0 / (1 + h).
        let mut s = ImplicitEuler::new();
        let mut out = [0.0];
        s.try_step(&decay(), 0.0, &[1.0], 0.5, &mut out).unwrap();
        assert!((out[0] - 1.0 / 1.5).abs() < 1e-8);
    }

    #[test]
    fn first_order_convergence() {
        let p = empirical_order(&mut ImplicitEuler::new(), 0.01);
        assert!((p - 1.0).abs() < 0.15, "observed order {p}");
    }

    #[test]
    fn stable_on_stiff_problem_with_large_step() {
        // y' = -1000 y: explicit Euler at h = 0.01 explodes (|1 - 10| = 9),
        // implicit Euler contracts.
        let stiff = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = -1000.0 * y[0]);
        let mut s = ImplicitEuler::new();
        let mut y = vec![1.0];
        let mut out = vec![0.0];
        for i in 0..100 {
            s.try_step(&stiff, i as f64 * 0.01, &y, 0.01, &mut out)
                .unwrap();
            y.copy_from_slice(&out);
        }
        assert!(y[0].abs() < 1e-10, "implicit euler must contract: {}", y[0]);
    }

    #[test]
    fn nonlinear_problem_converges() {
        // Logistic: y' = y(1-y).
        let logistic = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = y[0] * (1.0 - y[0]));
        let mut s = ImplicitEuler::new();
        let mut y = vec![0.1];
        let mut out = vec![0.0];
        for i in 0..2000 {
            s.try_step(&logistic, i as f64 * 0.01, &y, 0.01, &mut out)
                .unwrap();
            y.copy_from_slice(&out);
        }
        assert!(
            (y[0] - 1.0).abs() < 1e-3,
            "logistic must approach 1: {}",
            y[0]
        );
    }

    #[test]
    fn newton_budget_exhaustion_is_reported() {
        let mut s = ImplicitEuler::with_newton(0.0, 2); // unattainable tolerance
        let nasty = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| {
            d[0] = (y[0] * 50.0).sin() * 100.0
        });
        let mut out = [0.0];
        let r = s.try_step(&nasty, 0.0, &[1.0], 1.0, &mut out);
        assert!(matches!(r, Err(OdeError::NewtonFailed { .. })));
    }
}
