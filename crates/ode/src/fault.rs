//! Deterministic fault injection for exercising recovery paths.
//!
//! [`FaultyRhs`] wraps any [`OdeSystem`] and corrupts its right-hand
//! side according to a fixed [`FaultSchedule`]: a NaN window, a
//! stiffness spike, or a perturbation burst, each active on a closed
//! time interval. Injection is purely a function of `t`, so every run
//! against the same schedule sees exactly the same faults — the tests in
//! `crates/ode/tests/recovery.rs` and the CLI's `selftest` command rely
//! on that reproducibility.

use crate::system::OdeSystem;
use std::cell::Cell;

/// What a fault does to the right-hand side while active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Every derivative component becomes NaN — models a corrupted
    /// parameter or an out-of-domain special-function evaluation.
    Nan,
    /// Adds `-factor · y` to the derivative, making the system stiff by
    /// `factor` relative to its natural time scale.
    StiffnessSpike {
        /// Stiffness ratio; `1e4` comfortably breaks a loose-tolerance
        /// explicit integrator's step-size control.
        factor: f64,
    },
    /// Adds a deterministic high-frequency forcing
    /// `amplitude · sin(frequency · t)` to every component.
    PerturbationBurst {
        /// Forcing amplitude.
        amplitude: f64,
        /// Forcing angular frequency.
        frequency: f64,
    },
}

/// One scheduled fault: a [`FaultKind`] active on `[t_start, t_end)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// Start of the active window.
    pub t_start: f64,
    /// End of the active window (exclusive).
    pub t_end: f64,
    /// What happens inside the window.
    pub kind: FaultKind,
}

impl Fault {
    /// Whether this fault is active at time `t` (direction-agnostic:
    /// the window is checked on the interval's natural order, so it
    /// also triggers during backward integration passes).
    pub fn active_at(&self, t: f64) -> bool {
        let (lo, hi) = if self.t_start <= self.t_end {
            (self.t_start, self.t_end)
        } else {
            (self.t_end, self.t_start)
        };
        t >= lo && t < hi
    }
}

/// An ordered set of scheduled faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    faults: Vec<Fault>,
}

impl FaultSchedule {
    /// An empty schedule (the wrapper becomes a transparent pass-through).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a NaN window `[t, t + duration)`.
    #[must_use]
    pub fn nan_at(mut self, t: f64, duration: f64) -> Self {
        self.faults.push(Fault {
            t_start: t,
            t_end: t + duration,
            kind: FaultKind::Nan,
        });
        self
    }

    /// Adds a stiffness spike on `[t, t + duration)`.
    #[must_use]
    pub fn stiffness_spike(mut self, t: f64, duration: f64, factor: f64) -> Self {
        self.faults.push(Fault {
            t_start: t,
            t_end: t + duration,
            kind: FaultKind::StiffnessSpike { factor },
        });
        self
    }

    /// Adds a perturbation burst on `[t, t + duration)`.
    #[must_use]
    pub fn perturbation_burst(
        mut self,
        t: f64,
        duration: f64,
        amplitude: f64,
        frequency: f64,
    ) -> Self {
        self.faults.push(Fault {
            t_start: t,
            t_end: t + duration,
            kind: FaultKind::PerturbationBurst {
                amplitude,
                frequency,
            },
        });
        self
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether any fault is active at `t`.
    pub fn any_active_at(&self, t: f64) -> bool {
        self.faults.iter().any(|f| f.active_at(t))
    }
}

/// An [`OdeSystem`] wrapper that applies a [`FaultSchedule`] to the
/// wrapped system's right-hand side.
///
/// # Example
///
/// ```
/// use rumor_ode::fault::{FaultSchedule, FaultyRhs};
/// use rumor_ode::system::{FnSystem, OdeSystem};
///
/// let decay = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = -y[0]);
/// let faulty = FaultyRhs::new(&decay, FaultSchedule::new().nan_at(0.5, 0.1));
/// let mut d = [0.0];
/// faulty.rhs(0.0, &[1.0], &mut d);
/// assert!(d[0].is_finite());
/// faulty.rhs(0.55, &[1.0], &mut d);
/// assert!(d[0].is_nan());
/// assert_eq!(faulty.injections(), 1);
/// ```
#[derive(Debug)]
pub struct FaultyRhs<S: ?Sized> {
    schedule: FaultSchedule,
    injections: Cell<usize>,
    inner: S,
}

impl<S: OdeSystem> FaultyRhs<S> {
    /// Wraps `inner` with the given schedule.
    pub fn new(inner: S, schedule: FaultSchedule) -> Self {
        FaultyRhs {
            schedule,
            injections: Cell::new(0),
            inner,
        }
    }
}

impl<S: OdeSystem + ?Sized> FaultyRhs<S> {
    /// Number of RHS evaluations that had at least one active fault.
    pub fn injections(&self) -> usize {
        self.injections.get()
    }

    /// The schedule driving the injections.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }
}

impl<S: OdeSystem + ?Sized> OdeSystem for FaultyRhs<S> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        self.inner.rhs(t, y, dydt);
        let mut injected = false;
        for fault in &self.schedule.faults {
            if !fault.active_at(t) {
                continue;
            }
            injected = true;
            match fault.kind {
                FaultKind::Nan => {
                    for d in dydt.iter_mut() {
                        *d = f64::NAN;
                    }
                }
                FaultKind::StiffnessSpike { factor } => {
                    for (d, &yi) in dydt.iter_mut().zip(y) {
                        *d -= factor * yi;
                    }
                }
                FaultKind::PerturbationBurst {
                    amplitude,
                    frequency,
                } => {
                    let forcing = amplitude * (frequency * t).sin();
                    for d in dydt.iter_mut() {
                        *d += forcing;
                    }
                }
            }
        }
        if injected {
            // Tally locally only: the RHS is the integrator's innermost
            // loop, so the shared rollup table is touched once per
            // wrapper lifetime (see `Drop`), not once per evaluation.
            self.injections.set(self.injections.get() + 1);
        }
    }
}

impl<S: ?Sized> Drop for FaultyRhs<S> {
    fn drop(&mut self) {
        let n = self.injections.get();
        if n > 0 {
            rumor_obs::add("ode.fault_injections", n as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::FnSystem;

    fn decay() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = -y[0])
    }

    #[test]
    fn empty_schedule_is_transparent() {
        let faulty = FaultyRhs::new(decay(), FaultSchedule::new());
        let mut d = [0.0];
        faulty.rhs(3.0, &[2.0], &mut d);
        assert_eq!(d[0], -2.0);
        assert_eq!(faulty.injections(), 0);
    }

    #[test]
    fn nan_window_hits_only_inside() {
        let faulty = FaultyRhs::new(decay(), FaultSchedule::new().nan_at(1.0, 0.5));
        let mut d = [0.0];
        for t in [0.0, 0.99, 1.5, 2.0] {
            faulty.rhs(t, &[1.0], &mut d);
            assert!(d[0].is_finite(), "t = {t} should be clean");
        }
        faulty.rhs(1.25, &[1.0], &mut d);
        assert!(d[0].is_nan());
        assert_eq!(faulty.injections(), 1);
    }

    #[test]
    fn stiffness_spike_scales_decay() {
        let faulty = FaultyRhs::new(decay(), FaultSchedule::new().stiffness_spike(0.0, 1.0, 1e4));
        let mut d = [0.0];
        faulty.rhs(0.5, &[1.0], &mut d);
        assert!((d[0] - (-1.0 - 1e4)).abs() < 1e-9);
    }

    #[test]
    fn perturbation_burst_is_deterministic() {
        let schedule = FaultSchedule::new().perturbation_burst(0.0, 10.0, 2.0, 3.0);
        let a = FaultyRhs::new(decay(), schedule.clone());
        let b = FaultyRhs::new(decay(), schedule);
        let (mut da, mut db) = ([0.0], [0.0]);
        for t in [0.1, 0.7, 4.4] {
            a.rhs(t, &[1.0], &mut da);
            b.rhs(t, &[1.0], &mut db);
            assert_eq!(da[0], db[0]);
            assert_ne!(da[0], -1.0, "burst must actually perturb");
        }
    }

    #[test]
    fn windows_trigger_for_backward_passes_too() {
        let fault = Fault {
            t_start: 2.0,
            t_end: 1.0,
            kind: FaultKind::Nan,
        };
        assert!(fault.active_at(1.5));
        assert!(!fault.active_at(0.5));
    }
}
