//! Integration drivers: walk a stepper across a time interval.
//!
//! Two drivers are provided:
//!
//! * [`FixedStep`] — uniform steps with any [`Stepper`]; deterministic
//!   grids, used by the forward–backward sweep where state and co-state
//!   share a grid.
//! * [`Adaptive`] — Dormand–Prince 5(4) with PI step-size control, used
//!   for the long trajectory simulations behind Figs. 2 and 3.
//!
//! Both drivers integrate **backward** when `tf < t0` (the co-state
//! system of the Pontryagin analysis is integrated from `tf` down to 0),
//! and both support early termination through [`Event`] callbacks.

use crate::solution::Solution;
use crate::steppers::{Dopri5, Stepper};
use crate::system::OdeSystem;
use crate::{OdeError, Result};

/// An event callback inspected after every accepted step; returning
/// `true` stops the integration at that sample.
pub type Event<'a> = dyn FnMut(f64, &[f64]) -> bool + 'a;

/// Why an integration run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The final time was reached.
    Completed,
    /// An [`Event`] returned `true`.
    EventTriggered,
}

/// The outcome of an integration run: the recorded trajectory plus
/// diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Run {
    /// The recorded trajectory (every accepted step, endpoints included).
    pub solution: Solution,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Number of accepted steps.
    pub accepted: usize,
    /// Number of rejected steps (always 0 for fixed-step runs).
    pub rejected: usize,
}

/// Folds a finished driver run into the enclosing observability span
/// and the workspace rollup counters.
fn observe_run(sp: &mut rumor_obs::Span, result: &Result<Run>) {
    match result {
        Ok(run) => {
            if sp.active() {
                sp.field("accepted", run.accepted);
                sp.field("rejected", run.rejected);
            }
            rumor_obs::add("ode.steps_accepted", run.accepted as u64);
            rumor_obs::add("ode.steps_rejected", run.rejected as u64);
        }
        Err(e) => {
            if sp.active() {
                sp.field("error", e.to_string());
            }
            rumor_obs::add("ode.integration_errors", 1);
        }
    }
}

fn validate_initial(sys: &dyn OdeSystem, y0: &[f64]) -> Result<()> {
    if y0.len() != sys.dim() {
        return Err(OdeError::DimensionMismatch {
            expected: sys.dim(),
            found: y0.len(),
        });
    }
    if y0.iter().any(|v| !v.is_finite()) {
        return Err(OdeError::NonFiniteState { t: f64::NAN });
    }
    Ok(())
}

/// Fixed-step driver wrapping any [`Stepper`].
///
/// # Example
///
/// ```
/// use rumor_ode::integrator::FixedStep;
/// use rumor_ode::steppers::Rk4;
/// use rumor_ode::system::FnSystem;
///
/// # fn main() -> Result<(), rumor_ode::OdeError> {
/// let decay = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = -y[0]);
/// let sol = FixedStep::new(Rk4::new(), 0.01).integrate(&decay, 0.0, &[1.0], 2.0)?;
/// assert!((sol.last_state()[0] - (-2.0_f64).exp()).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FixedStep<S> {
    stepper: S,
    h: f64,
}

impl<S: Stepper> FixedStep<S> {
    /// Creates a fixed-step driver with step size `h > 0` (the sign is
    /// chosen automatically from the integration direction).
    pub fn new(stepper: S, h: f64) -> Self {
        FixedStep { stepper, h }
    }

    /// The configured step magnitude.
    pub fn step_size(&self) -> f64 {
        self.h
    }

    /// Integrates from `(t0, y0)` to `tf`, recording every step.
    ///
    /// # Errors
    ///
    /// * [`OdeError::InvalidStep`] if `h` is not positive and finite.
    /// * [`OdeError::DimensionMismatch`] if `y0.len() != sys.dim()`.
    /// * [`OdeError::NonFiniteState`] if the trajectory blows up.
    pub fn integrate(
        &mut self,
        sys: &(impl OdeSystem + ?Sized),
        t0: f64,
        y0: &[f64],
        tf: f64,
    ) -> Result<Solution> {
        Ok(self.run(sys, t0, y0, tf, None)?.solution)
    }

    /// Integrates with an event callback checked after every step.
    ///
    /// # Errors
    ///
    /// Same as [`FixedStep::integrate`].
    pub fn run(
        &mut self,
        sys: &(impl OdeSystem + ?Sized),
        t0: f64,
        y0: &[f64],
        tf: f64,
        event: Option<&mut Event<'_>>,
    ) -> Result<Run> {
        let mut sp = rumor_obs::span("ode.fixed_step");
        let result = self.run_inner(sys, t0, y0, tf, event);
        observe_run(&mut sp, &result);
        result
    }

    fn run_inner(
        &mut self,
        sys: &(impl OdeSystem + ?Sized),
        t0: f64,
        y0: &[f64],
        tf: f64,
        mut event: Option<&mut Event<'_>>,
    ) -> Result<Run> {
        if !(self.h.is_finite() && self.h > 0.0) {
            return Err(OdeError::InvalidStep(format!(
                "step size must be positive and finite, got {}",
                self.h
            )));
        }
        validate_initial(&sys, y0)?;
        let span = tf - t0;
        let dir = if span >= 0.0 { 1.0 } else { -1.0 };
        let n_steps = (span.abs() / self.h).ceil().max(1.0) as usize;
        let h_eff = span / n_steps as f64;

        let mut solution = Solution::with_capacity(n_steps + 1);
        let mut y = y0.to_vec();
        let mut out = vec![0.0; y.len()];
        solution.push(t0, &y);

        if span == 0.0 {
            return Ok(Run {
                solution,
                stop: StopReason::Completed,
                accepted: 0,
                rejected: 0,
            });
        }

        for k in 0..n_steps {
            let t = t0 + k as f64 * h_eff;
            self.stepper.fallible_step(&sys, t, &y, h_eff, &mut out)?;
            if out.iter().any(|v| !v.is_finite()) {
                return Err(OdeError::NonFiniteState { t: t + h_eff });
            }
            y.copy_from_slice(&out);
            let t_next = if k + 1 == n_steps { tf } else { t + h_eff };
            solution.push(t_next, &y);
            if let Some(ev) = event.as_deref_mut() {
                if ev(t_next, &y) {
                    return Ok(Run {
                        solution,
                        stop: StopReason::EventTriggered,
                        accepted: k + 1,
                        rejected: 0,
                    });
                }
            }
        }
        let _ = dir;
        Ok(Run {
            solution,
            stop: StopReason::Completed,
            accepted: n_steps,
            rejected: 0,
        })
    }

    /// Integrates and samples the trajectory at the caller's `grid`
    /// (each grid time must lie within `[t0, tf]`, in either direction).
    ///
    /// # Errors
    ///
    /// Same as [`FixedStep::integrate`].
    pub fn integrate_grid(
        &mut self,
        sys: &(impl OdeSystem + ?Sized),
        t0: f64,
        y0: &[f64],
        tf: f64,
        grid: &[f64],
    ) -> Result<Vec<Vec<f64>>> {
        let sol = self.integrate(sys, t0, y0, tf)?;
        sol.sample_grid(grid)
    }
}

/// Configuration for the adaptive Dormand–Prince driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Relative tolerance.
    pub rtol: f64,
    /// Absolute tolerance.
    pub atol: f64,
    /// Initial step magnitude (`None` → heuristic from the tolerances).
    pub h0: Option<f64>,
    /// Maximum step magnitude.
    pub h_max: f64,
    /// Minimum step magnitude before reporting underflow.
    pub h_min: f64,
    /// Maximum number of accepted + rejected steps.
    pub max_steps: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            rtol: 1e-8,
            atol: 1e-10,
            h0: None,
            h_max: f64::INFINITY,
            h_min: 1e-14,
            max_steps: 1_000_000,
        }
    }
}

impl AdaptiveConfig {
    /// Validates every field up front so a bad configuration surfaces as
    /// a structured [`OdeError::InvalidConfig`] instead of propagating
    /// NaN through an integration.
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::InvalidConfig`] naming the offending field
    /// when a tolerance is non-positive or non-finite, a step bound is
    /// negative, non-finite (`h_max = ∞` is allowed), or inverted
    /// (`h_min > h_max`), `h0` is non-positive or non-finite, or
    /// `max_steps` is zero.
    pub fn validate(&self) -> Result<()> {
        let bad =
            |field: &'static str, reason: String| Err(OdeError::InvalidConfig { field, reason });
        if !(self.rtol > 0.0) || !self.rtol.is_finite() {
            return bad(
                "rtol",
                format!("must be positive and finite, got {}", self.rtol),
            );
        }
        if !(self.atol > 0.0) || !self.atol.is_finite() {
            return bad(
                "atol",
                format!("must be positive and finite, got {}", self.atol),
            );
        }
        if let Some(h0) = self.h0 {
            if !(h0 > 0.0) || !h0.is_finite() {
                return bad("h0", format!("must be positive and finite, got {h0}"));
            }
        }
        if !(self.h_max > 0.0) {
            return bad("h_max", format!("must be positive, got {}", self.h_max));
        }
        if !(self.h_min >= 0.0) || !self.h_min.is_finite() {
            return bad(
                "h_min",
                format!("must be non-negative and finite, got {}", self.h_min),
            );
        }
        if self.h_min > self.h_max {
            return bad(
                "h_min",
                format!("must not exceed h_max, got {} > {}", self.h_min, self.h_max),
            );
        }
        if self.max_steps == 0 {
            return bad("max_steps", "must be at least 1".into());
        }
        Ok(())
    }
}

/// Adaptive Dormand–Prince 5(4) driver with a PI step-size controller.
#[derive(Debug, Clone, Default)]
pub struct Adaptive {
    config: AdaptiveConfig,
    stepper: Dopri5,
}

impl Adaptive {
    /// Creates a driver with default tolerances (`rtol = 1e-8`,
    /// `atol = 1e-10`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a driver with the given configuration.
    pub fn with_config(config: AdaptiveConfig) -> Self {
        Adaptive {
            config,
            stepper: Dopri5::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Integrates from `(t0, y0)` to `tf` (backward if `tf < t0`).
    ///
    /// # Errors
    ///
    /// * [`OdeError::DimensionMismatch`] on a bad initial state.
    /// * [`OdeError::StepSizeUnderflow`] if error control cannot proceed.
    /// * [`OdeError::TooManySteps`] if the step budget is exhausted.
    /// * [`OdeError::NonFiniteState`] if the trajectory blows up.
    pub fn integrate(
        &mut self,
        sys: &(impl OdeSystem + ?Sized),
        t0: f64,
        y0: &[f64],
        tf: f64,
    ) -> Result<Solution> {
        Ok(self.run(sys, t0, y0, tf, None)?.solution)
    }

    /// Integrates with an event callback checked after every accepted
    /// step; returning `true` stops the run.
    ///
    /// # Errors
    ///
    /// Same as [`Adaptive::integrate`].
    pub fn run(
        &mut self,
        sys: &(impl OdeSystem + ?Sized),
        t0: f64,
        y0: &[f64],
        tf: f64,
        event: Option<&mut Event<'_>>,
    ) -> Result<Run> {
        let mut sp = rumor_obs::span("ode.adaptive");
        let result = self.run_inner(sys, t0, y0, tf, event);
        observe_run(&mut sp, &result);
        result
    }

    fn run_inner(
        &mut self,
        sys: &(impl OdeSystem + ?Sized),
        t0: f64,
        y0: &[f64],
        tf: f64,
        mut event: Option<&mut Event<'_>>,
    ) -> Result<Run> {
        validate_initial(&sys, y0)?;
        let cfg = self.config;
        cfg.validate()?;
        let span = tf - t0;
        let mut solution = Solution::new();
        let mut y = y0.to_vec();
        solution.push(t0, &y);
        if span == 0.0 {
            return Ok(Run {
                solution,
                stop: StopReason::Completed,
                accepted: 0,
                rejected: 0,
            });
        }
        let dir = span.signum();
        let mut h = dir
            * cfg
                .h0
                .unwrap_or_else(|| (span.abs() / 100.0).min(cfg.h_max).max(cfg.h_min * 10.0))
                .abs();
        let n = y.len();
        let mut out = vec![0.0; n];
        let mut err = vec![0.0; n];
        let mut t = t0;
        let mut accepted = 0usize;
        let mut rejected = 0usize;
        // PI controller memory.
        let mut err_prev: f64 = 1.0;

        for _ in 0..cfg.max_steps {
            // Clamp the final step onto tf exactly.
            if (tf - t) * dir <= 0.0 {
                break;
            }
            if ((t + h) - tf) * dir > 0.0 {
                h = tf - t;
            }
            self.stepper
                .step_with_error(&sys, t, &y, h, &mut out, &mut err);
            if out.iter().any(|v| !v.is_finite()) {
                return Err(OdeError::NonFiniteState { t: t + h });
            }
            // Weighted RMS error norm.
            let mut norm2 = 0.0;
            for i in 0..n {
                let scale = cfg.atol + cfg.rtol * y[i].abs().max(out[i].abs());
                let e = err[i] / scale;
                norm2 += e * e;
            }
            let err_norm = (norm2 / n as f64).sqrt().max(1e-16);

            if err_norm <= 1.0 {
                // Accept.
                t += h;
                y.copy_from_slice(&out);
                solution.push(t, &y);
                accepted += 1;
                if let Some(ev) = event.as_deref_mut() {
                    if ev(t, &y) {
                        return Ok(Run {
                            solution,
                            stop: StopReason::EventTriggered,
                            accepted,
                            rejected,
                        });
                    }
                }
                // PI step-size update (orders: 5 with 4th-order estimate).
                let fac = 0.9 * err_norm.powf(-0.7 / 5.0) * err_prev.powf(0.4 / 5.0);
                let fac = fac.clamp(0.2, 5.0);
                h = (h * fac).clamp(-cfg.h_max, cfg.h_max);
                if h.abs() < cfg.h_min {
                    h = cfg.h_min * dir;
                }
                err_prev = err_norm;
            } else {
                // Reject and shrink.
                rejected += 1;
                let fac = (0.9 * err_norm.powf(-1.0 / 5.0)).clamp(0.1, 0.9);
                h *= fac;
                if h.abs() < cfg.h_min {
                    return Err(OdeError::StepSizeUnderflow { t, h });
                }
            }
        }
        if (tf - t) * dir > 1e-12 * span.abs().max(1.0) {
            return Err(OdeError::TooManySteps {
                max_steps: cfg.max_steps,
                t,
            });
        }
        Ok(Run {
            solution,
            stop: StopReason::Completed,
            accepted,
            rejected,
        })
    }

    /// Integrates and samples the trajectory at the caller's `grid`.
    ///
    /// # Errors
    ///
    /// Same as [`Adaptive::integrate`].
    pub fn integrate_grid(
        &mut self,
        sys: &(impl OdeSystem + ?Sized),
        t0: f64,
        y0: &[f64],
        tf: f64,
        grid: &[f64],
    ) -> Result<Vec<Vec<f64>>> {
        let sol = self.integrate(sys, t0, y0, tf)?;
        sol.sample_grid(grid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steppers::{Euler, Heun, Rk4};
    use crate::system::FnSystem;

    fn decay() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = -y[0])
    }

    fn oscillator() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(2, |_t, y: &[f64], d: &mut [f64]| {
            d[0] = y[1];
            d[1] = -y[0];
        })
    }

    #[test]
    fn fixed_step_rk4_decay() {
        let sol = FixedStep::new(Rk4::new(), 0.01)
            .integrate(&decay(), 0.0, &[1.0], 1.0)
            .unwrap();
        assert!((sol.last_state()[0] - (-1.0_f64).exp()).abs() < 1e-9);
        assert_eq!(sol.last_time(), 1.0);
    }

    #[test]
    fn fixed_step_backward_integration() {
        // Integrate forward then backward: must return to the start.
        let fwd = FixedStep::new(Rk4::new(), 0.01)
            .integrate(&decay(), 0.0, &[1.0], 1.0)
            .unwrap();
        let bwd = FixedStep::new(Rk4::new(), 0.01)
            .integrate(&decay(), 1.0, fwd.last_state(), 0.0)
            .unwrap();
        assert!((bwd.last_state()[0] - 1.0).abs() < 1e-8);
        assert_eq!(bwd.last_time(), 0.0);
        assert!(bwd.times()[0] > bwd.last_time(), "backward times decrease");
    }

    #[test]
    fn fixed_step_zero_span() {
        let sol = FixedStep::new(Euler::new(), 0.1)
            .integrate(&decay(), 1.0, &[2.0], 1.0)
            .unwrap();
        assert_eq!(sol.len(), 1);
        assert_eq!(sol.last_state(), &[2.0]);
    }

    #[test]
    fn fixed_step_validates_input() {
        assert!(matches!(
            FixedStep::new(Euler::new(), 0.0).integrate(&decay(), 0.0, &[1.0], 1.0),
            Err(OdeError::InvalidStep(_))
        ));
        assert!(matches!(
            FixedStep::new(Euler::new(), 0.1).integrate(&decay(), 0.0, &[1.0, 2.0], 1.0),
            Err(OdeError::DimensionMismatch { .. })
        ));
        assert!(FixedStep::new(Euler::new(), 0.1)
            .integrate(&decay(), 0.0, &[f64::NAN], 1.0)
            .is_err());
    }

    #[test]
    fn fixed_step_event_stops_early() {
        let mut ev = |_t: f64, y: &[f64]| y[0] < 0.5;
        let run = FixedStep::new(Rk4::new(), 0.01)
            .run(&decay(), 0.0, &[1.0], 10.0, Some(&mut ev))
            .unwrap();
        assert_eq!(run.stop, StopReason::EventTriggered);
        assert!(run.solution.last_time() < 1.0); // ln 2 ≈ 0.693
        assert!(run.solution.last_state()[0] < 0.5);
    }

    #[test]
    fn fixed_step_lands_exactly_on_tf() {
        // 0.3 step into a span of 1.0 does not divide evenly.
        let sol = FixedStep::new(Rk4::new(), 0.3)
            .integrate(&decay(), 0.0, &[1.0], 1.0)
            .unwrap();
        assert_eq!(sol.last_time(), 1.0);
    }

    #[test]
    fn fixed_step_grid_sampling() {
        let grid = [0.0, 0.25, 0.5, 1.0];
        let samples = FixedStep::new(Rk4::new(), 0.005)
            .integrate_grid(&decay(), 0.0, &[1.0], 1.0, &grid)
            .unwrap();
        for (t, s) in grid.iter().zip(&samples) {
            assert!((s[0] - (-t).exp()).abs() < 1e-4, "at t = {t}");
        }
    }

    #[test]
    fn nonfinite_rhs_detected() {
        let bad = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = y[0] * y[0]);
        // y' = y² blows up at t = 1 for y0 = 1.
        let r = FixedStep::new(Euler::new(), 0.001).integrate(&bad, 0.0, &[1.0], 5.0);
        assert!(matches!(r, Err(OdeError::NonFiniteState { .. })));
    }

    #[test]
    fn adaptive_decay_high_accuracy() {
        let sol = Adaptive::new()
            .integrate(&decay(), 0.0, &[1.0], 5.0)
            .unwrap();
        assert!((sol.last_state()[0] - (-5.0_f64).exp()).abs() < 1e-8);
    }

    #[test]
    fn adaptive_oscillator_long_run() {
        let tf = 20.0 * std::f64::consts::PI;
        let sol = Adaptive::new()
            .integrate(&oscillator(), 0.0, &[1.0, 0.0], tf)
            .unwrap();
        assert!((sol.last_state()[0] - 1.0).abs() < 1e-5);
        assert!(sol.last_state()[1].abs() < 1e-5);
    }

    #[test]
    fn adaptive_takes_fewer_steps_at_loose_tolerance() {
        let tight = Adaptive::with_config(AdaptiveConfig {
            rtol: 1e-10,
            atol: 1e-12,
            ..Default::default()
        })
        .run(&oscillator(), 0.0, &[1.0, 0.0], 10.0, None)
        .unwrap();
        let loose = Adaptive::with_config(AdaptiveConfig {
            rtol: 1e-4,
            atol: 1e-6,
            ..Default::default()
        })
        .run(&oscillator(), 0.0, &[1.0, 0.0], 10.0, None)
        .unwrap();
        assert!(loose.accepted < tight.accepted);
    }

    #[test]
    fn adaptive_backward_integration() {
        let sol = Adaptive::new()
            .integrate(&decay(), 1.0, &[0.5], 0.0)
            .unwrap();
        assert_eq!(sol.last_time(), 0.0);
        assert!((sol.last_state()[0] - 0.5 * 1.0_f64.exp()).abs() < 1e-7);
    }

    #[test]
    fn adaptive_event_stops_early() {
        let mut ev = |_t: f64, y: &[f64]| y[0] < 0.1;
        let run = Adaptive::new()
            .run(&decay(), 0.0, &[1.0], 100.0, Some(&mut ev))
            .unwrap();
        assert_eq!(run.stop, StopReason::EventTriggered);
        assert!(run.solution.last_time() < 100.0);
    }

    #[test]
    fn adaptive_step_budget_enforced() {
        let cfg = AdaptiveConfig {
            max_steps: 3,
            ..Default::default()
        };
        let r = Adaptive::with_config(cfg).integrate(&oscillator(), 0.0, &[1.0, 0.0], 100.0);
        assert!(matches!(r, Err(OdeError::TooManySteps { .. })));
    }

    #[test]
    fn adaptive_rejects_bad_tolerances() {
        let cfg = AdaptiveConfig {
            rtol: 0.0,
            ..Default::default()
        };
        assert!(Adaptive::with_config(cfg)
            .integrate(&decay(), 0.0, &[1.0], 1.0)
            .is_err());
    }

    #[test]
    fn adaptive_zero_span_is_identity() {
        let sol = Adaptive::new()
            .integrate(&decay(), 2.0, &[3.0], 2.0)
            .unwrap();
        assert_eq!(sol.len(), 1);
        assert_eq!(sol.last_state(), &[3.0]);
    }

    #[test]
    fn adaptive_matches_fixed_step_reference() {
        // Nonautonomous system: y' = sin(t) - y.
        let sys = FnSystem::new(1, |t: f64, y: &[f64], d: &mut [f64]| d[0] = t.sin() - y[0]);
        let a = Adaptive::new().integrate(&sys, 0.0, &[0.0], 3.0).unwrap();
        let f = FixedStep::new(Rk4::new(), 1e-4)
            .integrate(&sys, 0.0, &[0.0], 3.0)
            .unwrap();
        assert!((a.last_state()[0] - f.last_state()[0]).abs() < 1e-7);
    }

    #[test]
    fn heun_driver_second_order_global_error() {
        let e_h = {
            let s = FixedStep::new(Heun::new(), 0.02)
                .integrate(&decay(), 0.0, &[1.0], 1.0)
                .unwrap();
            (s.last_state()[0] - (-1.0_f64).exp()).abs()
        };
        let e_h2 = {
            let s = FixedStep::new(Heun::new(), 0.01)
                .integrate(&decay(), 0.0, &[1.0], 1.0)
                .unwrap();
            (s.last_state()[0] - (-1.0_f64).exp()).abs()
        };
        let ratio = e_h / e_h2;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio {ratio}");
    }
}
