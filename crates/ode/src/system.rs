//! The [`OdeSystem`] trait — the interface every dynamical model in the
//! workspace implements.

/// A first-order ODE system `dy/dt = f(t, y)`.
///
/// Implementors write the derivative into a caller-provided buffer so the
/// integrators can run allocation-free in their inner loops.
///
/// # Example
///
/// ```
/// use rumor_ode::system::OdeSystem;
///
/// /// The harmonic oscillator x'' = -x as a first-order system.
/// struct Oscillator;
///
/// impl OdeSystem for Oscillator {
///     fn dim(&self) -> usize { 2 }
///     fn rhs(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
///         dydt[0] = y[1];
///         dydt[1] = -y[0];
///     }
/// }
/// ```
pub trait OdeSystem {
    /// Dimension of the state vector.
    fn dim(&self) -> usize;

    /// Writes `f(t, y)` into `dydt`.
    ///
    /// Both slices have length [`OdeSystem::dim`]; the integrators
    /// guarantee this.
    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]);
}

/// Blanket implementation so `&S` can be passed wherever an owned system
/// is expected.
impl<S: OdeSystem + ?Sized> OdeSystem for &S {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        (**self).rhs(t, y, dydt)
    }
}

/// An [`OdeSystem`] defined by a closure, convenient for tests and small
/// models.
///
/// # Example
///
/// ```
/// use rumor_ode::system::{FnSystem, OdeSystem};
///
/// let decay = FnSystem::new(1, |_t, y: &[f64], dydt: &mut [f64]| dydt[0] = -0.5 * y[0]);
/// let mut out = [0.0];
/// decay.rhs(0.0, &[2.0], &mut out);
/// assert_eq!(out[0], -1.0);
/// ```
pub struct FnSystem<F> {
    dim: usize,
    f: F,
}

impl<F: Fn(f64, &[f64], &mut [f64])> FnSystem<F> {
    /// Wraps a closure as an ODE system of the given dimension.
    pub fn new(dim: usize, f: F) -> Self {
        FnSystem { dim, f }
    }
}

impl<F: Fn(f64, &[f64], &mut [f64])> OdeSystem for FnSystem<F> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        (self.f)(t, y, dydt)
    }
}

impl<F> std::fmt::Debug for FnSystem<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnSystem").field("dim", &self.dim).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_system_evaluates_closure() {
        let sys = FnSystem::new(2, |t, y: &[f64], d: &mut [f64]| {
            d[0] = y[1] + t;
            d[1] = -y[0];
        });
        assert_eq!(sys.dim(), 2);
        let mut d = [0.0; 2];
        sys.rhs(1.0, &[3.0, 4.0], &mut d);
        assert_eq!(d, [5.0, -3.0]);
    }

    #[test]
    fn reference_blanket_impl() {
        fn takes_system(s: impl OdeSystem) -> usize {
            s.dim()
        }
        let sys = FnSystem::new(3, |_, _: &[f64], _: &mut [f64]| {});
        assert_eq!(takes_system(&sys), 3);
        assert_eq!(takes_system(&sys), 3);
    }

    #[test]
    fn debug_is_nonempty() {
        let sys = FnSystem::new(1, |_, _: &[f64], _: &mut [f64]| {});
        assert!(format!("{sys:?}").contains("dim"));
    }
}
