//! ODE integration substrate for the rumor-propagation workspace.
//!
//! The paper's heterogeneous SIR system (Eq. (1)), the co-state system of
//! the Pontryagin analysis (Eqs. (15)–(16)), and every baseline model are
//! integrated with the solvers in this crate:
//!
//! * [`system::OdeSystem`] — the right-hand-side trait all models implement.
//! * [`steppers`] — explicit fixed-step methods (Euler, Heun, classic RK4),
//!   the adaptive Dormand–Prince 5(4) pair, and an implicit (backward)
//!   Euler stepper for stiff regimes.
//! * [`integrator`] — drivers that walk a stepper across an interval,
//!   record the trajectory, support *backward* integration (needed for the
//!   co-state sweep), stop on events, and sample onto caller-supplied
//!   output grids.
//! * [`solution::Solution`] — a recorded trajectory with interpolating
//!   samplers.
//!
//! # Example
//!
//! ```
//! use rumor_ode::integrator::FixedStep;
//! use rumor_ode::steppers::Rk4;
//! use rumor_ode::system::OdeSystem;
//!
//! /// dy/dt = -y, solution y(t) = e^{-t}.
//! struct Decay;
//! impl OdeSystem for Decay {
//!     fn dim(&self) -> usize { 1 }
//!     fn rhs(&self, _t: f64, y: &[f64], dydt: &mut [f64]) { dydt[0] = -y[0]; }
//! }
//!
//! # fn main() -> Result<(), rumor_ode::OdeError> {
//! let mut driver = FixedStep::new(Rk4::new(), 1e-3);
//! let sol = driver.integrate(&Decay, 0.0, &[1.0], 1.0)?;
//! assert!((sol.last_state()[0] - (-1.0_f64).exp()).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

// Deliberate idioms throughout this workspace:
// * `!(x > 0.0)` rejects NaN alongside non-positive values, which the
//   suggested `x <= 0.0` would silently accept;
// * index-based loops mirror the mathematical stencils of the numeric
//   kernels more directly than iterator chains.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod fault;
pub mod integrator;
pub mod recovery;
pub mod solution;
pub mod steppers;
pub mod system;

mod error;

pub use error::OdeError;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, OdeError>;
