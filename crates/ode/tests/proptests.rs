//! Property-based tests of the ODE integrators against closed-form
//! solutions.

use proptest::prelude::*;
use rumor_ode::integrator::{Adaptive, AdaptiveConfig, FixedStep};
use rumor_ode::steppers::{Heun, ImplicitEuler, Rk4};
use rumor_ode::system::FnSystem;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rk4_matches_exponential_decay(rate in 0.05..3.0_f64, y0 in 0.1..10.0_f64) {
        let sys = FnSystem::new(1, move |_t, y: &[f64], d: &mut [f64]| d[0] = -rate * y[0]);
        let sol = FixedStep::new(Rk4::new(), 0.01)
            .integrate(&sys, 0.0, &[y0], 2.0)
            .expect("integrate");
        let exact = y0 * (-rate * 2.0).exp();
        prop_assert!((sol.last_state()[0] - exact).abs() < 1e-6 * y0);
    }

    #[test]
    fn adaptive_matches_exponential_growth(rate in 0.05..1.5_f64, y0 in 0.1..5.0_f64) {
        let sys = FnSystem::new(1, move |_t, y: &[f64], d: &mut [f64]| d[0] = rate * y[0]);
        let sol = Adaptive::new().integrate(&sys, 0.0, &[y0], 2.0).expect("integrate");
        let exact = y0 * (rate * 2.0).exp();
        prop_assert!((sol.last_state()[0] - exact).abs() / exact < 1e-7);
    }

    #[test]
    fn forward_then_backward_is_identity(rate in 0.05..2.0_f64, y0 in 0.5..5.0_f64) {
        let sys = FnSystem::new(1, move |t: f64, y: &[f64], d: &mut [f64]| {
            d[0] = -rate * y[0] + t.sin()
        });
        let mut drv = Adaptive::new();
        let fwd = drv.integrate(&sys, 0.0, &[y0], 3.0).expect("fwd");
        let bwd = drv
            .integrate(&sys, 3.0, fwd.last_state(), 0.0)
            .expect("bwd");
        prop_assert!((bwd.last_state()[0] - y0).abs() < 1e-6 * y0.max(1.0));
    }

    #[test]
    fn oscillator_preserves_energy(omega in 0.3..3.0_f64, amp in 0.1..3.0_f64) {
        let sys = FnSystem::new(2, move |_t, y: &[f64], d: &mut [f64]| {
            d[0] = y[1];
            d[1] = -omega * omega * y[0];
        });
        let sol = Adaptive::with_config(AdaptiveConfig {
            rtol: 1e-10,
            atol: 1e-12,
            ..Default::default()
        })
        .integrate(&sys, 0.0, &[amp, 0.0], 10.0)
        .expect("integrate");
        let y = sol.last_state();
        // Energy E = ω²x² + v².
        let e0 = omega * omega * amp * amp;
        let ef = omega * omega * y[0] * y[0] + y[1] * y[1];
        prop_assert!((ef - e0).abs() / e0 < 1e-6, "energy drift {}", (ef - e0) / e0);
    }

    #[test]
    fn solution_sampling_is_between_node_values(rate in 0.1..2.0_f64, q in 0.0..1.0_f64) {
        // Monotone decay: any sample lies between the neighbouring values.
        let sys = FnSystem::new(1, move |_t, y: &[f64], d: &mut [f64]| d[0] = -rate * y[0]);
        let sol = FixedStep::new(Heun::new(), 0.05)
            .integrate(&sys, 0.0, &[1.0], 2.0)
            .expect("integrate");
        let v = sol.sample(q * 2.0).expect("sample")[0];
        prop_assert!(v <= 1.0 + 1e-12 && v >= sol.last_state()[0] - 1e-12);
    }

    #[test]
    fn implicit_euler_unconditionally_stable(rate in 10.0..2000.0_f64) {
        // Stiff decay with a large step must contract, never blow up.
        let sys = FnSystem::new(1, move |_t, y: &[f64], d: &mut [f64]| d[0] = -rate * y[0]);
        let mut s = ImplicitEuler::new();
        let mut y = vec![1.0];
        let mut out = vec![0.0];
        for k in 0..20 {
            s.try_step(&sys, k as f64 * 0.1, &y, 0.1, &mut out).expect("step");
            prop_assert!(out[0].abs() <= y[0].abs() + 1e-9, "must contract");
            y.copy_from_slice(&out);
        }
        // Absolute Newton tolerance can leave a ~1e-10-scale signed
        // residue once the true solution underflows toward zero.
        prop_assert!(y[0] > -1e-9);
    }

    #[test]
    fn nonautonomous_quadrature_reduction(a in -2.0..2.0_f64, b in -2.0..2.0_f64) {
        // y' = a + b t has closed form y = y0 + a t + b t²/2.
        let sys = FnSystem::new(1, move |t: f64, _y: &[f64], d: &mut [f64]| d[0] = a + b * t);
        let sol = Adaptive::new().integrate(&sys, 0.0, &[0.0], 4.0).expect("integrate");
        let exact = a * 4.0 + b * 8.0;
        prop_assert!((sol.last_state()[0] - exact).abs() < 1e-8);
    }

    #[test]
    fn grid_sampling_covers_requested_times(n_grid in 2usize..30) {
        let sys = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = -y[0]);
        let grid: Vec<f64> = (0..n_grid).map(|i| 2.0 * i as f64 / (n_grid - 1) as f64).collect();
        let samples = FixedStep::new(Rk4::new(), 0.01)
            .integrate_grid(&sys, 0.0, &[1.0], 2.0, &grid)
            .expect("grid");
        prop_assert_eq!(samples.len(), n_grid);
        for (t, s) in grid.iter().zip(&samples) {
            // Linear resampling between 0.01-spaced records contributes
            // ~h^2/8 interpolation error on top of the solver error.
            prop_assert!((s[0] - (-t).exp()).abs() < 5e-5);
        }
    }
}
