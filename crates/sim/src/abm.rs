//! Synchronous discrete-time agent-based SIR simulation.
//!
//! The step loop runs on the flat arenas of [`crate::arena`]: one byte
//! of state per agent (double-buffered) and a one-bit-per-node active
//! set, iterated in ascending node order. This keeps a million-node
//! replica at ~2 MB of mutable state and makes the per-step walk
//! cache-linear, while consuming the RNG in exactly the same order as
//! the historical index-vector implementation ([`run_reference`]) —
//! trajectories are bit-identical at equal seeds.

use crate::arena::{BitSet, StateArena};
use crate::{NodeState, Result, SimError, SimTrajectory};
use rand::Rng;
use rumor_core::params::ModelParams;
use rumor_net::graph::Graph;

/// Configuration of a synchronous agent-based run.
#[derive(Debug, Clone, PartialEq)]
pub struct AbmConfig {
    /// Time-step size (hazards are converted to per-step probabilities
    /// as `p = 1 − exp(−rate·dt)`).
    pub dt: f64,
    /// Demographic inflow `α`: per unit time, a density `α` of each
    /// class is recycled from recovered back to susceptible, matching
    /// the mean-field model's conserving convention. Supported by both
    /// simulators.
    pub alpha: f64,
    /// Final time.
    pub tf: f64,
    /// Truth-spreading (immunization) rate `ε1`.
    pub eps1: f64,
    /// Blocking rate `ε2`.
    pub eps2: f64,
    /// Fraction of nodes infected at `t = 0` (uniformly at random).
    pub initial_infected: f64,
    /// Record every `record_every`-th step (1 = every step).
    pub record_every: usize,
}

impl Default for AbmConfig {
    fn default() -> Self {
        AbmConfig {
            alpha: 0.0,
            dt: 0.1,
            tf: 50.0,
            eps1: 0.0,
            eps2: 0.0,
            initial_infected: 0.05,
            record_every: 1,
        }
    }
}

fn validate(cfg: &AbmConfig) -> Result<()> {
    if !(cfg.dt > 0.0) || !(cfg.tf > 0.0) || cfg.dt > cfg.tf {
        return Err(SimError::InvalidConfig(format!(
            "need 0 < dt <= tf, got dt = {}, tf = {}",
            cfg.dt, cfg.tf
        )));
    }
    if cfg.eps1 < 0.0 || cfg.eps2 < 0.0 || cfg.alpha < 0.0 {
        return Err(SimError::InvalidConfig("rates must be non-negative".into()));
    }
    if !(cfg.initial_infected > 0.0 && cfg.initial_infected <= 1.0) {
        return Err(SimError::InvalidConfig(format!(
            "initial infected fraction must lie in (0, 1], got {}",
            cfg.initial_infected
        )));
    }
    if cfg.record_every == 0 {
        return Err(SimError::InvalidConfig(
            "record_every must be positive".into(),
        ));
    }
    Ok(())
}

/// Precomputed per-node rate tables shared by both simulators.
pub(crate) struct RateTables {
    /// `λ(k_u)` per node.
    pub lambda: Vec<f64>,
    /// `ω(k_v)/k_v` per node (transmission weight of an infected
    /// neighbor when contacted).
    pub omega_over_k: Vec<f64>,
    /// Degree-class index per node (`usize::MAX` for isolated nodes).
    pub class: Vec<usize>,
    /// Node count per class.
    pub class_size: Vec<usize>,
}

pub(crate) fn build_tables(graph: &Graph, params: &ModelParams) -> Result<RateTables> {
    let n = graph.node_count();
    if n == 0 {
        return Err(SimError::Inconsistent("graph has no nodes".into()));
    }
    let classes = params.classes();
    let mut lambda = vec![0.0; n];
    let mut omega_over_k = vec![0.0; n];
    let mut class = vec![usize::MAX; n];
    let mut class_size = vec![0usize; classes.len()];
    for u in 0..n {
        let k = graph.degree(u);
        if k == 0 {
            continue; // isolated nodes never participate
        }
        let Some(ci) = classes.class_of(k) else {
            return Err(SimError::Inconsistent(format!(
                "node {u} has degree {k} not present in the degree partition"
            )));
        };
        lambda[u] = params.acceptance().eval(k);
        omega_over_k[u] = params.infectivity().eval(k) / k as f64;
        class[u] = ci;
        class_size[ci] += 1;
    }
    Ok(RateTables {
        lambda,
        omega_over_k,
        class,
        class_size,
    })
}

/// Seeds the initial states: a uniformly random `initial_infected`
/// fraction of non-isolated nodes starts infected.
pub(crate) fn seed_states(graph: &Graph, frac: f64, rng: &mut impl Rng) -> Vec<NodeState> {
    (0..graph.node_count())
        .map(|u| {
            if graph.degree(u) > 0 && rng.gen_bool(frac) {
                NodeState::Infected
            } else {
                NodeState::Susceptible
            }
        })
        .collect()
}

/// Runs a synchronous discrete-time simulation of the microscopic rumor
/// process on `graph` with the mean-field parameters `params`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use rumor_core::functions::AcceptanceRate;
/// use rumor_core::params::ModelParams;
/// use rumor_net::degree::DegreeClasses;
/// use rumor_net::generators::barabasi_albert;
/// use rumor_sim::abm::{run, AbmConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let graph = barabasi_albert(200, 3, &mut rng)?;
/// let classes = DegreeClasses::from_graph(&graph)?;
/// let params = ModelParams::builder(classes)
///     .alpha(0.0)
///     .acceptance(AcceptanceRate::LinearInDegree { lambda0: 0.5 })
///     .build()?;
/// let cfg = AbmConfig { tf: 5.0, eps2: 0.1, ..Default::default() };
/// let traj = run(&graph, &params, &cfg, &mut rng)?;
/// // Fractions always partition the population.
/// let last = traj.len() - 1;
/// assert!((traj.s()[last] + traj.i()[last] + traj.r()[last] - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`SimError::InvalidConfig`] for bad configuration values.
/// * [`SimError::Inconsistent`] if the graph contains a degree missing
///   from the parameter partition.
pub fn run(
    graph: &Graph,
    params: &ModelParams,
    cfg: &AbmConfig,
    rng: &mut impl Rng,
) -> Result<SimTrajectory> {
    validate(cfg)?;
    let tables = build_tables(graph, params)?;
    let mut arena = StateArena::new(seed_states(graph, cfg.initial_infected, rng));
    let n = graph.node_count();
    let active = BitSet::from_pred(n, |u| graph.degree(u) > 0);
    let active_count = active.count().max(1);

    let p_immunize = 1.0 - (-cfg.eps1 * cfg.dt).exp();
    let p_block = 1.0 - (-cfg.eps2 * cfg.dt).exp();

    let n_steps = (cfg.tf / cfg.dt).round() as usize;
    let mut traj = SimTrajectory::new(tables.class_size.len());
    record(&mut traj, 0.0, arena.current(), &tables, active_count);

    // All per-step buffers are hoisted: the loop body is allocation-free.
    let n_class = tables.class_size.len();
    let mut recovered_per_class = vec![0usize; n_class];
    let mut recycle_prob = vec![0.0_f64; n_class];
    for step in 1..=n_steps {
        // Demographic recycling: in each class, an expected density α·dt
        // of the class flows R → S, realized as an independent per-node
        // flip with probability α·size_k·dt / R_count_k.
        recycle_prob.iter_mut().for_each(|p| *p = 0.0);
        if cfg.alpha > 0.0 {
            recovered_per_class.iter_mut().for_each(|c| *c = 0);
            for u in active.iter() {
                if arena.get(u) == NodeState::Recovered {
                    recovered_per_class[tables.class[u]] += 1;
                }
            }
            for c in 0..n_class {
                if recovered_per_class[c] > 0 {
                    recycle_prob[c] = (cfg.alpha * tables.class_size[c] as f64 * cfg.dt
                        / recovered_per_class[c] as f64)
                        .min(1.0);
                }
            }
        }
        for u in active.iter() {
            match arena.get(u) {
                NodeState::Susceptible => {
                    // Immunization.
                    if p_immunize > 0.0 && rng.gen_bool(p_immunize) {
                        arena.stage(u, NodeState::Recovered);
                        continue;
                    }
                    // Contact one uniformly random neighbor.
                    let nb = graph.neighbors(u);
                    let v = nb[rng.gen_range(0..nb.len())] as usize;
                    if arena.get(v) == NodeState::Infected {
                        let hazard = tables.lambda[u] * tables.omega_over_k[v];
                        let p_inf = 1.0 - (-hazard * cfg.dt).exp();
                        if p_inf > 0.0 && rng.gen_bool(p_inf.min(1.0)) {
                            arena.stage(u, NodeState::Infected);
                        }
                    }
                }
                NodeState::Infected => {
                    if p_block > 0.0 && rng.gen_bool(p_block) {
                        arena.stage(u, NodeState::Recovered);
                    }
                }
                NodeState::Recovered => {
                    let p = recycle_prob[tables.class[u]];
                    if p > 0.0 && rng.gen_bool(p) {
                        arena.stage(u, NodeState::Susceptible);
                    }
                }
            }
        }
        arena.commit();
        if step % cfg.record_every == 0 || step == n_steps {
            record(
                &mut traj,
                step as f64 * cfg.dt,
                arena.current(),
                &tables,
                active_count,
            );
        }
    }
    Ok(traj)
}

/// The pre-arena implementation of [`run`], retained verbatim as the
/// bit-identity reference: `tests/abm_arena_identity.rs` asserts that
/// [`run`] reproduces this trajectory exactly at equal seeds. Not part
/// of the public API.
#[doc(hidden)]
pub fn run_reference(
    graph: &Graph,
    params: &ModelParams,
    cfg: &AbmConfig,
    rng: &mut impl Rng,
) -> Result<SimTrajectory> {
    validate(cfg)?;
    let tables = build_tables(graph, params)?;
    let mut states = seed_states(graph, cfg.initial_infected, rng);
    let n = graph.node_count();
    let active: Vec<usize> = (0..n).filter(|&u| graph.degree(u) > 0).collect();
    let active_count = active.len().max(1);

    let p_immunize = 1.0 - (-cfg.eps1 * cfg.dt).exp();
    let p_block = 1.0 - (-cfg.eps2 * cfg.dt).exp();

    let n_steps = (cfg.tf / cfg.dt).round() as usize;
    let mut traj = SimTrajectory::new(tables.class_size.len());
    record(&mut traj, 0.0, &states, &tables, active_count);

    let mut next_states = states.clone();
    let n_class = tables.class_size.len();
    let mut recovered_per_class = vec![0usize; n_class];
    for step in 1..=n_steps {
        let mut recycle_prob = vec![0.0_f64; n_class];
        if cfg.alpha > 0.0 {
            recovered_per_class.iter_mut().for_each(|c| *c = 0);
            for &u in &active {
                if states[u] == NodeState::Recovered {
                    recovered_per_class[tables.class[u]] += 1;
                }
            }
            for c in 0..n_class {
                if recovered_per_class[c] > 0 {
                    recycle_prob[c] = (cfg.alpha * tables.class_size[c] as f64 * cfg.dt
                        / recovered_per_class[c] as f64)
                        .min(1.0);
                }
            }
        }
        for &u in &active {
            match states[u] {
                NodeState::Susceptible => {
                    if p_immunize > 0.0 && rng.gen_bool(p_immunize) {
                        next_states[u] = NodeState::Recovered;
                        continue;
                    }
                    let nb = graph.neighbors(u);
                    let v = nb[rng.gen_range(0..nb.len())] as usize;
                    if states[v] == NodeState::Infected {
                        let hazard = tables.lambda[u] * tables.omega_over_k[v];
                        let p_inf = 1.0 - (-hazard * cfg.dt).exp();
                        if p_inf > 0.0 && rng.gen_bool(p_inf.min(1.0)) {
                            next_states[u] = NodeState::Infected;
                        }
                    }
                }
                NodeState::Infected => {
                    if p_block > 0.0 && rng.gen_bool(p_block) {
                        next_states[u] = NodeState::Recovered;
                    }
                }
                NodeState::Recovered => {
                    let p = recycle_prob[tables.class[u]];
                    if p > 0.0 && rng.gen_bool(p) {
                        next_states[u] = NodeState::Susceptible;
                    }
                }
            }
        }
        states.copy_from_slice(&next_states);
        if step % cfg.record_every == 0 || step == n_steps {
            record(
                &mut traj,
                step as f64 * cfg.dt,
                &states,
                &tables,
                active_count,
            );
        }
    }
    Ok(traj)
}

/// Shard width of the deterministic parallel stepper: node-id ranges of
/// `SHARD` nodes are the unit of work handed to the inner pool. The
/// boundaries are fixed by the node count alone — never by the thread
/// count — so the trajectory is a pure function of
/// `(graph, params, cfg, seed)`.
pub const SHARD: usize = 1 << 16;

/// Sentinel "step" used for the initial-seeding RNG stream, disjoint
/// from every real step index `1..=n_steps`.
const SEED_STREAM: u64 = u64::MAX;

/// SplitMix64 finalizer (Steele, Lea & Flood 2014).
#[inline]
fn mix(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Counter-based per-`(seed, step, node)` random stream.
///
/// The sequential simulators ([`run`], [`run_reference`]) consume one
/// global RNG in node order, which makes their draw sequence inherently
/// unshardable: node `u`'s randomness depends on every decision before
/// it. The sharded stepper instead derives an independent SplitMix64
/// stream per `(seed, step, node)` triple, so any node's draws can be
/// reproduced in isolation — shards may execute in any order, on any
/// number of threads, and the result is bitwise identical.
struct NodeRng {
    state: u64,
}

impl NodeRng {
    #[inline]
    fn new(seed: u64, step: u64, node: u64) -> Self {
        let s = mix(seed ^ step.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(node.wrapping_mul(0xD2B7_4407_B1CE_6E93));
        NodeRng { state: mix(s) }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `0..n` by modulo. The bias is ≤ n/2⁶⁴ — far
    /// below Monte Carlo noise at any realistic degree — and the
    /// reduction is branch-free, which matters in the per-node hot loop.
    #[inline]
    fn gen_index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Seeds initial states from the counter stream: node `u` starts
/// infected iff it is non-isolated and its private draw falls below
/// `frac`. Order-free by construction.
fn seed_states_counter(graph: &Graph, frac: f64, seed: u64) -> Vec<NodeState> {
    (0..graph.node_count())
        .map(|u| {
            if graph.degree(u) > 0 && NodeRng::new(seed, SEED_STREAM, u as u64).next_f64() < frac {
                NodeState::Infected
            } else {
                NodeState::Susceptible
            }
        })
        .collect()
}

/// Advances every node in `out`'s shard (`lo..lo + out.len()`) by one
/// synchronous step, reading the committed snapshot `cur` and writing
/// only this shard's slice of the staging buffer.
#[allow(clippy::too_many_arguments)]
fn step_shard(
    lo: usize,
    cur: &[NodeState],
    out: &mut [NodeState],
    graph: &Graph,
    tables: &RateTables,
    recycle_prob: &[f64],
    p_immunize: f64,
    p_block: f64,
    dt: f64,
    seed: u64,
    step: u64,
) {
    for (rel, slot) in out.iter_mut().enumerate() {
        let u = lo + rel;
        if tables.class[u] == usize::MAX {
            continue; // isolated nodes never participate
        }
        let mut rng = NodeRng::new(seed, step, u as u64);
        match cur[u] {
            NodeState::Susceptible => {
                if p_immunize > 0.0 && rng.next_f64() < p_immunize {
                    *slot = NodeState::Recovered;
                    continue;
                }
                let nb = graph.neighbors(u);
                let v = nb[rng.gen_index(nb.len())] as usize;
                if cur[v] == NodeState::Infected {
                    let hazard = tables.lambda[u] * tables.omega_over_k[v];
                    let p_inf = 1.0 - (-hazard * dt).exp();
                    if p_inf > 0.0 && rng.next_f64() < p_inf.min(1.0) {
                        *slot = NodeState::Infected;
                    }
                }
            }
            NodeState::Infected => {
                if p_block > 0.0 && rng.next_f64() < p_block {
                    *slot = NodeState::Recovered;
                }
            }
            NodeState::Recovered => {
                let p = recycle_prob[tables.class[u]];
                if p > 0.0 && rng.next_f64() < p {
                    *slot = NodeState::Susceptible;
                }
            }
        }
    }
}

/// Synchronous ABM stepping over fixed node-range shards with
/// counter-based randomness — the intra-replica parallel simulator.
///
/// Unlike [`run`], which threads one sequential RNG through the node
/// walk, this variant derives every node's draws from the
/// `(seed, step, node)` counter stream (`NodeRng`), steps the arena
/// in [`SHARD`]-wide node ranges with disjoint writes to the staging
/// buffer, and merges per-class statistics in shard order. The
/// trajectory is bitwise identical for `pool = None` and every pool
/// size — pinned by [`run_sharded_reference`] and
/// `tests/determinism.rs` — but is a *different* (equally valid) sample
/// path from [`run`] at the same seed, since the draw streams differ.
///
/// # Errors
///
/// Same conditions as [`run`].
pub fn run_sharded(
    graph: &Graph,
    params: &ModelParams,
    cfg: &AbmConfig,
    seed: u64,
    pool: Option<&rumor_par::InnerPool>,
) -> Result<SimTrajectory> {
    validate(cfg)?;
    let tables = build_tables(graph, params)?;
    let n = graph.node_count();
    let mut arena = StateArena::new(seed_states_counter(graph, cfg.initial_infected, seed));
    let active = BitSet::from_pred(n, |u| tables.class[u] != usize::MAX);
    let active_count = active.count().max(1);

    let p_immunize = 1.0 - (-cfg.eps1 * cfg.dt).exp();
    let p_block = 1.0 - (-cfg.eps2 * cfg.dt).exp();

    let n_steps = (cfg.tf / cfg.dt).round() as usize;
    let mut traj = SimTrajectory::new(tables.class_size.len());
    record(&mut traj, 0.0, arena.current(), &tables, active_count);

    let n_shards = rumor_par::chunk_count(n, SHARD);
    let n_class = tables.class_size.len();
    let mut recovered_per_class = vec![0usize; n_class];
    let mut recycle_prob = vec![0.0_f64; n_class];
    for step in 1..=n_steps {
        // Recycle probabilities need the global per-class recovered
        // counts; integer sums in ascending node order, computed once
        // per step on the caller before the shards fan out.
        recycle_prob.iter_mut().for_each(|p| *p = 0.0);
        if cfg.alpha > 0.0 {
            recovered_per_class.iter_mut().for_each(|c| *c = 0);
            for u in active.iter() {
                if arena.get(u) == NodeState::Recovered {
                    recovered_per_class[tables.class[u]] += 1;
                }
            }
            for c in 0..n_class {
                if recovered_per_class[c] > 0 {
                    recycle_prob[c] = (cfg.alpha * tables.class_size[c] as f64 * cfg.dt
                        / recovered_per_class[c] as f64)
                        .min(1.0);
                }
            }
        }
        let (cur, next) = arena.buffers();
        let shards: Vec<(usize, &mut [NodeState])> = next.chunks_mut(SHARD).enumerate().collect();
        debug_assert_eq!(shards.len(), n_shards);
        let step_one = |(sidx, out): (usize, &mut [NodeState])| {
            let (lo, hi) = rumor_par::chunk_bounds(n, SHARD, sidx);
            debug_assert_eq!(hi - lo, out.len());
            step_shard(
                lo,
                cur,
                out,
                graph,
                &tables,
                &recycle_prob,
                p_immunize,
                p_block,
                cfg.dt,
                seed,
                step as u64,
            );
        };
        match pool {
            Some(pool) if pool.threads() > 1 && n_shards > 1 => {
                pool.scatter(shards, |_t, item| step_one(item));
            }
            _ => {
                for item in shards {
                    step_one(item);
                }
            }
        }
        arena.commit();
        if step % cfg.record_every == 0 || step == n_steps {
            record(
                &mut traj,
                step as f64 * cfg.dt,
                arena.current(),
                &tables,
                active_count,
            );
        }
    }
    Ok(traj)
}

/// Serial mirror of [`run_sharded`]: a plain ascending-node loop over
/// the same counter streams, with no arena sharding and no pool. The
/// determinism suite pins [`run_sharded`] against this bit for bit at
/// every pool size. Not part of the public API.
#[doc(hidden)]
pub fn run_sharded_reference(
    graph: &Graph,
    params: &ModelParams,
    cfg: &AbmConfig,
    seed: u64,
) -> Result<SimTrajectory> {
    validate(cfg)?;
    let tables = build_tables(graph, params)?;
    let n = graph.node_count();
    let mut states = seed_states_counter(graph, cfg.initial_infected, seed);
    let mut next_states = states.clone();
    let active: Vec<usize> = (0..n).filter(|&u| tables.class[u] != usize::MAX).collect();
    let active_count = active.len().max(1);

    let p_immunize = 1.0 - (-cfg.eps1 * cfg.dt).exp();
    let p_block = 1.0 - (-cfg.eps2 * cfg.dt).exp();

    let n_steps = (cfg.tf / cfg.dt).round() as usize;
    let mut traj = SimTrajectory::new(tables.class_size.len());
    record(&mut traj, 0.0, &states, &tables, active_count);

    let n_class = tables.class_size.len();
    let mut recovered_per_class = vec![0usize; n_class];
    let mut recycle_prob = vec![0.0_f64; n_class];
    for step in 1..=n_steps {
        recycle_prob.iter_mut().for_each(|p| *p = 0.0);
        if cfg.alpha > 0.0 {
            recovered_per_class.iter_mut().for_each(|c| *c = 0);
            for &u in &active {
                if states[u] == NodeState::Recovered {
                    recovered_per_class[tables.class[u]] += 1;
                }
            }
            for c in 0..n_class {
                if recovered_per_class[c] > 0 {
                    recycle_prob[c] = (cfg.alpha * tables.class_size[c] as f64 * cfg.dt
                        / recovered_per_class[c] as f64)
                        .min(1.0);
                }
            }
        }
        step_shard(
            0,
            &states,
            &mut next_states,
            graph,
            &tables,
            &recycle_prob,
            p_immunize,
            p_block,
            cfg.dt,
            seed,
            step as u64,
        );
        states.copy_from_slice(&next_states);
        if step % cfg.record_every == 0 || step == n_steps {
            record(
                &mut traj,
                step as f64 * cfg.dt,
                &states,
                &tables,
                active_count,
            );
        }
    }
    Ok(traj)
}

fn record(
    traj: &mut SimTrajectory,
    t: f64,
    states: &[NodeState],
    tables: &RateTables,
    active_count: usize,
) {
    let mut s = 0usize;
    let mut i = 0usize;
    let mut r = 0usize;
    let mut class_i = vec![0usize; tables.class_size.len()];
    for (u, st) in states.iter().enumerate() {
        if tables.class[u] == usize::MAX {
            continue;
        }
        match st {
            NodeState::Susceptible => s += 1,
            NodeState::Infected => {
                i += 1;
                class_i[tables.class[u]] += 1;
            }
            NodeState::Recovered => r += 1,
        }
    }
    let class_frac: Vec<f64> = class_i
        .iter()
        .zip(&tables.class_size)
        .map(|(&c, &size)| {
            if size > 0 {
                c as f64 / size as f64
            } else {
                0.0
            }
        })
        .collect();
    traj.push(
        t,
        s as f64 / active_count as f64,
        i as f64 / active_count as f64,
        r as f64 / active_count as f64,
        &class_frac,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rumor_core::functions::{AcceptanceRate, Infectivity};
    use rumor_net::degree::DegreeClasses;
    use rumor_net::generators::barabasi_albert;

    fn setup(n: usize, lambda0: f64) -> (Graph, ModelParams) {
        let mut rng = StdRng::seed_from_u64(7);
        let g = barabasi_albert(n, 3, &mut rng).unwrap();
        let classes = DegreeClasses::from_graph(&g).unwrap();
        let p = ModelParams::builder(classes)
            .alpha(0.0)
            .acceptance(AcceptanceRate::LinearInDegree { lambda0 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap();
        (g, p)
    }

    #[test]
    fn fractions_sum_to_one() {
        let (g, p) = setup(500, 0.2);
        let cfg = AbmConfig {
            tf: 10.0,
            eps1: 0.05,
            eps2: 0.05,
            ..Default::default()
        };
        let traj = run(&g, &p, &cfg, &mut StdRng::seed_from_u64(1)).unwrap();
        for idx in 0..traj.len() {
            let total = traj.s()[idx] + traj.i()[idx] + traj.r()[idx];
            assert!((total - 1.0).abs() < 1e-9, "t index {idx}: {total}");
        }
    }

    #[test]
    fn no_transmission_with_zero_lambda() {
        let (g, _) = setup(300, 0.2);
        let classes = DegreeClasses::from_graph(&g).unwrap();
        let p = ModelParams::builder(classes)
            .alpha(0.0)
            .acceptance(AcceptanceRate::Constant { lambda0: 1e-308 })
            .infectivity(Infectivity::paper_default())
            .build()
            .unwrap();
        let cfg = AbmConfig {
            tf: 5.0,
            eps2: 1.0,
            ..Default::default()
        };
        let traj = run(&g, &p, &cfg, &mut StdRng::seed_from_u64(2)).unwrap();
        // Infection can only shrink (blocking active, effectively no spread).
        assert!(traj.final_infected() <= traj.i()[0]);
    }

    #[test]
    fn blocking_drives_extinction() {
        let (g, p) = setup(800, 0.3);
        let cfg = AbmConfig {
            tf: 120.0,
            eps1: 0.05,
            eps2: 0.3,
            ..Default::default()
        };
        let traj = run(&g, &p, &cfg, &mut StdRng::seed_from_u64(3)).unwrap();
        assert!(
            traj.final_infected() < 0.01,
            "infection should die out, got {}",
            traj.final_infected()
        );
        // Recovered absorbed most of the population.
        assert!(*traj.r().last().unwrap() > 0.3);
    }

    #[test]
    fn epidemic_grows_without_countermeasures() {
        let (g, p) = setup(800, 5.0);
        let cfg = AbmConfig {
            tf: 30.0,
            initial_infected: 0.02,
            ..Default::default()
        };
        let traj = run(&g, &p, &cfg, &mut StdRng::seed_from_u64(4)).unwrap();
        assert!(
            traj.final_infected() > 0.3,
            "epidemic should take off, got {}",
            traj.final_infected()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, p) = setup(300, 0.5);
        let cfg = AbmConfig {
            tf: 5.0,
            ..Default::default()
        };
        let a = run(&g, &p, &cfg, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = run(&g, &p, &cfg, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn config_validation() {
        let (g, p) = setup(100, 0.5);
        let mut rng = StdRng::seed_from_u64(0);
        for bad in [
            AbmConfig {
                dt: 0.0,
                ..Default::default()
            },
            AbmConfig {
                tf: 0.0,
                ..Default::default()
            },
            AbmConfig {
                dt: 10.0,
                tf: 1.0,
                ..Default::default()
            },
            AbmConfig {
                eps1: -1.0,
                ..Default::default()
            },
            AbmConfig {
                initial_infected: 0.0,
                ..Default::default()
            },
            AbmConfig {
                initial_infected: 1.5,
                ..Default::default()
            },
            AbmConfig {
                record_every: 0,
                ..Default::default()
            },
        ] {
            assert!(run(&g, &p, &bad, &mut rng).is_err());
        }
    }

    #[test]
    fn sharded_run_matches_reference_at_every_pool_size() {
        let (g, p) = setup(700, 0.5);
        let cfg = AbmConfig {
            tf: 8.0,
            eps1: 0.03,
            eps2: 0.08,
            alpha: 0.01,
            ..Default::default()
        };
        let reference = run_sharded_reference(&g, &p, &cfg, 42).unwrap();
        assert_eq!(run_sharded(&g, &p, &cfg, 42, None).unwrap(), reference);
        for threads in [1usize, 2, 4, 8] {
            let pool = rumor_par::InnerPool::new(threads);
            let pooled = run_sharded(&g, &p, &cfg, 42, Some(&pool)).unwrap();
            assert_eq!(pooled, reference, "threads = {threads}");
        }
    }

    #[test]
    fn sharded_run_is_behaviorally_sound() {
        let (g, p) = setup(800, 0.3);
        let cfg = AbmConfig {
            tf: 120.0,
            eps1: 0.05,
            eps2: 0.3,
            ..Default::default()
        };
        let traj = run_sharded(&g, &p, &cfg, 5, None).unwrap();
        for idx in 0..traj.len() {
            let total = traj.s()[idx] + traj.i()[idx] + traj.r()[idx];
            assert!((total - 1.0).abs() < 1e-9, "t index {idx}: {total}");
        }
        // Countermeasures drive the rumor extinct, exactly as in the
        // sequential simulator's scenario.
        assert!(
            traj.final_infected() < 0.01,
            "infection should die out, got {}",
            traj.final_infected()
        );
    }

    #[test]
    fn sharded_seed_changes_the_sample_path() {
        let (g, p) = setup(400, 0.5);
        let cfg = AbmConfig {
            tf: 5.0,
            ..Default::default()
        };
        let a = run_sharded(&g, &p, &cfg, 1, None).unwrap();
        let b = run_sharded(&g, &p, &cfg, 2, None).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn counter_rng_streams_are_decorrelated_across_nodes_and_steps() {
        // Coarse uniformity check: the per-node first draws across a
        // range of (step, node) pairs fill [0, 1) evenly.
        let mut buckets = [0usize; 10];
        let mut count = 0usize;
        for step in 1..=20u64 {
            for node in 0..500u64 {
                let x = NodeRng::new(7, step, node).next_f64();
                buckets[(x * 10.0) as usize] += 1;
                count += 1;
            }
        }
        let expected = count / 10;
        for (i, &b) in buckets.iter().enumerate() {
            assert!(
                (b as f64 - expected as f64).abs() < 0.1 * expected as f64,
                "bucket {i}: {b} vs expected {expected}"
            );
        }
    }

    #[test]
    fn class_mismatch_detected() {
        let (g, _) = setup(200, 0.5);
        // Partition from a different graph misses some degrees.
        let classes = DegreeClasses::from_degrees(&[1, 1, 2]).unwrap();
        let p = ModelParams::builder(classes)
            .alpha(0.0)
            .acceptance(AcceptanceRate::Constant { lambda0: 0.1 })
            .build()
            .unwrap();
        let cfg = AbmConfig::default();
        assert!(matches!(
            run(&g, &p, &cfg, &mut StdRng::seed_from_u64(0)),
            Err(SimError::Inconsistent(_))
        ));
    }
}
